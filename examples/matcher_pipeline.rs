//! End-to-end matching pipeline: original vs streamlined schemas.
//!
//! Reproduces the paper's ablation idea on one concrete configuration:
//! run the three matcher families (SIM / CLUSTER / LSH) once on the
//! original OC3-FO schemas (the SOTA baseline) and once on schemas
//! streamlined by collaborative scoping, and compare PQ / PC / F1 / RR.
//!
//! Run with: `cargo run --release --example matcher_pipeline`

use collaborative_scoping::prelude::*;
use std::collections::HashSet;

fn main() {
    let dataset = oc3_fo();
    let encoder = SignatureEncoder::default();
    let signatures = encode_catalog(&encoder, &dataset.catalog);

    // Streamline at the paper's recommended strictness.
    let run = CollaborativeScoper::new(0.75)
        .run(&signatures)
        .expect("valid catalog");
    let kept = run.outcome.kept();
    println!(
        "streamlined {} -> {} elements at v=0.75\n",
        run.outcome.len(),
        run.outcome.kept_count()
    );

    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SimMatcher::new(0.8)),
        Box::new(ClusterMatcher::new(20)),
        Box::new(LshMatcher::new(1)),
    ];

    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>6} {:>6}",
        "matcher", "input", "PQ", "PC", "F1", "RR"
    );
    for matcher in &matchers {
        for (label, keep) in [("original", None), ("streamlined", Some(&kept))] {
            let q = evaluate(matcher.as_ref(), &dataset, &signatures, keep);
            println!(
                "{:<14} {label:>9} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
                matcher.name(),
                q.pq,
                q.pc,
                q.f1,
                q.rr
            );
        }
    }
    println!(
        "\nreading: streamlining trades a little pair completeness (PC) for a\n\
         large gain in pair quality (PQ) and fewer comparisons (higher RR) —\n\
         the paper's Figure-7 effect on a single operating point."
    );
}

/// Matches attributes and tables in separate passes (mixed pairs are
/// meaningless) and scores the union against the annotated linkages.
fn evaluate(
    matcher: &dyn Matcher,
    dataset: &collaborative_scoping::datasets::Dataset,
    signatures: &SchemaSignatures,
    keep: Option<&HashSet<ElementId>>,
) -> MatchQuality {
    let mut attr_sets = Vec::new();
    let mut table_sets = Vec::new();
    for k in 0..signatures.schema_count() {
        let schema = dataset.catalog.schema(k);
        let attr_count = schema.attribute_count();
        let select = |range: std::ops::Range<usize>| -> HashSet<ElementId> {
            range
                .map(|e| ElementId::new(k, e))
                .filter(|id| keep.is_none_or(|s| s.contains(id)))
                .collect()
        };
        attr_sets.push(ElementSet::filtered(
            k,
            signatures.schema(k),
            &select(0..attr_count),
        ));
        table_sets.push(ElementSet::filtered(
            k,
            signatures.schema(k),
            &select(attr_count..schema.element_count()),
        ));
    }
    let mut pairs = matcher.match_pairs(&attr_sets);
    pairs.extend(matcher.match_pairs(&table_sets));
    let pairs = dedup_pairs(pairs);
    let tp = pairs
        .iter()
        .filter(|p| dataset.linkages.contains_pair(p.a, p.b))
        .count();
    match_quality(
        pairs.len(),
        tp,
        dataset.linkages.len(),
        dataset.catalog.cartesian_element_pairs(),
    )
}
