//! Bring your own schemas: DDL in, linkability verdicts out.
//!
//! Shows the full public API surface on user-supplied input: parse SQL
//! `CREATE TABLE` scripts, extend the concept lexicon with domain words,
//! scope collaboratively, and inspect per-element verdicts — including the
//! paper's Figure-1 example (the CLIENT/CUSTOMER/CAR schemas).
//!
//! Run with: `cargo run --release --example custom_schemas`

use collaborative_scoping::embed::lexicon::{ConceptEntry, Lexicon};
use collaborative_scoping::prelude::*;

fn main() {
    // The paper's Figure-1 scenario, written as plain DDL.
    let s1 = parse_schema(
        "S1",
        "CREATE TABLE CLIENT (
             CID INT PRIMARY KEY, NAME VARCHAR(100),
             ADDRESS VARCHAR(255), PHONE VARCHAR(40));",
    )
    .expect("valid DDL");
    let s2 = parse_schema(
        "S2",
        "CREATE TABLE CUSTOMER (
             ID INT PRIMARY KEY, FIRST_NAME VARCHAR(50),
             LAST_NAME VARCHAR(50), DOB DATE);
         CREATE TABLE SHIPMENTS (
             SID INT PRIMARY KEY, CUSTOMER_ID INT REFERENCES CUSTOMER(ID),
             DESTINATION VARCHAR(255), DELIVERY_TIME TIMESTAMP);",
    )
    .expect("valid DDL");
    let s3 = parse_schema(
        "S3",
        "CREATE TABLE BUYER (
             BID INT PRIMARY KEY, CNAME VARCHAR(100), CITY VARCHAR(100));",
    )
    .expect("valid DDL");
    let s4 = parse_schema(
        "S4",
        "CREATE TABLE CAR (
             CID INT PRIMARY KEY, CNAME VARCHAR(100),
             YEAR INT, COUNTRY VARCHAR(64));",
    )
    .expect("valid DDL");

    let catalog = Catalog::from_schemas(vec![s1, s2, s3, s4]);

    // A custom lexicon: start from the default concept graph and add a
    // word the stock lexicon does not know.
    let mut entries = Lexicon::default_lexicon().entries().to_vec();
    entries.push(ConceptEntry::new(
        "destination",
        Some("address"),
        "GENERIC",
        &["DESTINATION"],
    ));
    let encoder = SignatureEncoder::new(EncoderConfig::default(), Lexicon::new(entries));

    let signatures = encode_catalog(&encoder, &catalog);
    let run = CollaborativeScoper::new(0.85)
        .run(&signatures)
        .expect("valid catalog");

    println!("per-element linkability verdicts (v = 0.85):\n");
    for (i, id) in run.outcome.element_ids.iter().enumerate() {
        let info = catalog.info(*id);
        println!(
            "  {} {:<28} votes={} margin={:+.4}",
            if run.outcome.decisions[i] {
                "keep "
            } else {
                "prune"
            },
            info.qualified_name,
            run.accept_votes[i],
            run.best_margin[i],
        );
    }

    let car_kept = run.outcome.kept_in_schema(3);
    println!(
        "\nthe Formula-One style CAR schema keeps {car_kept}/5 elements — the
paper's Figure-1 expectation is that it is pruned (near) entirely."
    );
}
