//! Quickstart: collaborative scoping end-to-end on the OC3 dataset.
//!
//! Loads the three order-customer schemas, encodes every table and
//! attribute into a signature (phase I), trains one self-supervised
//! encoder-decoder per schema (phase II), assesses linkability with the
//! other schemas' models (phase III), and prints the streamlined schemas.
//!
//! Run with: `cargo run --release --example quickstart`

use collaborative_scoping::prelude::*;

fn main() {
    // 1. A matching scenario: three heterogeneous schemas + ground truth.
    let dataset = collaborative_scoping::datasets::oc3();
    println!(
        "loaded {}: {} schemas, {} elements, unlinkable overhead {:.0}%",
        dataset.name,
        dataset.catalog.schema_count(),
        dataset.catalog.element_count(),
        100.0 * dataset.unlinkable_overhead().unwrap(),
    );

    // 2. Phase I — serialize metadata (T^a / T^t) and encode signatures.
    let encoder = SignatureEncoder::default();
    let signatures = encode_catalog(&encoder, &dataset.catalog);
    println!(
        "encoded {} signatures of dimension {}",
        signatures.total_len(),
        signatures.dim()
    );

    // 3. Phases II + III — collaborative scoping at explained variance 0.8.
    let scoper = CollaborativeScoper::new(0.8);
    let run = scoper.run(&signatures).expect("OC3 is a valid catalog");
    println!(
        "collaborative scoping kept {}/{} elements ({} encoder-decoder passes)",
        run.outcome.kept_count(),
        run.outcome.len(),
        run.cost.pass_operations,
    );

    // 4. The streamlined schemas S' — the input a matcher would consume.
    let streamlined = run.outcome.streamlined(&dataset.catalog);
    for schema in streamlined.schemas() {
        println!("\n{} (streamlined):", schema.name);
        for table in &schema.tables {
            let cols: Vec<&str> = table.attributes.iter().map(|a| a.name.as_str()).collect();
            println!("  {} [{}]", table.name, cols.join(", "));
        }
    }

    // 5. How good was the assessment? Compare against the annotated labels.
    let labels = dataset.labels();
    let confusion = BinaryConfusion::from_labels(&run.outcome.decisions, &labels);
    println!(
        "\nlinkability assessment: precision {:.2}, recall {:.2}, F1 {:.2}",
        confusion.precision(),
        confusion.recall(),
        confusion.f1()
    );
}
