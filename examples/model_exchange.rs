//! Distributed deployment: exchange models, not data.
//!
//! The paper's phase III is explicitly designed so schemas never leave
//! their organizations — only the self-trained encoder-decoders
//! `M_k = {μ_k, PC_k, l_k}` are shared. This example simulates three
//! organizations: each trains its local model, publishes it as a compact
//! binary payload, and each then assesses its *own* elements against the
//! *received* models — reproducing the exact decisions of a centralized
//! run without any signature ever crossing the wire.
//!
//! Run with: `cargo run --release --example model_exchange`

use collaborative_scoping::prelude::*;

fn main() {
    let dataset = oc3();
    let encoder = SignatureEncoder::default();
    let signatures = encode_catalog(&encoder, &dataset.catalog);
    let v = ExplainedVariance::new(0.8).expect("valid variance");

    // --- Each organization trains locally and publishes its model. -----
    let mut wire_payloads = Vec::new();
    for k in 0..signatures.schema_count() {
        let model = LocalModel::train(k, signatures.schema(k), v).expect("non-empty schema");
        let envelope = ModelEnvelope::pack(&dataset.catalog.schema(k).name, &model);
        let payload = to_bytes(&envelope);
        println!(
            "{} publishes model: {} components, range {:.5}, payload {} bytes (JSON would be {})",
            envelope.schema_name,
            envelope.components.rows(),
            envelope.linkability_range,
            payload.len(),
            to_json(&envelope).expect("serializable").len(),
        );
        wire_payloads.push(payload);
    }

    // --- Each organization ingests the others' payloads and assesses. --
    println!();
    let mut total_kept = 0;
    for k in 0..signatures.schema_count() {
        let own = signatures.schema(k);
        let mut kept = vec![false; own.rows()];
        for (m, payload) in wire_payloads.iter().enumerate() {
            if m == k {
                continue;
            }
            let received = from_bytes(payload).expect("valid payload");
            for (i, ok) in received.assess(own).into_iter().enumerate() {
                kept[i] |= ok;
            }
        }
        let count = kept.iter().filter(|&&b| b).count();
        total_kept += count;
        println!(
            "{} keeps {count}/{} of its own elements after consulting the received models",
            dataset.catalog.schema(k).name,
            own.rows()
        );
    }

    // --- Cross-check against the centralized implementation. -----------
    let centralized = CollaborativeScoper::new(0.8)
        .run(&signatures)
        .expect("valid catalog");
    assert_eq!(
        total_kept,
        centralized.outcome.kept_count(),
        "distributed and centralized runs must agree"
    );
    println!(
        "\ndistributed total ({total_kept}) matches the centralized run ({}) — \
         no signature ever left its organization.",
        centralized.outcome.kept_count()
    );
}
