//! Data-marketplace scenario: should we even try to match this vendor?
//!
//! The paper's motivation (Section 1): organizations expose only metadata
//! on data markets; before buying, a consumer wants to know which parts of
//! a candidate schema are linkable to their own landscape — and a
//! completely unrelated offering should be recognized as such *without*
//! exchanging any data, only the self-trained encoder-decoder models.
//!
//! Here the "our landscape" is the OC3 trio; the marketplace candidate is
//! the Formula-One schema. Collaborative scoping prunes (nearly) all of it
//! while keeping the landscape's own linkable core intact.
//!
//! Run with: `cargo run --release --example data_marketplace`

use collaborative_scoping::prelude::*;

fn main() {
    let dataset = oc3_fo();
    let fo_schema = 3; // the marketplace candidate appended after OC3

    let encoder = SignatureEncoder::default();
    let signatures = encode_catalog(&encoder, &dataset.catalog);

    println!(
        "evaluating marketplace candidate '{}'",
        dataset.catalog.schema(fo_schema).name
    );
    println!(
        "candidate exposes {} tables / {} attributes of metadata\n",
        dataset.catalog.schema(fo_schema).table_count(),
        dataset.catalog.schema(fo_schema).attribute_count(),
    );

    // Sweep the global explained-variance knob and report how much of the
    // candidate survives at each strictness level.
    let sweep = collaborative_scoping::core::CollaborativeSweep::prepare(&signatures)
        .expect("valid catalog");
    println!("   v | candidate elements kept | own linkable kept");
    let labels = dataset.labels();
    for v in [0.95, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let outcome = sweep.assess_at(v).expect("valid v");
        let candidate_kept = outcome.kept_in_schema(fo_schema);
        // Of our own landscape's annotated-linkable elements, how many survive?
        let own_kept = outcome
            .element_ids
            .iter()
            .zip(outcome.decisions.iter())
            .zip(labels.iter())
            .filter(|((id, &kept), &linkable)| id.schema != fo_schema && kept && linkable)
            .count();
        let own_total = labels.iter().filter(|&&l| l).count();
        println!("{v:>4.2} | {candidate_kept:>21}/127 | {own_kept:>13}/{own_total}");
    }

    // The verdict at the paper's recommended strictness.
    let run = CollaborativeScoper::new(0.8)
        .run(&signatures)
        .expect("valid catalog");
    let kept = run.outcome.kept_in_schema(fo_schema);
    let frac = kept as f64 / 127.0;
    println!(
        "\nverdict at v=0.8: {:.1}% of the candidate is linkable to our landscape — {}",
        100.0 * frac,
        if frac < 0.1 {
            "skip this offering; it does not match our domain"
        } else {
            "worth a closer look"
        }
    );

    // What it cost: model passes instead of pairwise metadata comparisons.
    let cartesian = dataset.catalog.cartesian_element_pairs();
    println!(
        "cost: {} encoder-decoder passes vs {} pairwise comparisons ({:.1}%)",
        run.cost.pass_operations,
        cartesian,
        100.0 * run.cost.fraction_of(cartesian)
    );
}
