#!/usr/bin/env bash
# Regenerates the public-API snapshots (API.lock) after an intentional
# surface change, so `cs-lint --api-check` (run by scripts/verify.sh)
# passes again. Review the diff before committing — every changed line is
# a public-API change.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo run --offline --quiet -p cs-lint -- --api-write "$@"

echo "apilock: snapshots regenerated; review with \`git diff -- '*API.lock'\`"
