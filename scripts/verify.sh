#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# Runs entirely offline — the workspace's hermetic dependency policy
# (DESIGN.md §6) means no registry access is ever needed; if any step
# below tries to reach a registry, that itself is a policy violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (warnings deny the gate)"
RUSTFLAGS="-D warnings" cargo build --workspace --release --offline

echo "==> cargo run -p cs-lint --offline"
cargo run -q -p cs-lint --release --offline

echo "==> cs-lint --api-check (public-API snapshot gate)"
cargo run -q -p cs-lint --release --offline -- --api-check

echo "==> bench_json --smoke (benchmark emitter + PCA hot-path budget gate)"
cargo run -q -p cs-bench --release --offline --bin bench_json -- --smoke --out target/bench-smoke.json --budget BENCH_BUDGET.json

echo "==> ann_gate (ANN recall@10 >= 0.9 and SIM-F1 parity on the scaling-quality grid)"
cargo run -q -p cs-repro --release --offline --bin ann_gate

echo "==> cs-fault smoke (fault matrix, digest stable across CS_THREADS)"
digest=""
for threads in 1 2 8; do
  out="$(CS_THREADS=$threads cargo run -q -p cs-fault --release --offline --bin fault_smoke)"
  line="$(printf '%s\n' "$out" | grep '^fault-matrix digest: ')"
  if [ -z "$digest" ]; then
    digest="$line"
    printf '%s (CS_THREADS=%s)\n' "$line" "$threads"
  elif [ "$line" != "$digest" ]; then
    echo "FAIL: fault-matrix digest diverged under CS_THREADS=$threads" >&2
    echo "  expected: $digest" >&2
    echo "  got:      $line" >&2
    exit 1
  fi
done

echo "==> cs-fault smoke under sanitizer (lock-order + float-env digests stable)"
fault_digest=""
san_digest=""
for threads in 1 2 8; do
  out="$(CS_SANITIZE=1 CS_THREADS=$threads cargo run -q -p cs-fault --release --offline --bin fault_smoke)"
  fline="$(printf '%s\n' "$out" | grep '^fault-matrix digest: ')"
  sline="$(printf '%s\n' "$out" | grep '^sanitizer digest: ')"
  if [ -z "$san_digest" ]; then
    fault_digest="$fline"
    san_digest="$sline"
    printf '%s (CS_SANITIZE=1 CS_THREADS=%s)\n' "$fline" "$threads"
    printf '%s (CS_SANITIZE=1 CS_THREADS=%s)\n' "$sline" "$threads"
  elif [ "$fline" != "$fault_digest" ] || [ "$sline" != "$san_digest" ]; then
    echo "FAIL: sanitized digests diverged under CS_THREADS=$threads" >&2
    echo "  expected: $fault_digest / $san_digest" >&2
    echo "  got:      $fline / $sline" >&2
    exit 1
  fi
done

echo "==> cs-fault generator fuzz (knob lattice, digest stable across CS_THREADS)"
fuzz_digest=""
for threads in 1 2 8; do
  out="$(CS_THREADS=$threads cargo run -q -p cs-fault --release --offline --bin fuzz_smoke)"
  line="$(printf '%s\n' "$out" | grep '^generator-fuzz digest: ')"
  if [ -z "$fuzz_digest" ]; then
    fuzz_digest="$line"
    printf '%s (CS_THREADS=%s)\n' "$line" "$threads"
  elif [ "$line" != "$fuzz_digest" ]; then
    echo "FAIL: generator-fuzz digest diverged under CS_THREADS=$threads" >&2
    echo "  expected: $fuzz_digest" >&2
    echo "  got:      $line" >&2
    exit 1
  fi
done

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
