//! The reproduction's shape targets (DESIGN.md §4): the qualitative
//! claims of the paper's evaluation, asserted as tests. Absolute numbers
//! differ from the paper (our encoder is a deterministic substitute for
//! Sentence-BERT); who wins, by what rough factor, and where the
//! crossovers fall must hold.

use collaborative_scoping::core::{CollaborativeSweep, GlobalScoper};
use collaborative_scoping::metrics::{BinaryConfusion, SweepCurve};
use collaborative_scoping::oda::{OutlierDetector, PcaDetector, ZScoreDetector};
use collaborative_scoping::prelude::*;

const GRID: usize = 21;

struct Summary {
    auc_f1: f64,
    auc_roc: f64,
    auc_roc_smoothed: f64,
    auc_pr: f64,
}

fn summarize(curve: &SweepCurve) -> Summary {
    Summary {
        auc_f1: curve.auc_f1(),
        auc_roc: curve.auc_roc(),
        auc_roc_smoothed: curve.auc_roc_smoothed(),
        auc_pr: curve.auc_pr(),
    }
}

fn global_curve(det: &dyn OutlierDetector, sigs: &SchemaSignatures, labels: &[bool]) -> SweepCurve {
    struct W<'a>(&'a dyn OutlierDetector);
    impl OutlierDetector for W<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn score(&self, d: &collaborative_scoping::linalg::Matrix) -> Vec<f64> {
            self.0.score(d)
        }
    }
    let scores = GlobalScoper::new(W(det)).scores(sigs).expect("non-empty");
    let mut curve = SweepCurve::new();
    for i in 0..GRID {
        let p = i as f64 / (GRID - 1) as f64;
        let outcome =
            collaborative_scoping::core::scoping::scope_from_scores("t", sigs, &scores, p);
        curve.push(p, BinaryConfusion::from_labels(&outcome.decisions, labels));
    }
    curve
}

fn collab_curve(sigs: &SchemaSignatures, labels: &[bool]) -> SweepCurve {
    let sweep = CollaborativeSweep::prepare(sigs).expect("valid");
    let mut curve = SweepCurve::new();
    for i in 0..GRID {
        let v = 0.99 - 0.98 * (i as f64 / (GRID - 1) as f64);
        let outcome = sweep.assess_at(v).expect("valid v");
        curve.push(v, BinaryConfusion::from_labels(&outcome.decisions, labels));
    }
    curve
}

fn best_global_pca(sigs: &SchemaSignatures, labels: &[bool]) -> Summary {
    [0.3, 0.5, 0.7]
        .into_iter()
        .map(|v| summarize(&global_curve(&PcaDetector::with_variance(v), sigs, labels)))
        .max_by(|a, b| collaborative_scoping::linalg::total_cmp_f64(&a.auc_pr, &b.auc_pr))
        .expect("non-empty roster")
}

fn prepared(ds: &collaborative_scoping::datasets::Dataset) -> (SchemaSignatures, Vec<bool>) {
    let encoder = SignatureEncoder::default();
    (encode_catalog(&encoder, &ds.catalog), ds.labels())
}

#[test]
fn collaborative_beats_global_on_both_datasets() {
    // Shape target (i): collaborative wins AUC-F1, AUC-ROC', AUC-PR on
    // both datasets, with larger margins on the heterogeneous OC3-FO.
    let (sigs3, labels3) = prepared(&oc3());
    let (sigsfo, labelsfo) = prepared(&oc3_fo());
    let g3 = best_global_pca(&sigs3, &labels3);
    let c3 = summarize(&collab_curve(&sigs3, &labels3));
    let gfo = best_global_pca(&sigsfo, &labelsfo);
    let cfo = summarize(&collab_curve(&sigsfo, &labelsfo));

    assert!(
        c3.auc_f1 > g3.auc_f1,
        "OC3 AUC-F1 {} vs {}",
        c3.auc_f1,
        g3.auc_f1
    );
    assert!(
        c3.auc_pr > g3.auc_pr,
        "OC3 AUC-PR {} vs {}",
        c3.auc_pr,
        g3.auc_pr
    );
    assert!(
        c3.auc_roc_smoothed > g3.auc_roc_smoothed,
        "OC3 AUC-ROC' {} vs {}",
        c3.auc_roc_smoothed,
        g3.auc_roc_smoothed
    );
    assert!(cfo.auc_f1 > gfo.auc_f1, "OC3-FO AUC-F1");
    assert!(cfo.auc_pr > gfo.auc_pr, "OC3-FO AUC-PR");
    assert!(
        cfo.auc_roc_smoothed > gfo.auc_roc_smoothed,
        "OC3-FO AUC-ROC'"
    );
    // Margins grow with heterogeneity.
    assert!(
        cfo.auc_pr - gfo.auc_pr > c3.auc_pr - g3.auc_pr,
        "AUC-PR margin must be larger on OC3-FO"
    );
    assert!(
        cfo.auc_f1 - gfo.auc_f1 > c3.auc_f1 - g3.auc_f1,
        "AUC-F1 margin must be larger on OC3-FO"
    );
}

#[test]
fn plain_auc_roc_penalizes_collaborative() {
    // Shape target (ii): collaborative scoping's FPR never reaches 1, so
    // its plain AUC-ROC is lower than its smoothed AUC-ROC' — the paper's
    // Section 4.2 caveat.
    let (sigs, labels) = prepared(&oc3_fo());
    let c = summarize(&collab_curve(&sigs, &labels));
    assert!(
        c.auc_roc_smoothed > c.auc_roc + 0.1,
        "ROC' {} should clearly exceed plain ROC {}",
        c.auc_roc_smoothed,
        c.auc_roc
    );
}

#[test]
fn global_scoping_collapses_on_heterogeneous_schemas() {
    // Shape target (iii): every global method loses AUC-PR when the
    // Formula-One schema is added; collaborative stays robust.
    let (sigs3, labels3) = prepared(&oc3());
    let (sigsfo, labelsfo) = prepared(&oc3_fo());

    let g3 = best_global_pca(&sigs3, &labels3);
    let gfo = best_global_pca(&sigsfo, &labelsfo);
    let global_drop = g3.auc_pr - gfo.auc_pr;
    assert!(
        global_drop > 0.1,
        "global scoping must degrade: drop {global_drop}"
    );

    let c3 = summarize(&collab_curve(&sigs3, &labels3));
    let cfo = summarize(&collab_curve(&sigsfo, &labelsfo));
    let collab_drop = c3.auc_pr - cfo.auc_pr;
    assert!(
        collab_drop < global_drop * 0.5,
        "collaborative must be robust: drop {collab_drop} vs global {global_drop}"
    );

    // Z-score ends up near (or below) the linkable base rate on OC3-FO.
    let z = summarize(&global_curve(&ZScoreDetector, &sigsfo, &labelsfo));
    let base_rate = labelsfo.iter().filter(|&&l| l).count() as f64 / labelsfo.len() as f64;
    assert!(
        z.auc_pr < base_rate + 0.12,
        "Z-score AUC-PR {} should hover near the {base_rate:.2} base rate",
        z.auc_pr
    );
}

#[test]
fn collaborative_precision_is_high_at_high_variance() {
    // Shape target (v) precursor: for v > 0.8 the kept set is precise —
    // this is what drives the Figure-7 PQ boost.
    let (sigs, labels) = prepared(&oc3_fo());
    let sweep = CollaborativeSweep::prepare(&sigs).expect("valid");
    for v in [0.95, 0.9, 0.85] {
        let outcome = sweep.assess_at(v).expect("valid v");
        let confusion = BinaryConfusion::from_labels(&outcome.decisions, &labels);
        assert!(
            confusion.precision() > 0.6,
            "v={v}: precision {} too low",
            confusion.precision()
        );
    }
    // And it clearly exceeds the 27.5% linkable base rate everywhere above 0.6.
    for v in [0.8, 0.7, 0.65] {
        let outcome = sweep.assess_at(v).expect("valid v");
        let confusion = BinaryConfusion::from_labels(&outcome.decisions, &labels);
        assert!(
            confusion.precision() > 0.5,
            "v={v}: {}",
            confusion.precision()
        );
    }
}

#[test]
fn pass_operations_match_paper_exactly() {
    // §4.4: 320 passes (4.76%) on OC3, 861 (3.78%) on OC3-FO — these are
    // structural counts and must match the paper to the digit.
    let (sigs3, _) = prepared(&oc3());
    let run3 = CollaborativeScoper::new(0.8).run(&sigs3).expect("valid");
    assert_eq!(run3.cost.pass_operations, 320);
    let frac3 = run3
        .cost
        .fraction_of(oc3().catalog.cartesian_element_pairs());
    assert!((frac3 - 0.0476).abs() < 0.0005, "{frac3}");

    let (sigsfo, _) = prepared(&oc3_fo());
    let runfo = CollaborativeScoper::new(0.8).run(&sigsfo).expect("valid");
    assert_eq!(runfo.cost.pass_operations, 861);
    let fracfo = runfo
        .cost
        .fraction_of(oc3_fo().catalog.cartesian_element_pairs());
    assert!((fracfo - 0.0378).abs() < 0.0005, "{fracfo}");
}
