//! Property-based integration tests: scoping invariants must hold on
//! arbitrary synthetic matching scenarios, not just the OC3 datasets.
//!
//! Driven by the in-workspace `cs_linalg::check` harness (hermetic
//! replacement for proptest); enable the `proptest-tests` feature for a
//! deeper fuzzing multiplier.

use collaborative_scoping::core::{scoping::scope_from_scores, CollaborativeSweep};
use collaborative_scoping::datasets::synthetic::{generate, SyntheticConfig};
use collaborative_scoping::linalg::check::{run, Gen};
use collaborative_scoping::prelude::*;

const CASES: usize = 12;

fn synthetic_config(g: &mut Gen) -> SyntheticConfig {
    let shared = g.usize_in(8, 15);
    SyntheticConfig {
        schemas: g.usize_in(2, 4),
        shared_concepts: shared,
        concepts_per_schema: g.usize_in(4, 7).min(shared),
        private_per_schema: g.usize_in(0, 9),
        table_width: 5,
        alien_elements: 0,
        seed: g.u64_below(1000),
    }
}

#[test]
fn collaborative_scoping_invariants() {
    run("collaborative_scoping_invariants", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.05, 0.99);
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let run = CollaborativeScoper::new(v).run(&sigs).unwrap();

        // Output covers every element exactly once.
        assert_eq!(run.outcome.len(), ds.catalog.element_count());
        // Votes bounded by the number of foreign models.
        let foreign = ds.catalog.schema_count() - 1;
        assert!(run.accept_votes.iter().all(|&a| a <= foreign));
        // Decisions agree with votes under the ANY rule.
        for (d, &a) in run.outcome.decisions.iter().zip(run.accept_votes.iter()) {
            assert_eq!(*d, a >= 1);
        }
        // Deterministic.
        let again = CollaborativeScoper::new(v).run(&sigs).unwrap();
        assert_eq!(run.outcome.decisions, again.outcome.decisions);
        // Cost accounting.
        assert_eq!(run.cost.pass_operations, sigs.total_len() * foreign);
    });
}

#[test]
fn sweep_matches_direct_on_synthetic() {
    run("sweep_matches_direct_on_synthetic", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.05, 0.99);
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        let fast = sweep.assess_at(v);
        let slow = CollaborativeScoper::new(v).run(&sigs).unwrap().outcome;
        assert_eq!(fast.decisions, slow.decisions);
    });
}

#[test]
fn global_scoping_keep_count_and_nesting() {
    run("global_scoping_keep_count_and_nesting", CASES, |g| {
        let n = g.usize_in(2, 59);
        let scores = g.vec_f64(n, 0.0, 100.0);
        let p1 = g.f64_in(0.0, 1.0);
        let p2 = g.f64_in(0.0, 1.0);
        // Wrap scores in a one-schema signature set.
        let m = collaborative_scoping::linalg::Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let sigs = SchemaSignatures::from_matrices(vec![m], vec!["s".into()]);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = scope_from_scores("t", &sigs, &scores, lo);
        let b = scope_from_scores("t", &sigs, &scores, hi);
        assert_eq!(a.kept_count(), (lo * n as f64).round() as usize);
        assert_eq!(b.kept_count(), (hi * n as f64).round() as usize);
        // Nesting: stricter keep set is contained in the looser one.
        assert!(a.kept().is_subset(&b.kept()));
    });
}

#[test]
fn match_quality_bounds() {
    run("match_quality_bounds", CASES * 4, |g| {
        let c = g.usize_in(0, 499);
        let tp_frac = g.f64_in(0.0, 1.0);
        let truth = g.usize_in(1, 99);
        let cart = g.usize_in(500, 4999);
        let tp = ((c as f64 * tp_frac) as usize).min(truth);
        let q = match_quality(c, tp, truth, cart);
        assert!((0.0..=1.0).contains(&q.pq));
        assert!((0.0..=1.0).contains(&q.pc));
        assert!((0.0..=1.0).contains(&q.f1));
        assert!(q.rr <= 1.0);
        // F1 is between 0 and the max of PQ/PC.
        assert!(q.f1 <= q.pq.max(q.pc) + 1e-12);
    });
}

#[test]
fn alien_schema_is_pruned_harder_than_related() {
    run("alien_schema_is_pruned_harder_than_related", CASES, |g| {
        let seed = g.u64_below(200);
        let config = SyntheticConfig {
            schemas: 3,
            shared_concepts: 20,
            concepts_per_schema: 14,
            private_per_schema: 4,
            table_width: 6,
            alien_elements: 24,
            seed,
        };
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let run = CollaborativeScoper::new(0.8).run(&sigs).unwrap();
        let alien = 3;
        let alien_frac = run.outcome.kept_in_schema(alien) as f64 / sigs.schema_len(alien) as f64;
        let related_frac: f64 = (0..3)
            .map(|k| run.outcome.kept_in_schema(k) as f64 / sigs.schema_len(k) as f64)
            .sum::<f64>()
            / 3.0;
        assert!(
            alien_frac < related_frac,
            "alien kept {alien_frac:.2} vs related {related_frac:.2} (seed {seed})"
        );
    });
}

#[test]
fn encoder_is_deterministic_across_instances() {
    let ds = generate(&SyntheticConfig::default());
    let a = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
    let b = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
    for k in 0..a.schema_count() {
        assert_eq!(a.schema(k).as_slice(), b.schema(k).as_slice());
    }
}
