//! Property-based integration tests: scoping invariants must hold on
//! arbitrary synthetic matching scenarios, not just the OC3 datasets.
//!
//! Driven by the in-workspace `cs_linalg::check` harness (hermetic
//! replacement for proptest); enable the `proptest-tests` feature for a
//! deeper fuzzing multiplier.

use std::collections::HashSet;
use std::sync::Arc;

use collaborative_scoping::core::{
    scoping::scope_from_scores, CollaborativeSweep, ExecPolicy, ThreadPool,
};
use collaborative_scoping::datasets::codec::dataset_to_bytes;
use collaborative_scoping::datasets::synthetic::{
    all_unlinkable, generate, SizeDistribution, SyntheticConfig,
};
use collaborative_scoping::linalg::check::{run, Gen};
use collaborative_scoping::matching::CandidatePair;
use collaborative_scoping::prelude::*;

const CASES: usize = 12;

/// The two execution policies every metamorphic property is asserted
/// under: outcomes must be bit-identical between them.
fn exec_policies() -> [ExecPolicy; 2] {
    [
        ExecPolicy::Sequential,
        ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(3))),
    ]
}

/// Start offset of each schema's decision block in unified row order.
fn block_offsets(sigs: &SchemaSignatures) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(sigs.schema_count());
    let mut acc = 0;
    for k in 0..sigs.schema_count() {
        offsets.push(acc);
        acc += sigs.schema_len(k);
    }
    offsets
}

/// Draws a config across the whole generator knob surface. The shared
/// pool (24–32) is kept large enough that even the worst drawn
/// combination (Fixed sizes, ratio 0.9, overlap 0.5, 4 schemas) leaves
/// every schema's accessible region at least as large as its concept
/// picks, so every drawn config is valid by construction.
fn synthetic_config(g: &mut Gen) -> SyntheticConfig {
    let sizes = match g.usize_in(0, 2) {
        0 => SizeDistribution::Fixed,
        1 => SizeDistribution::Uniform { min: 4, max: 10 },
        _ => SizeDistribution::Ramp { min: 4, max: 12 },
    };
    let ratio = if g.usize_in(0, 2) == 0 {
        None
    } else {
        Some(g.f64_in(0.1, 0.9))
    };
    SyntheticConfig {
        schemas: g.usize_in(2, 4),
        shared_concepts: g.usize_in(24, 32),
        concepts_per_schema: g.usize_in(4, 7),
        private_per_schema: g.usize_in(0, 9),
        table_width: 5,
        alien_elements: 0,
        linkable_ratio: ratio,
        lexicon_overlap: g.f64_in(0.5, 1.0),
        naming_noise: g.f64_in(0.0, 0.8),
        subtype_depth: g.usize_in(0, 2),
        sizes,
        seed: g.u64_below(1000),
    }
}

#[test]
fn collaborative_scoping_invariants() {
    run("collaborative_scoping_invariants", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.05, 0.99);
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let run = CollaborativeScoper::new(v).run(&sigs).unwrap();

        // Output covers every element exactly once.
        assert_eq!(run.outcome.len(), ds.catalog.element_count());
        // Votes bounded by the number of foreign models.
        let foreign = ds.catalog.schema_count() - 1;
        assert!(run.accept_votes.iter().all(|&a| a <= foreign));
        // Decisions agree with votes under the ANY rule.
        for (d, &a) in run.outcome.decisions.iter().zip(run.accept_votes.iter()) {
            assert_eq!(*d, a >= 1);
        }
        // Deterministic.
        let again = CollaborativeScoper::new(v).run(&sigs).unwrap();
        assert_eq!(run.outcome.decisions, again.outcome.decisions);
        // Cost accounting.
        assert_eq!(run.cost.pass_operations, sigs.total_len() * foreign);
    });
}

#[test]
fn sweep_matches_direct_on_synthetic() {
    run("sweep_matches_direct_on_synthetic", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.05, 0.99);
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        let fast = sweep.assess_at(v).expect("valid v");
        let slow = CollaborativeScoper::new(v).run(&sigs).unwrap().outcome;
        assert_eq!(fast.decisions, slow.decisions);
    });
}

#[test]
fn global_scoping_keep_count_and_nesting() {
    run("global_scoping_keep_count_and_nesting", CASES, |g| {
        let n = g.usize_in(2, 59);
        let scores = g.vec_f64(n, 0.0, 100.0);
        let p1 = g.f64_in(0.0, 1.0);
        let p2 = g.f64_in(0.0, 1.0);
        // Wrap scores in a one-schema signature set.
        let m = collaborative_scoping::linalg::Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let sigs = SchemaSignatures::from_matrices(vec![m], vec!["s".into()]);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = scope_from_scores("t", &sigs, &scores, lo);
        let b = scope_from_scores("t", &sigs, &scores, hi);
        assert_eq!(a.kept_count(), (lo * n as f64).round() as usize);
        assert_eq!(b.kept_count(), (hi * n as f64).round() as usize);
        // Nesting: stricter keep set is contained in the looser one.
        assert!(a.kept().is_subset(&b.kept()));
    });
}

#[test]
fn match_quality_bounds() {
    run("match_quality_bounds", CASES * 4, |g| {
        let c = g.usize_in(0, 499);
        let tp_frac = g.f64_in(0.0, 1.0);
        let truth = g.usize_in(1, 99);
        let cart = g.usize_in(500, 4999);
        let tp = ((c as f64 * tp_frac) as usize).min(truth);
        let q = match_quality(c, tp, truth, cart);
        assert!((0.0..=1.0).contains(&q.pq));
        assert!((0.0..=1.0).contains(&q.pc));
        assert!((0.0..=1.0).contains(&q.f1));
        assert!(q.rr <= 1.0);
        // F1 is between 0 and the max of PQ/PC.
        assert!(q.f1 <= q.pq.max(q.pc) + 1e-12);
    });
}

#[test]
fn alien_schema_is_pruned_harder_than_related() {
    run("alien_schema_is_pruned_harder_than_related", CASES, |g| {
        let seed = g.u64_below(200);
        let config = SyntheticConfig {
            schemas: 3,
            shared_concepts: 20,
            concepts_per_schema: 14,
            private_per_schema: 4,
            table_width: 6,
            alien_elements: 24,
            seed,
            ..SyntheticConfig::default()
        };
        let ds = generate(&config);
        let encoder = SignatureEncoder::default();
        let sigs = encode_catalog(&encoder, &ds.catalog);
        let run = CollaborativeScoper::new(0.8).run(&sigs).unwrap();
        let alien = 3;
        let alien_frac = run.outcome.kept_in_schema(alien) as f64 / sigs.schema_len(alien) as f64;
        let related_frac: f64 = (0..3)
            .map(|k| run.outcome.kept_in_schema(k) as f64 / sigs.schema_len(k) as f64)
            .sum::<f64>()
            / 3.0;
        assert!(
            alien_frac < related_frac,
            "alien kept {alien_frac:.2} vs related {related_frac:.2} (seed {seed})"
        );
    });
}

/// Metamorphic: the order schemas arrive in is presentation, not
/// signal. Every per-element verdict must survive a random permutation
/// of the schema order — the local models are per-schema and the ANY
/// rule counts foreign votes, so nothing may depend on position.
#[test]
fn schema_order_permutation_preserves_verdicts() {
    run("schema_order_permutation_preserves_verdicts", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.2, 0.95);
        let ds = generate(&config);
        let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
        let k = sigs.schema_count();
        // Fisher–Yates on the harness rng: perm[i] = original index of
        // the schema now sitting at position i.
        let mut perm: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = g.usize_in(0, i);
            perm.swap(i, j);
        }
        let permuted = SchemaSignatures::from_matrices(
            perm.iter().map(|&p| sigs.schema(p).clone()).collect(),
            perm.iter()
                .map(|&p| sigs.schema_names()[p].clone())
                .collect(),
        );

        let mut per_policy: Vec<Vec<bool>> = Vec::new();
        for exec in exec_policies() {
            let scope = |s: &SchemaSignatures| {
                CollaborativeScoper::builder()
                    .explained_variance(v)
                    .exec(exec.clone())
                    .build()
                    .expect("valid v")
                    .run(s)
                    .expect("healthy synthetic catalog")
                    .outcome
            };
            let base = scope(&sigs);
            let shuffled = scope(&permuted);
            let base_off = block_offsets(&sigs);
            let perm_off = block_offsets(&permuted);
            for (pos, &orig) in perm.iter().enumerate() {
                let len = sigs.schema_len(orig);
                let a = &base.decisions[base_off[orig]..base_off[orig] + len];
                let b = &shuffled.decisions[perm_off[pos]..perm_off[pos] + len];
                assert_eq!(a, b, "schema {orig} verdicts changed under reordering");
            }
            per_policy.push(base.decisions);
        }
        // Bit-identical across Sequential and a pinned pool.
        assert_eq!(per_policy[0], per_policy[1]);
    });
}

/// Metamorphic: scoping only ever removes — the streamlined catalog S'
/// is a subset of the input S, element for element and schema for
/// schema, under every execution policy.
#[test]
fn streamlined_catalog_is_subset_of_input() {
    run("streamlined_catalog_is_subset_of_input", CASES, |g| {
        let config = synthetic_config(g);
        let v = g.f64_in(0.1, 0.99);
        let ds = generate(&config);
        let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
        let all: HashSet<ElementId> = sigs.element_ids().into_iter().collect();

        let mut per_policy: Vec<ScopingOutcome> = Vec::new();
        for exec in exec_policies() {
            let outcome = CollaborativeScoper::builder()
                .explained_variance(v)
                .exec(exec)
                .build()
                .expect("valid v")
                .run(&sigs)
                .expect("healthy synthetic catalog")
                .outcome;
            let kept = outcome.kept();
            assert!(kept.is_subset(&all), "kept an element not in S");
            // Projection keeps every kept element plus the container
            // table of any kept attribute — never more than S, never
            // fewer than the kept set, and schemas stay index-aligned.
            let streamlined = outcome.streamlined(&ds.catalog);
            assert!(streamlined.element_count() <= ds.catalog.element_count());
            assert!(streamlined.element_count() >= kept.len());
            assert_eq!(streamlined.schema_count(), ds.catalog.schema_count());
            // Keeping everything is the identity on size.
            assert_eq!(
                ds.catalog.project(&all).element_count(),
                ds.catalog.element_count()
            );
            per_policy.push(outcome);
        }
        assert_eq!(per_policy[0], per_policy[1]);
    });
}

/// Metamorphic monotonicity — stated honestly. The naive claim
/// "|S'| shrinks monotonically as v drops" is empirically FALSE: with
/// `schemas: 3, shared_concepts: 12, concepts_per_schema: 8,
/// private_per_schema: 4, table_width: 5, alien_elements: 6, seed: 2`,
/// kept counts along v = 0.95, 0.85, …, 0.55 are 36, 41, 43, 40, 42 —
/// lowering v shrinks every local model, but both own-range and foreign
/// reconstruction errors move with it, so the acceptance set can
/// oscillate. What the design DOES guarantee, and what this test pins:
///
/// 1. per-schema component counts are monotone non-increasing as v
///    decreases (explained-variance truncation is nested), and
/// 2. the kept set is nested in rule strictness:
///    kept(AtLeast(j+1)) ⊆ kept(AtLeast(j)), with All ≡ AtLeast(k−1).
///
/// Both hold bit-identically under Sequential and pooled execution.
#[test]
fn sweep_monotonicity_in_components_and_rule_strictness() {
    run(
        "sweep_monotonicity_in_components_and_rule_strictness",
        CASES,
        |g| {
            let config = synthetic_config(g);
            let v = g.f64_in(0.2, 0.95);
            let ds = generate(&config);
            let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
            let foreign = sigs.schema_count() - 1;

            let mut digests: Vec<Vec<Vec<bool>>> = Vec::new();
            for exec in exec_policies() {
                let sweep =
                    CollaborativeSweep::prepare_with(&sigs, &exec).expect("healthy catalog");

                // 1. Nested truncation: fewer components at lower v.
                let ladder = [0.95, 0.75, 0.55, 0.35, 0.15];
                for pair in ladder.windows(2) {
                    let hi = sweep.components_at(pair[0]);
                    let lo = sweep.components_at(pair[1]);
                    for (schema, (h, l)) in hi.iter().zip(lo.iter()).enumerate() {
                        assert!(
                            l <= h,
                            "schema {schema}: components grew from {h} to {l} as v fell \
                             from {} to {}",
                            pair[0],
                            pair[1]
                        );
                    }
                }

                // 2. Rule-strictness nesting at a fixed v.
                let mut outcomes = Vec::new();
                let mut prev = sweep
                    .assess_with_rule(v, CombinationRule::AtLeast(1))
                    .expect("valid v");
                assert_eq!(
                    prev.decisions,
                    sweep
                        .assess_with_rule(v, CombinationRule::Any)
                        .expect("valid v")
                        .decisions,
                    "Any must equal AtLeast(1)"
                );
                for j in 2..=foreign {
                    let cur = sweep
                        .assess_with_rule(v, CombinationRule::AtLeast(j))
                        .expect("valid v");
                    assert!(
                        cur.kept().is_subset(&prev.kept()),
                        "AtLeast({j}) kept an element AtLeast({}) pruned",
                        j - 1
                    );
                    outcomes.push(prev.decisions.clone());
                    prev = cur;
                }
                assert_eq!(
                    prev.decisions,
                    sweep
                        .assess_with_rule(v, CombinationRule::All)
                        .expect("valid v")
                        .decisions,
                    "All must equal AtLeast(k-1)"
                );
                outcomes.push(prev.decisions);
                digests.push(outcomes);
            }
            // Bit-identical across Sequential and a pinned pool.
            assert_eq!(digests[0], digests[1]);
        },
    );
}

/// Generator self-consistency over the whole knob surface: the same
/// config must regenerate byte-identically (binary codec), every
/// annotated linkage must reference attributes that exist, and the
/// sub-typed pairs must connect distinct schemas.
#[test]
fn generator_is_self_consistent_across_knobs() {
    run("generator_is_self_consistent_across_knobs", CASES, |g| {
        let config = synthetic_config(g);
        let ds = generate(&config);
        assert_eq!(
            dataset_to_bytes(&ds),
            dataset_to_bytes(&generate(&config)),
            "same seed must regenerate byte-identically"
        );
        assert_eq!(ds.catalog.schema_count(), config.schemas);
        for p in ds.linkages.iter() {
            for id in [p.a, p.b] {
                assert!(id.schema < ds.catalog.schema_count(), "schema out of range");
                assert!(
                    id.element < ds.catalog.schema(id.schema).attribute_count(),
                    "linkage references a non-attribute element"
                );
            }
            assert_ne!(p.a.schema, p.b.schema, "inter-schema linkages only");
        }
    });
}

/// The linkable-ratio knob is honest: the annotated linkable fraction
/// never exceeds the eligible fraction `round(r·n)/n` and tracks the
/// knob closely when the pool is tight enough that shared picks
/// collide (full overlap, pool = schema size, 4 schemas).
#[test]
fn linkable_ratio_knob_tracks_annotated_fraction() {
    run(
        "linkable_ratio_knob_tracks_annotated_fraction",
        CASES,
        |g| {
            let r = g.f64_in(0.4, 0.95);
            let config = SyntheticConfig {
                schemas: 4,
                shared_concepts: 12,
                concepts_per_schema: 8,
                private_per_schema: 4,
                table_width: 5,
                alien_elements: 0,
                linkable_ratio: Some(r),
                lexicon_overlap: 1.0,
                naming_noise: 0.0,
                subtype_depth: 0,
                sizes: SizeDistribution::Fixed,
                seed: g.u64_below(1000),
            };
            let ds = generate(&config);
            let linkable = ds.linkages.linkable_per_schema(&ds.catalog);
            for k in 0..config.schemas {
                let n = ds.catalog.schema(k).attribute_count() as f64;
                let annotated = linkable[k] as f64 / n;
                let eligible = (r * n).round() / n;
                assert!(
                    annotated <= eligible + 1e-12,
                    "schema {k}: annotated {annotated:.3} exceeds eligible {eligible:.3}"
                );
                assert!(
                    (annotated - r).abs() <= 0.25,
                    "schema {k}: annotated {annotated:.3} drifted from knob {r:.3} \
                 (seed {})",
                    config.seed
                );
            }
        },
    );
}

/// Metamorphic: `linkable_ratio = 0` and the `all_unlinkable`
/// constructor are the same source, byte for byte, and both produce an
/// empty positive class.
#[test]
fn zero_linkable_ratio_equals_all_unlinkable() {
    run("zero_linkable_ratio_equals_all_unlinkable", CASES, |g| {
        let config = synthetic_config(g);
        let a = all_unlinkable(&config);
        let b = generate(&SyntheticConfig {
            linkable_ratio: Some(0.0),
            ..config.clone()
        });
        assert!(a.linkages.is_empty(), "positive class must be empty");
        assert_eq!(dataset_to_bytes(&a), dataset_to_bytes(&b));
    });
}

/// Metamorphic: naming noise rewrites presentation only. The noise pass
/// draws from its own salted RNG stream, so any noise level leaves the
/// schema sizes and the entire ground-truth linkage set untouched, and
/// level `0` is byte-stable.
#[test]
fn naming_noise_preserves_ground_truth() {
    run("naming_noise_preserves_ground_truth", CASES, |g| {
        let mut config = synthetic_config(g);
        config.naming_noise = 0.0;
        let clean = generate(&config);
        let noisy = generate(&SyntheticConfig {
            naming_noise: g.f64_in(0.3, 1.0),
            ..config.clone()
        });
        assert_eq!(clean.catalog.schema_count(), noisy.catalog.schema_count());
        for k in 0..clean.catalog.schema_count() {
            assert_eq!(
                clean.catalog.schema(k).element_count(),
                noisy.catalog.schema(k).element_count(),
                "noise changed schema {k}'s size"
            );
        }
        assert_eq!(clean.linkages.len(), noisy.linkages.len());
        for p in clean.linkages.iter() {
            assert!(
                noisy.linkages.contains_pair(p.a, p.b),
                "noise dropped linkage {:?}-{:?}",
                p.a,
                p.b
            );
        }
        // Level 0 skips the noise pass entirely: byte-identical.
        assert_eq!(
            dataset_to_bytes(&clean),
            dataset_to_bytes(&generate(&config))
        );
    });
}

/// Full attribute+table element sets, one per schema, in canonical order.
fn full_sets(sigs: &SchemaSignatures) -> Vec<ElementSet> {
    (0..sigs.schema_count())
        .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
        .collect()
}

/// Element display names aligned with [`ElementSet::full`] ordering.
fn named_sets_of(ds: &Dataset) -> Vec<NamedSet> {
    use collaborative_scoping::schema::ElementRef;
    (0..ds.catalog.schema_count())
        .map(|k| {
            let schema = ds.catalog.schema(k);
            let mut ids = Vec::new();
            let mut names = Vec::new();
            for (e, r) in schema.element_refs().into_iter().enumerate() {
                ids.push(ElementId::new(k, e));
                names.push(match r {
                    ElementRef::Table { table } => schema.tables[table].name.clone(),
                    ElementRef::Attribute { table, attribute } => {
                        schema.tables[table].attributes[attribute].name.clone()
                    }
                });
            }
            NamedSet::new(k, ids, names)
        })
        .collect()
}

/// The exact tie-inclusive cross-schema top-`k` pair set: for every
/// element, the pairs to its `k` nearest foreign elements by full-dim
/// squared Euclidean distance, keeping boundary ties. This is the
/// bounded `k′` reference the ANN matcher must stay inside.
fn exact_top_k_pairs(sets: &[ElementSet], k: usize) -> HashSet<CandidatePair> {
    use collaborative_scoping::linalg::vecops::sq_euclidean;
    let rows: Vec<(usize, ElementId, &[f64])> = sets
        .iter()
        .flat_map(|s| (0..s.ids.len()).map(move |i| (s.schema, s.ids[i], s.signatures.row(i))))
        .collect();
    let mut pairs = HashSet::new();
    for &(schema, id, q) in &rows {
        let mut scored: Vec<(ElementId, f64)> = rows
            .iter()
            .filter(|(s, _, _)| *s != schema)
            .map(|&(_, other, r)| (other, sq_euclidean(q, r)))
            .collect();
        scored.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
        if scored.len() > k {
            // Tie-inclusive boundary: keep everything scoring no worse
            // than the k-th entry.
            let bound = scored[k - 1].1;
            scored.retain(|(_, d)| total_cmp_f64(d, &bound) != std::cmp::Ordering::Greater);
        }
        for (other, _) in scored {
            pairs.insert(CandidatePair::new(id, other));
        }
    }
    pairs
}

/// With a candidate budget covering the whole catalog the two-stage ANN
/// path degenerates to exact retrieval, so every emitted pair must lie
/// inside the exact tie-inclusive top-`k′` pair set (`k′ = k` plus
/// boundary ties) — the prefilter and banding may reorder work but can
/// never invent a pair the flat index would not rank.
#[test]
fn ann_pairs_are_a_subset_of_flat_top_k_prime() {
    run("ann_pairs_are_a_subset_of_flat_top_k_prime", CASES, |g| {
        let config = synthetic_config(g);
        let ds = generate(&config);
        let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
        let sets = full_sets(&sigs);
        let k = g.usize_in(1, 4);
        let ann = AnnMatcher::with_config(AnnConfig {
            candidate_budget: sigs.total_len(),
            prefilter_dims: if g.usize_in(0, 1) == 0 { 0 } else { 8 },
            threads: 1,
            ..AnnConfig::with_k(k)
        });
        let pairs = ann.match_pairs(&sets);
        assert!(!pairs.is_empty(), "ANN found nothing on a healthy catalog");
        let reference = exact_top_k_pairs(&sets, k);
        for p in &pairs {
            assert!(
                reference.contains(p),
                "ANN emitted {p:?} outside the exact top-{k} (+ties) pair set"
            );
        }
    });
}

/// Recall gate across the generator knob surface: with a candidate
/// budget well below the catalog size, the banded index must still
/// recover at least 90% of each element's exact top-10 (sizes ×
/// unlinkable ratios × naming noise, all seeded).
#[test]
fn ann_recall_at_10_exceeds_floor_across_knob_grid() {
    use collaborative_scoping::embed::Lexicon;
    use collaborative_scoping::matching::{AnnIndex, FlatIndex};

    let encoder = SignatureEncoder::new(
        EncoderConfig {
            dim: 64,
            ..Default::default()
        },
        Lexicon::default_lexicon(),
    );
    for shared in [16usize, 28] {
        for unlinkable in [0.25f64, 0.5] {
            for noise in [0.0f64, 0.6] {
                let ds = generate(&SyntheticConfig {
                    schemas: 3,
                    shared_concepts: shared,
                    concepts_per_schema: shared / 2,
                    private_per_schema: shared / 4,
                    table_width: 6,
                    alien_elements: 0,
                    linkable_ratio: Some(1.0 - unlinkable),
                    naming_noise: noise,
                    seed: 0xA2_2B,
                    ..SyntheticConfig::default()
                });
                let sigs = encode_catalog(&encoder, &ds.catalog);
                let unified = sigs.unified();
                let rows = unified.rows();
                let config = AnnConfig {
                    candidate_budget: 48,
                    ..AnnConfig::with_k(10)
                };
                let index = AnnIndex::build(unified.clone(), config);
                let flat = FlatIndex::build(unified.clone());
                let mut hit = 0usize;
                let mut truth = 0usize;
                for q in 0..rows {
                    let exact: HashSet<usize> = flat
                        .search(unified.row(q), 10)
                        .into_iter()
                        .map(|(i, _)| i)
                        .collect();
                    let approx: HashSet<usize> = index
                        .search(unified.row(q), 10)
                        .into_iter()
                        .map(|(i, _)| i)
                        .collect();
                    hit += exact.intersection(&approx).count();
                    truth += exact.len();
                }
                let recall = hit as f64 / truth as f64;
                assert!(
                    recall >= 0.9,
                    "recall@10 = {recall:.3} < 0.9 at shared={shared} \
                     unlinkable={unlinkable} noise={noise} ({rows} rows)"
                );
            }
        }
    }
}

/// Metamorphic: the fused (dense + lexical, RRF) ranking is presentation
/// independent — permuting the order schemas are handed to the hybrid
/// matcher changes global row numbering, bucket fill order, and lexical
/// posting order, yet the ranked output (pairs AND scores) must be
/// bit-identical.
#[test]
fn hybrid_fused_ranking_is_invariant_under_schema_permutation() {
    run(
        "hybrid_fused_ranking_is_invariant_under_schema_permutation",
        CASES,
        |g| {
            let config = synthetic_config(g);
            let ds = generate(&config);
            let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
            let sets = full_sets(&sigs);
            let names = named_sets_of(&ds);
            let k = sets.len();
            let mut perm: Vec<usize> = (0..k).collect();
            for i in (1..k).rev() {
                let j = g.usize_in(0, i);
                perm.swap(i, j);
            }
            let sets_p: Vec<ElementSet> = perm.iter().map(|&p| sets[p].clone()).collect();
            let names_p: Vec<NamedSet> = perm.iter().map(|&p| names[p].clone()).collect();

            let ann = AnnConfig::with_k(3);
            let base = HybridMatcher::new(ann, names).ranked_pairs(&sets);
            let shuffled = HybridMatcher::new(ann, names_p).ranked_pairs(&sets_p);
            assert_eq!(
                base, shuffled,
                "fused ranking changed under schema reordering (perm {perm:?})"
            );
        },
    );
}

/// Determinism across regenerations: the same seeded config regenerates
/// the catalog byte-identically (codec digest pattern), and the full ANN
/// + hybrid pipeline built on each copy emits bit-identical rankings.
#[test]
fn ann_pipeline_is_stable_across_catalog_regeneration() {
    run(
        "ann_pipeline_is_stable_across_catalog_regeneration",
        CASES,
        |g| {
            let config = synthetic_config(g);
            let first = generate(&config);
            let second = generate(&config);
            assert_eq!(dataset_to_bytes(&first), dataset_to_bytes(&second));

            let rank = |ds: &Dataset| {
                let sigs = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
                let sets = full_sets(&sigs);
                let ann = AnnMatcher::new(3).ranked_pairs(&sets);
                let hybrid =
                    HybridMatcher::new(AnnConfig::with_k(3), named_sets_of(ds)).ranked_pairs(&sets);
                (ann, hybrid)
            };
            assert_eq!(rank(&first), rank(&second));
        },
    );
}

#[test]
fn encoder_is_deterministic_across_instances() {
    let ds = generate(&SyntheticConfig::default());
    let a = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
    let b = encode_catalog(&SignatureEncoder::default(), &ds.catalog);
    for k in 0..a.schema_count() {
        assert_eq!(a.schema(k).as_slice(), b.schema(k).as_slice());
    }
}
