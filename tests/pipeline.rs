//! Cross-crate integration tests: the full pipeline on the real datasets.

use collaborative_scoping::core::CollaborativeSweep;
use collaborative_scoping::prelude::*;

fn oc3_signatures() -> (collaborative_scoping::datasets::Dataset, SchemaSignatures) {
    let ds = oc3();
    let encoder = SignatureEncoder::default();
    let sigs = encode_catalog(&encoder, &ds.catalog);
    (ds, sigs)
}

#[test]
fn end_to_end_oc3_assessment_quality() {
    let (ds, sigs) = oc3_signatures();
    let run = CollaborativeScoper::new(0.8)
        .run(&sigs)
        .expect("valid catalog");
    let labels = ds.labels();
    let confusion = BinaryConfusion::from_labels(&run.outcome.decisions, &labels);
    // Far better than the 49% linkable base rate on both axes.
    assert!(
        confusion.precision() > 0.6,
        "precision {}",
        confusion.precision()
    );
    assert!(confusion.recall() > 0.6, "recall {}", confusion.recall());
    assert!(confusion.f1() > 0.6, "f1 {}", confusion.f1());
}

#[test]
fn formula_one_is_pruned_while_core_survives() {
    let ds = oc3_fo();
    let encoder = SignatureEncoder::default();
    let sigs = encode_catalog(&encoder, &ds.catalog);
    let sweep = CollaborativeSweep::prepare(&sigs).expect("valid catalog");
    let labels = ds.labels();
    for v in [0.9, 0.8, 0.7, 0.6] {
        let outcome = sweep.assess_at(v).expect("valid v");
        let fo_kept = outcome.kept_in_schema(3);
        assert!(
            fo_kept <= 12,
            "v={v}: too much Formula One kept: {fo_kept}/127"
        );
        let linkable_kept = outcome
            .element_ids
            .iter()
            .zip(outcome.decisions.iter())
            .zip(labels.iter())
            .filter(|((_, &kept), &linkable)| kept && linkable)
            .count();
        assert!(
            linkable_kept >= 40,
            "v={v}: linkable core eroded: {linkable_kept}/79"
        );
    }
}

#[test]
fn sweep_equals_direct_run_on_real_data() {
    let (_, sigs) = oc3_signatures();
    let sweep = CollaborativeSweep::prepare(&sigs).expect("valid catalog");
    for v in [0.9, 0.5, 0.2] {
        let fast = sweep.assess_at(v).expect("valid v");
        let slow = CollaborativeScoper::new(v)
            .run(&sigs)
            .expect("valid")
            .outcome;
        assert_eq!(fast.decisions, slow.decisions, "divergence at v={v}");
    }
}

#[test]
fn streamlined_catalog_is_consistent_and_matchable() {
    let (ds, sigs) = oc3_signatures();
    let run = CollaborativeScoper::new(0.75)
        .run(&sigs)
        .expect("valid catalog");
    let streamlined = run.outcome.streamlined(&ds.catalog);
    // Subset property.
    assert!(streamlined.element_count() <= ds.catalog.element_count());
    assert_eq!(streamlined.schema_count(), ds.catalog.schema_count());
    for (orig, slim) in ds.catalog.schemas().iter().zip(streamlined.schemas()) {
        assert!(slim.table_count() <= orig.table_count());
        assert!(slim.attribute_count() <= orig.attribute_count());
        // Every streamlined attribute exists in the original schema.
        for table in &slim.tables {
            let (_, orig_table) = orig.table(&table.name).expect("table preserved");
            for attr in &table.attributes {
                assert!(
                    orig_table.attribute(&attr.name).is_some(),
                    "{} lost",
                    attr.name
                );
            }
        }
    }
    // A matcher can consume the streamlined signatures without issue.
    let kept = run.outcome.kept();
    let sets: Vec<_> = (0..sigs.schema_count())
        .map(|k| collaborative_scoping::matching::ElementSet::filtered(k, sigs.schema(k), &kept))
        .collect();
    let pairs = LshMatcher::new(1).match_pairs(&sets);
    assert!(!pairs.is_empty());
    // Every generated pair connects kept elements of different schemas.
    for p in &pairs {
        assert!(kept.contains(&p.a) && kept.contains(&p.b));
        assert_ne!(p.a.schema, p.b.schema);
    }
}

#[test]
fn global_scoping_pipeline_on_real_data() {
    let (ds, sigs) = oc3_signatures();
    let scoper = GlobalScoper::new(PcaDetector::with_variance(0.5));
    let labels = ds.labels();
    // Keeping the linkable fraction of elements should beat random guessing.
    let linkable_frac = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
    let outcome = scoper.scope_at(&sigs, linkable_frac).expect("valid");
    let confusion = BinaryConfusion::from_labels(&outcome.decisions, &labels);
    // Global scoping on OC3 is only mildly better than chance at a single
    // operating point (which is the paper's point); it must not be worse.
    assert!(
        confusion.precision() >= linkable_frac - 0.02,
        "precision {} vs base rate {linkable_frac}",
        confusion.precision()
    );
    // Integrated over the sweep it clearly beats the base rate.
    let scores = scoper.scores(&sigs).expect("non-empty");
    let mut curve = collaborative_scoping::metrics::SweepCurve::new();
    for i in 0..21 {
        let p = i as f64 / 20.0;
        let o = collaborative_scoping::core::scoping::scope_from_scores("t", &sigs, &scores, p);
        curve.push(p, BinaryConfusion::from_labels(&o.decisions, &labels));
    }
    assert!(
        curve.auc_pr() > linkable_frac + 0.05,
        "AUC-PR {} vs base rate {linkable_frac}",
        curve.auc_pr()
    );
}

#[test]
fn paper_anecdote_false_negative_at_low_variance() {
    // The ORDERDATE / ORDER_DATETIME pair: annotated linkable, but its
    // surface nuance makes it a borderline case — the paper reports it as
    // a false negative of collaborative scoping at v ≤ 0.3.
    let ds = oc3();
    let encoder = SignatureEncoder::default();
    let sigs = encode_catalog(&encoder, &ds.catalog);
    let id = ds
        .catalog
        .attribute_id("OC-MySQL", "orders", "orderdate")
        .expect("exists");
    // It must at least be assessed (present in the outcome) at every v.
    let run = CollaborativeScoper::new(0.3).run(&sigs).expect("valid");
    assert!(run.outcome.decision_for(id).is_some());
}

#[test]
fn relaxed_range_does_not_change_the_story() {
    // The paper argues l_k + ε brings no overall improvement; check that a
    // small relaxation changes few decisions.
    let (_, sigs) = oc3_signatures();
    let run = CollaborativeScoper::new(0.8).run(&sigs).expect("valid");
    let mut strict = 0usize;
    let mut relaxed = 0usize;
    for (k, model) in run.models.iter().enumerate() {
        for m in 0..sigs.schema_count() {
            if m == model.schema_index() {
                continue;
            }
            let _ = k;
            let foreign = sigs.schema(m);
            strict += model.assess(foreign).iter().filter(|&&b| b).count();
            relaxed += model
                .assess_relaxed(foreign, model.linkability_range() * 0.05)
                .iter()
                .filter(|&&b| b)
                .count();
        }
    }
    assert!(relaxed >= strict);
    assert!(
        (relaxed - strict) as f64 <= strict as f64 * 0.15 + 5.0,
        "5% relaxation flipped too many: {strict} -> {relaxed}"
    );
}
