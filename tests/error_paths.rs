//! Error-path coverage: every [`ScopingError`] variant reached through a
//! PUBLIC entry point, with its full `Display` rendering pinned.
//!
//! The pinned strings are a contract: harness reports (`cs-fault`),
//! degraded-schema records and operator logs all print these messages,
//! and the fault matrix digests them — rewording an error is a visible,
//! reviewed change, not an accident.

use std::sync::Arc;

use collaborative_scoping::core::{pool::fault, CollaborativeSweep, ThreadPool};
use collaborative_scoping::linalg::Xoshiro256;
use collaborative_scoping::prelude::*;

/// A healthy 3-schema catalog of gaussian signatures.
fn healthy_sigs() -> SchemaSignatures {
    let mut rng = Xoshiro256::seed_from(0xE2202);
    let mats: Vec<Matrix> = [5usize, 6, 4]
        .iter()
        .map(|&n| Matrix::from_fn(n, 4, |_, _| rng.next_gaussian()))
        .collect();
    SchemaSignatures::from_matrices(mats, vec!["A".into(), "B".into(), "C".into()])
}

/// Replaces schema `k` of a healthy catalog with `replacement`.
fn with_schema(k: usize, replacement: Matrix) -> SchemaSignatures {
    let base = healthy_sigs();
    let mats: Vec<Matrix> = (0..base.schema_count())
        .map(|m| {
            if m == k {
                replacement.clone()
            } else {
                base.schema(m).clone()
            }
        })
        .collect();
    SchemaSignatures::from_matrices(mats, base.schema_names().to_vec())
}

#[test]
fn empty_schema_through_collaborative_run() {
    let sigs = with_schema(1, Matrix::zeros(0, 4));
    let err = CollaborativeScoper::new(0.9).run(&sigs).unwrap_err();
    assert_eq!(err, ScopingError::EmptySchema { schema: 1 });
    assert_eq!(
        err.to_string(),
        "schema #1 has no elements to train a local model on"
    );
}

#[test]
fn degenerate_schema_through_collaborative_run() {
    let sigs = with_schema(2, Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
    let err = CollaborativeScoper::new(0.9).run(&sigs).unwrap_err();
    assert_eq!(
        err,
        ScopingError::DegenerateSchema {
            schema: 2,
            elements: 1
        }
    );
    assert_eq!(
        err.to_string(),
        "schema #2 has only 1 element(s) — too few to train a local model"
    );
}

#[test]
fn non_finite_signature_through_collaborative_run() {
    let base = healthy_sigs();
    let mut poisoned = base.schema(1).clone();
    poisoned[(3, 2)] = f64::NAN;
    let sigs = with_schema(1, poisoned);
    let err = CollaborativeScoper::new(0.9).run(&sigs).unwrap_err();
    assert_eq!(
        err,
        ScopingError::NonFiniteSignature {
            schema: 1,
            element: 3
        }
    );
    assert_eq!(
        err.to_string(),
        "schema #1, element #3: signature contains a NaN/inf entry"
    );
}

#[test]
fn rank_deficient_through_collaborative_run() {
    let row = vec![2.0, -1.0, 0.5, 3.0];
    let sigs = with_schema(0, Matrix::from_rows(&vec![row; 5]));
    let err = CollaborativeScoper::new(0.9).run(&sigs).unwrap_err();
    assert_eq!(err, ScopingError::RankDeficient { schema: 0 });
    assert_eq!(
        err.to_string(),
        "schema #0 is rank-deficient: its signatures carry no variance"
    );
}

#[test]
fn too_few_schemas_through_sweep_prepare() {
    let one =
        SchemaSignatures::from_matrices(vec![healthy_sigs().schema(0).clone()], vec!["A".into()]);
    let err = CollaborativeSweep::prepare(&one).unwrap_err();
    assert_eq!(err, ScopingError::TooFewSchemas { found: 1 });
    assert_eq!(
        err.to_string(),
        "collaborative scoping needs ≥ 2 schemas, found 1"
    );
}

#[test]
fn invalid_parameter_through_global_scoper() {
    let sigs = healthy_sigs();
    let err = GlobalScoper::new(ZScoreDetector)
        .scope_at(&sigs, 1.5)
        .unwrap_err();
    assert_eq!(
        err,
        ScopingError::InvalidParameter {
            name: "p",
            value: 1.5
        }
    );
    assert_eq!(err.to_string(), "parameter p = 1.5 is out of range");
}

#[test]
fn invalid_variance_through_builder_and_sweep() {
    let err = CollaborativeScoper::builder()
        .explained_variance(0.0)
        .build()
        .unwrap_err();
    assert_eq!(err, ScopingError::InvalidVariance { value: 0.0 });
    assert_eq!(
        err.to_string(),
        "explained variance v = 0 must lie in (0, 1]"
    );

    // Same guard on the sweep's pointwise and grid entry points.
    let sweep = CollaborativeSweep::prepare(&healthy_sigs()).unwrap();
    assert_eq!(
        sweep.assess_at(0.0).unwrap_err(),
        ScopingError::InvalidVariance { value: 0.0 }
    );
    let nan = sweep.assess_at(f64::NAN).unwrap_err();
    assert!(matches!(nan, ScopingError::InvalidVariance { .. }));
}

#[test]
fn svd_error_through_local_model_train() {
    let ev = ExplainedVariance::new(0.9).unwrap();
    let err = LocalModel::train(0, &Matrix::zeros(2, 0), ev).unwrap_err();
    assert_eq!(
        err,
        ScopingError::Svd(collaborative_scoping::linalg::SvdError::EmptyMatrix)
    );
    assert_eq!(
        err.to_string(),
        "decomposition failed: cannot decompose an empty matrix"
    );
    // The source chain reaches the linalg layer.
    use std::error::Error;
    assert!(err.source().is_some());
}

#[test]
fn pca_rehydrate_errors_through_from_parts() {
    // The three typed rehydration failures, Display-pinned: exchange
    // payload diagnostics print these verbatim.
    let err = Pca::from_parts(vec![0.0; 3], Matrix::zeros(1, 2), vec![1.0], vec![1.0]).unwrap_err();
    assert_eq!(
        err,
        PcaRehydrateError::ShapeMismatch {
            component_width: 2,
            mean_len: 3
        }
    );
    assert_eq!(
        err.to_string(),
        "component width 2 does not match mean length 3"
    );

    let err = Pca::from_parts(vec![0.0; 2], Matrix::zeros(0, 2), vec![], vec![]).unwrap_err();
    assert_eq!(err, PcaRehydrateError::EmptyComponents);
    assert_eq!(err.to_string(), "a PCA needs at least one component");

    let err = Pca::from_parts(
        vec![0.0; 2],
        Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]),
        vec![1.0],
        vec![1.0, 0.5],
    )
    .unwrap_err();
    assert_eq!(
        err,
        PcaRehydrateError::ShortSpectrum {
            ratios: 1,
            singular_values: 2,
            components: 2
        }
    );
    assert_eq!(
        err.to_string(),
        "spectrum bookkeeping (1 ratios, 2 singular values) shorter than 2 components"
    );

    // The ScopingError conversion wraps the typed cause and chains it as
    // the source.
    let wrapped: ScopingError = PcaRehydrateError::EmptyComponents.into();
    assert_eq!(
        wrapped.to_string(),
        "malformed PCA model: a PCA needs at least one component"
    );
    use std::error::Error;
    assert!(wrapped.source().is_some());
}

#[test]
fn worker_panicked_through_pooled_run() {
    let pool = Arc::new(ThreadPool::with_threads(2));
    let tag = pool.tag();
    let _armed = fault::armed(move |site| {
        if site.pool == Some(tag) && site.chunk == 0 {
            panic!("injected fault: error-path coverage");
        }
    });
    let err = CollaborativeScoper::builder()
        .explained_variance(0.9)
        .pool(pool)
        .build()
        .unwrap()
        .run(&healthy_sigs())
        .unwrap_err();
    assert_eq!(
        err,
        ScopingError::WorkerPanicked {
            detail: "injected fault: error-path coverage".into()
        }
    );
    assert_eq!(
        err.to_string(),
        "a parallel worker panicked: injected fault: error-path coverage"
    );
}

/// Every [`SyntheticError`] variant reached through `try_generate`, with
/// its `Display` rendering pinned — generator config errors are operator
/// output too.
#[test]
fn synthetic_config_errors_pin_their_display() {
    use collaborative_scoping::datasets::synthetic::{
        try_generate, SizeDistribution, SyntheticConfig, SyntheticError,
    };

    let base = SyntheticConfig::default();
    let err = |c: SyntheticConfig| try_generate(&c).unwrap_err();

    let zero_schemas = err(SyntheticConfig {
        schemas: 0,
        ..base.clone()
    });
    assert_eq!(zero_schemas, SyntheticError::ZeroSchemas);
    assert_eq!(
        zero_schemas.to_string(),
        "synthetic config needs at least one schema"
    );

    let zero_width = err(SyntheticConfig {
        table_width: 0,
        ..base.clone()
    });
    assert_eq!(zero_width, SyntheticError::ZeroTableWidth);
    assert_eq!(
        zero_width.to_string(),
        "synthetic tables need room for at least one attribute"
    );

    let exceed = err(SyntheticConfig {
        shared_concepts: 6,
        concepts_per_schema: 9,
        ..base.clone()
    });
    assert_eq!(
        exceed,
        SyntheticError::ConceptsExceedPool {
            concepts: 9,
            pool: 6
        }
    );
    assert_eq!(
        exceed.to_string(),
        "cannot materialize more concepts than the pool holds (9 per schema > pool of 6)"
    );

    let ratio = err(SyntheticConfig {
        linkable_ratio: Some(1.5),
        ..base.clone()
    });
    assert_eq!(ratio, SyntheticError::InvalidRatio(1.5));
    assert_eq!(ratio.to_string(), "linkable_ratio 1.5 is outside [0, 1]");

    let overlap = err(SyntheticConfig {
        lexicon_overlap: -0.25,
        ..base.clone()
    });
    assert_eq!(overlap, SyntheticError::InvalidOverlap(-0.25));
    assert_eq!(
        overlap.to_string(),
        "lexicon_overlap -0.25 is outside [0, 1]"
    );

    let noise = err(SyntheticConfig {
        naming_noise: 2.0,
        ..base.clone()
    });
    assert_eq!(noise, SyntheticError::InvalidNoise(2.0));
    assert_eq!(noise.to_string(), "naming_noise 2 is outside [0, 1]");

    let range = err(SyntheticConfig {
        sizes: SizeDistribution::Uniform { min: 9, max: 4 },
        ..base.clone()
    });
    assert_eq!(range, SyntheticError::InvalidSizeRange { min: 9, max: 4 });
    assert_eq!(
        range.to_string(),
        "size distribution range [9, 4] is empty or starts at zero"
    );

    let region = err(SyntheticConfig {
        linkable_ratio: Some(0.9),
        lexicon_overlap: 0.0,
        ..base.clone()
    });
    assert_eq!(
        region,
        SyntheticError::RegionTooSmall {
            schema: 0,
            need: 32,
            have: 10
        }
    );
    assert_eq!(
        region.to_string(),
        "schema #0 needs 32 concept picks but its accessible pool region holds only 10"
    );

    // The typed error is a std::error::Error with no deeper source.
    use std::error::Error;
    assert!(region.source().is_none());
}
