//! Hermetic exchange-format guarantees, exercised end-to-end on a local
//! model trained on the paper's OC3 dataset: both codecs (JSON and binary)
//! round-trip exactly, reject non-finite payloads, and refuse versions
//! they do not understand — all on the in-workspace zero-dependency
//! implementations.

use collaborative_scoping::prelude::*;

/// Trains phase-II local models on OC3 and packs the first schema's model.
fn trained_oc3_envelope() -> (ModelEnvelope, SchemaSignatures) {
    let dataset = oc3();
    let sigs = encode_catalog(&SignatureEncoder::default(), &dataset.catalog);
    let models = CollaborativeScoper::new(0.8).train_models(&sigs).unwrap();
    let envelope = ModelEnvelope::pack(dataset.catalog.schema(0).name.clone(), &models[0]);
    (envelope, sigs)
}

#[test]
fn json_roundtrip_on_trained_oc3_model() {
    let (envelope, sigs) = trained_oc3_envelope();
    let json = to_json(&envelope).unwrap();
    let back = from_json(&json).unwrap();
    // Bit-exact payload survival…
    assert_eq!(back.schema_name, envelope.schema_name);
    assert_eq!(back.schema_index, envelope.schema_index);
    assert_eq!(back.dim, envelope.dim);
    assert_eq!(back.mean, envelope.mean);
    assert_eq!(back.components, envelope.components);
    assert_eq!(
        back.linkability_range.to_bits(),
        envelope.linkability_range.to_bits()
    );
    // …and identical downstream assessment of a foreign schema.
    assert_eq!(back.assess(sigs.schema(1)), envelope.assess(sigs.schema(1)));
}

#[test]
fn binary_roundtrip_on_trained_oc3_model() {
    let (envelope, sigs) = trained_oc3_envelope();
    let bytes = to_bytes(&envelope);
    let back = from_bytes(&bytes).unwrap();
    assert_eq!(back.schema_name, envelope.schema_name);
    assert_eq!(back.mean, envelope.mean);
    assert_eq!(back.components, envelope.components);
    assert_eq!(
        back.linkability_range.to_bits(),
        envelope.linkability_range.to_bits()
    );
    assert_eq!(back.assess(sigs.schema(2)), envelope.assess(sigs.schema(2)));
}

#[test]
fn serialization_is_deterministic_across_calls() {
    let (envelope, _) = trained_oc3_envelope();
    assert_eq!(to_json(&envelope).unwrap(), to_json(&envelope).unwrap());
    assert_eq!(to_bytes(&envelope), to_bytes(&envelope));
}

#[test]
fn non_finite_values_are_rejected_by_both_codecs() {
    let (clean, _) = trained_oc3_envelope();

    for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        // Poisoned linkability range.
        let mut envelope = clean.clone();
        envelope.linkability_range = poison;
        assert!(
            matches!(
                from_bytes(&to_bytes(&envelope)),
                Err(ExchangeError::MalformedShape(_))
            ),
            "binary accepted range {poison}"
        );
        let json = to_json(&envelope).unwrap();
        assert!(from_json(&json).is_err(), "JSON accepted range {poison}");

        // Poisoned mean vector.
        let mut envelope = clean.clone();
        envelope.mean[3] = poison;
        assert!(
            matches!(
                from_bytes(&to_bytes(&envelope)),
                Err(ExchangeError::MalformedShape(_))
            ),
            "binary accepted mean {poison}"
        );
        let json = to_json(&envelope).unwrap();
        assert!(from_json(&json).is_err(), "JSON accepted mean {poison}");
    }
}

#[test]
fn version_mismatch_is_a_typed_error_in_both_codecs() {
    let (envelope, _) = trained_oc3_envelope();

    // Binary: the u16 version lives right after the 4-byte magic.
    let mut bytes = to_bytes(&envelope);
    bytes[4] = 42;
    assert!(matches!(
        from_bytes(&bytes),
        Err(ExchangeError::UnsupportedVersion(42))
    ));

    // JSON: a future format_version must be refused, not guessed at.
    let json = to_json(&envelope).unwrap();
    let future = json.replacen("\"format_version\":1", "\"format_version\":9", 1);
    assert_ne!(future, json, "fixture must actually change the version");
    assert!(matches!(
        from_json(&future),
        Err(ExchangeError::UnsupportedVersion(9))
    ));
}

#[test]
fn truncated_binary_payloads_never_panic() {
    let (envelope, _) = trained_oc3_envelope();
    let bytes = to_bytes(&envelope);
    // Every strict prefix must fail cleanly.
    for cut in (0..bytes.len()).step_by(101) {
        assert!(from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
    }
}
