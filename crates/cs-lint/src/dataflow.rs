//! Interprocedural determinism-taint dataflow (DESIGN.md §7/§8) plus the
//! hot-path item rules.
//!
//! The intraprocedural pack in [`crate::concurrency`] answers "does this
//! one function iterate a hash map into a sum?". This module answers the
//! question the pack cannot: *does a nondeterministically-ordered value
//! produced in one function reach an order-sensitive float reduction in
//! another?* It builds an intra-crate call graph from the
//! [`crate::items`] brace tree and propagates taint across it:
//!
//! - **Sources** — producers whose value depends on hasher state, arrival
//!   order, or the clock: unexonerated `HashMap`/`HashSet` iteration
//!   (the same exoneration machinery as `no-unordered-iteration`:
//!   sort-in-chain, BTree collect, order-insensitive terminals),
//!   `Instant::now` / `SystemTime::now` reads, and arrival-order
//!   `.lock()..push(..)` chains.
//! - **Sinks** — order-sensitive float reductions: `.sum()` /
//!   `.product()` / `.fold(..)`, float `+=` accumulation inside loops,
//!   and calls into `kernels::*` entry points.
//! - **Propagation** — both directions through the call graph: a sink
//!   function that (transitively) *calls* a tainted function (return
//!   flow), and a tainted function that (transitively) calls a sink
//!   function (argument flow). No return-value/argument distinction is
//!   attempted — shared-state channels (a locked accumulator both ends
//!   can see) make that distinction unsound for a lite analysis, so a
//!   call edge conducts taint either way.
//!
//! A finding reports the full source → call-chain → sink path and is
//! emitted only when source and sink live in *different* functions — the
//! same-function case is exactly `no-unordered-iteration`'s territory.
//! Waivers (`// cs-lint: allow(determinism-taint) -- ..`) apply at either
//! end of the path: the source line in the source file or the sink line
//! in the sink file. Staleness for those pragmas is checked here too,
//! since only this pass knows which lines anchor a taint path.
//!
//! Two cheaper item-level rules ride along on the same brace tree
//! (`lint_hot_path_items`, invoked per-file from
//! [`crate::rules::lint_rust_source`]):
//!
//! - [`crate::rules::NO_LOSSY_CAST_IN_HOT_PATH`] — float↔int (and
//!   `as f32` narrowing) `as` casts in cs-linalg / pool kernels,
//! - [`crate::rules::NO_UNCHECKED_INDEX_ARITH`] — raw subtraction inside
//!   slice indexing in chunk-deal code.

use std::collections::{BTreeMap, BTreeSet};

use crate::concurrency::{
    chain_restores_order, for_loop_over_hash, hash_fields, hash_symbols, hash_type_names,
    seek_close, statement_end, ITER_METHODS,
};
use crate::items::{self, Item, UseMap};
use crate::lexer::{lex, Pragma, Tok};
use crate::report::Finding;
use crate::rules::{
    find_test_regions, FileClass, DETERMINISM_TAINT, NO_LOSSY_CAST_IN_HOT_PATH,
    NO_UNCHECKED_INDEX_ARITH, STALE_WAIVER,
};

/// Float-returning methods that mark a cast operand as float-derived even
/// without a tracked receiver symbol.
const FLOAT_METHODS: [&str; 14] = [
    "sqrt", "powf", "powi", "ln", "log2", "log10", "exp", "floor", "ceil", "round", "trunc",
    "recip", "mul_add", "hypot",
];

/// Integer targets of an `as` cast that truncate a float operand.
const INT_CAST_TARGETS: [&str; 12] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// One taint source or sink location inside a function.
#[derive(Debug, Clone)]
struct Site {
    line: u32,
    desc: String,
}

/// Per-function facts feeding the call graph.
#[derive(Debug)]
struct FnFacts {
    /// Index into the crate's file list.
    file: usize,
    name: String,
    sources: Vec<Site>,
    sinks: Vec<Site>,
    /// Names called from the body (plain and method calls), resolved
    /// against the crate's function set when edges are built.
    calls: BTreeSet<String>,
}

/// One scanned file: its path, waiver pragmas, and extracted functions.
#[derive(Debug)]
struct FileFacts {
    rel: String,
    pragmas: Vec<Pragma>,
}

/// Runs the determinism-taint pass over the whole workspace. `files` holds
/// `(workspace-relative path, source text)` pairs for every scanned `.rs`
/// file; grouping into intra-crate call graphs happens here. Returned
/// findings carry their waived flag already resolved, plus `stale-waiver`
/// findings for `determinism-taint` pragmas that cover no path anchor.
pub fn analyze_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut crates: BTreeMap<String, (Vec<FileFacts>, Vec<FnFacts>)> = BTreeMap::new();
    for (rel, text) in files {
        let Some(cr) = crate_of(rel) else { continue };
        let class = FileClass::from_path(rel);
        if class.test_code {
            continue;
        }
        let entry = crates.entry(cr).or_default();
        let file_idx = entry.0.len();
        let lexed = lex(text);
        let toks = &lexed.tokens;
        let parsed = items::parse_items(toks);
        let uses = UseMap::build(toks, &parsed);
        let test_regions = find_test_regions(toks);
        let hash_names = hash_type_names(&uses);
        let fields = hash_fields(toks, &parsed, &hash_names);
        let mut fns = Vec::new();
        items::for_each_fn(&parsed, &mut |f| fns.push(f));
        for f in &fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            if test_regions.iter().any(|&(s, e)| open >= s && open <= e) {
                continue;
            }
            if f.name.is_empty() {
                continue;
            }
            let symbols = hash_symbols(toks, f, &hash_names);
            let mut facts = FnFacts {
                file: file_idx,
                name: f.name.clone(),
                sources: Vec::new(),
                sinks: Vec::new(),
                calls: BTreeSet::new(),
            };
            collect_sources(toks, (open, close), &symbols, &fields, &mut facts.sources);
            collect_sinks(toks, f, (open, close), &mut facts.sinks);
            collect_calls(toks, (open, close), &mut facts.calls);
            entry.1.push(facts);
        }
        entry.0.push(FileFacts {
            rel: rel.clone(),
            pragmas: lexed.pragmas,
        });
    }

    let mut findings = Vec::new();
    for (files, fns) in crates.values() {
        analyze_crate(files, fns, &mut findings);
    }
    findings
}

/// Crate a workspace-relative source path belongs to, for call-graph
/// grouping. Test/bench trees and cs-bench (whose whole job is timing
/// floats) are out of scope.
fn crate_of(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.first() {
        Some(&"crates") if parts.len() > 3 && parts[2] == "src" && parts[1] != "cs-bench" => {
            Some(parts[1].to_string())
        }
        Some(&"src") => Some("<root>".to_string()),
        _ => None,
    }
}

/// Taint sources in one function body.
fn collect_sources(
    toks: &[Tok],
    (open, close): (usize, usize),
    symbols: &BTreeSet<String>,
    fields: &BTreeSet<String>,
    out: &mut Vec<Site>,
) {
    let is_hash_receiver = |idx: usize| -> bool {
        let Some(word) = toks.get(idx).and_then(Tok::ident) else {
            return false;
        };
        if symbols.contains(word)
            && !toks
                .get(idx.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
        {
            return true;
        }
        fields.contains(word) && idx >= 1 && toks[idx - 1].is_punct('.')
    };

    let mut i = open;
    while i <= close.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if let Some(word) = t.ident() {
            // Hash-ordered iteration, method form, minus exonerated chains.
            if ITER_METHODS.contains(&word)
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && is_hash_receiver(i - 2)
            {
                if let Some(call_close) = seek_close(toks, i + 1, close + 1, '(', ')') {
                    if !chain_restores_order(toks, call_close, close) {
                        out.push(Site {
                            line: t.line,
                            desc: format!("hasher-ordered `.{word}()` on a HashMap/HashSet"),
                        });
                    }
                    i = call_close + 1;
                    continue;
                }
            }
            // Hash-ordered iteration, loop form.
            if word == "for" {
                if let Some(line) = for_loop_over_hash(toks, i, close, symbols, fields) {
                    out.push(Site {
                        line,
                        desc: "hasher-ordered `for` over a HashMap/HashSet".to_string(),
                    });
                }
            }
            // Clock reads: `Instant::now(` / `SystemTime::now(`. Unlike
            // `no-ambient-authority` this has no config-module exemption —
            // a clock-derived *value* flowing into a reduction is
            // nondeterministic no matter where it was read.
            if (word == "Instant" || word == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            {
                out.push(Site {
                    line: t.line,
                    desc: format!("clock-derived value (`{word}::now`)"),
                });
            }
            // Arrival-order push: `.lock()..push(..)` in one chain.
            if (word == "lock" || word == "write")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                if let Some(call_close) = seek_close(toks, i + 1, close + 1, '(', ')') {
                    let mut chain_end = call_close;
                    // Skip guard adapters that keep the same value.
                    while toks.get(chain_end + 1).is_some_and(|t| t.is_punct('.'))
                        && toks
                            .get(chain_end + 2)
                            .and_then(Tok::ident)
                            .is_some_and(|w| matches!(w, "unwrap" | "expect" | "unwrap_or_else"))
                        && toks.get(chain_end + 3).is_some_and(|t| t.is_punct('('))
                    {
                        match seek_close(toks, chain_end + 3, close + 1, '(', ')') {
                            Some(c) => chain_end = c,
                            None => break,
                        }
                    }
                    if toks.get(chain_end + 1).is_some_and(|t| t.is_punct('.'))
                        && toks.get(chain_end + 2).is_some_and(|t| t.is_ident("push"))
                        && toks.get(chain_end + 3).is_some_and(|t| t.is_punct('('))
                    {
                        out.push(Site {
                            line: t.line,
                            desc: "arrival-order `.push(..)` under a lock".to_string(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Order-sensitive float reductions in one function body.
fn collect_sinks(toks: &[Tok], f: &Item, (open, close): (usize, usize), out: &mut Vec<Site>) {
    let floats = float_symbols(toks, f);
    let loops = loop_ranges(toks, open, close);
    let mut i = open;
    while i <= close.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if let Some(word) = t.ident() {
            let method_call =
                i >= 1 && toks[i - 1].is_punct('.') && args_open_after(toks, i).is_some();
            if method_call && matches!(word, "sum" | "product" | "fold") {
                out.push(Site {
                    line: t.line,
                    desc: format!("order-sensitive `.{word}(..)` reduction"),
                });
            }
            // `kernels::<entry>(..)` — the numeric kernels assume their
            // operands arrive in a deterministic order.
            if word == "kernels"
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(entry) = toks.get(i + 3).and_then(Tok::ident) {
                    if toks.get(i + 4).is_some_and(|t| t.is_punct('(')) {
                        out.push(Site {
                            line: t.line,
                            desc: format!("`kernels::{entry}(..)` entry point"),
                        });
                    }
                }
            }
        } else if t.is_punct('+')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('='))
            && loops.iter().any(|&(s, e)| i >= s && i <= e)
        {
            // `acc += ..` inside a loop, with float evidence on either side.
            let lhs_float = toks
                .get(i.wrapping_sub(1))
                .and_then(Tok::ident)
                .is_some_and(|w| floats.contains(w));
            let stmt_end = statement_end(toks, i + 2, close);
            let rhs_float = (i + 2..stmt_end).any(|k| {
                toks[k].ident().is_some_and(|w| floats.contains(w))
                    || is_float_literal(&toks[k].text())
            });
            if lhs_float || rhs_float {
                out.push(Site {
                    line: t.line,
                    desc: "float `+=` accumulation in a loop".to_string(),
                });
            }
        }
        i += 1;
    }
}

/// Call-site names in one function body: `name(..)` plain calls and
/// `.name(..)` method calls. Resolution against the crate's function set
/// happens when edges are built, so keywords and foreign names fall out
/// naturally.
fn collect_calls(toks: &[Tok], (open, close): (usize, usize), out: &mut BTreeSet<String>) {
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if let Some(word) = toks[i].ident() {
            if args_open_after(toks, i).is_some() {
                out.insert(word.to_string());
            }
        }
    }
}

/// Index of the argument-list `(` for a call whose name ends at token `i`,
/// skipping an optional `::<..>` turbofish (`sum::<f64>()`,
/// `fold::<Vec<f64>, _>(..)`). `None` when no call follows.
fn args_open_after(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0usize;
        j += 2;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
            if j > i + 64 {
                return None; // not a plausible turbofish
            }
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct('(')).then_some(j)
}

/// Builds the crate's call graph and reports every (tainted source fn,
/// sink fn) pair connected by it, then checks `determinism-taint` waiver
/// staleness against the anchors of the pre-waiver findings.
fn analyze_crate(files: &[FileFacts], fns: &[FnFacts], findings: &mut Vec<Finding>) {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        for name in &f.calls {
            for &j in by_name.get(name.as_str()).map_or(&[][..], |v| v) {
                if j != i {
                    callees[i].push(j);
                    callers[j].push(i);
                }
            }
        }
    }

    // (file, line) anchors of pre-waiver findings, for staleness.
    let mut anchors: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (k, f) in fns.iter().enumerate() {
        if f.sinks.is_empty() {
            continue;
        }
        // Return flow (sink fn calls a tainted fn) and argument flow (a
        // tainted fn calls the sink fn). `reach` paths run sink-first;
        // reversing yields the data direction, source → sink.
        for edges in [&callees, &callers] {
            for (t, path) in reach(k, edges, fns) {
                if !reported.insert((t, k)) {
                    continue;
                }
                let chain: Vec<&str> = path.iter().rev().map(|&i| fns[i].name.as_str()).collect();
                push_taint_finding(files, fns, t, k, &chain, &mut anchors, findings);
            }
        }
    }

    // Staleness: a justified determinism-taint pragma must cover a source
    // or sink anchor of some reported path.
    for (fi, file) in files.iter().enumerate() {
        for p in &file.pragmas {
            if !p.justified || !p.rules.iter().any(|r| r == DETERMINISM_TAINT) {
                continue;
            }
            let live = anchors
                .iter()
                .any(|&(af, al)| af == fi && (al == p.line || al == p.line + 1));
            if !live {
                let mut f = Finding::new(
                    STALE_WAIVER,
                    file.rel.clone(),
                    p.line,
                    "waiver for `determinism-taint` anchors no source or sink of any \
                     taint path; delete the pragma",
                );
                f.waived = covered(&file.pragmas, STALE_WAIVER, p.line);
                findings.push(f);
            }
        }
    }
}

/// BFS from `start` over `edges`, returning every reachable tainted
/// function together with the (shortest) node path from `start`,
/// inclusive of both ends.
fn reach(start: usize, edges: &[Vec<usize>], fns: &[FnFacts]) -> Vec<(usize, Vec<usize>)> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    let mut seen = BTreeSet::from([start]);
    let mut hits = Vec::new();
    while let Some(n) = queue.pop_front() {
        for &m in &edges[n] {
            if seen.contains(&m) {
                continue;
            }
            seen.insert(m);
            parent.insert(m, n);
            if !fns[m].sources.is_empty() {
                let mut path = vec![m];
                let mut cur = m;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse(); // start .. m
                hits.push((m, path));
            }
            queue.push_back(m);
        }
    }
    hits
}

/// Emits one determinism-taint finding for the (source fn `t`, sink fn
/// `k`) pair, waiver-resolved at both ends; `chain` runs source → sink.
fn push_taint_finding(
    files: &[FileFacts],
    fns: &[FnFacts],
    t: usize,
    k: usize,
    chain: &[&str],
    anchors: &mut BTreeSet<(usize, u32)>,
    findings: &mut Vec<Finding>,
) {
    let source = &fns[t].sources[0];
    let sink = &fns[k].sinks[0];
    let src_file = &files[fns[t].file];
    let sink_file = &files[fns[k].file];
    anchors.insert((fns[t].file, source.line));
    anchors.insert((fns[k].file, sink.line));
    let mut f = Finding::new(
        DETERMINISM_TAINT,
        sink_file.rel.clone(),
        sink.line,
        format!(
            "{} can consume a nondeterministically-ordered value: {} in `{}` ({}:{}) \
             flows through `{}` (DESIGN.md §8); sort or slot-index the data before \
             reducing, or waive at either end of the path",
            sink.desc,
            source.desc,
            fns[t].name,
            src_file.rel,
            source.line,
            chain.join(" -> "),
        ),
    );
    f.waived = covered(&sink_file.pragmas, DETERMINISM_TAINT, sink.line)
        || covered(&src_file.pragmas, DETERMINISM_TAINT, source.line);
    findings.push(f);
}

/// Whether a justified pragma naming `rule` covers `line` (same line or
/// the line above, matching `apply_waivers`).
fn covered(pragmas: &[Pragma], rule: &str, line: u32) -> bool {
    pragmas.iter().any(|p| {
        p.justified && (p.line == line || p.line + 1 == line) && p.rules.iter().any(|r| r == rule)
    })
}

// ---------------------------------------------------------------------------
// Hot-path item rules (per-file, invoked from `lint_rust_source`).
// ---------------------------------------------------------------------------

/// Runs `no-lossy-cast-in-hot-path` and `no-unchecked-index-arith` over
/// the non-test functions of one file, scoped by [`FileClass`].
pub(crate) fn lint_hot_path_items(
    toks: &[Tok],
    items: &[Item],
    class: &FileClass,
    rel_path: &str,
    test_regions: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if !class.hot_path && !class.chunk_deal {
        return;
    }
    let in_test =
        |idx: usize| class.test_code || test_regions.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut fns = Vec::new();
    items::for_each_fn(items, &mut |f| fns.push(f));
    for f in &fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if in_test(open) {
            continue;
        }
        if class.hot_path {
            find_lossy_casts(toks, f, (open, close), rel_path, findings);
        }
        if class.chunk_deal {
            find_index_arith(toks, (open, close), rel_path, findings);
        }
    }
}

/// `as f32` anywhere, and float-evident `as <int>`, in one hot-path fn.
fn find_lossy_casts(
    toks: &[Tok],
    f: &Item,
    (open, close): (usize, usize),
    rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let floats = float_symbols(toks, f);
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(ty) = toks.get(i + 1).and_then(Tok::ident) else {
            continue;
        };
        if ty == "f32" {
            findings.push(Finding::new(
                NO_LOSSY_CAST_IN_HOT_PATH,
                rel_path,
                toks[i].line,
                "`as f32` narrows to single precision in a hot-path kernel; the lost \
                 bits change sums silently — keep f64, or waive with the kernel's \
                 precision contract",
            ));
        } else if INT_CAST_TARGETS.contains(&ty) && operand_is_float(toks, i, open, &floats) {
            findings.push(Finding::new(
                NO_LOSSY_CAST_IN_HOT_PATH,
                rel_path,
                toks[i].line,
                format!(
                    "float `as {ty}` truncates silently in a hot-path kernel (NaN and \
                     out-of-range collapse to arbitrary values); round explicitly and \
                     bounds-check, or waive with justification"
                ),
            ));
        }
    }
}

/// Whether the expression ending just before the `as` at `as_idx` is
/// float-evident: a tracked float symbol, a float literal, a call of a
/// float-returning method, a float receiver's method result, or a
/// parenthesized/indexed expression mentioning either.
fn operand_is_float(toks: &[Tok], as_idx: usize, open: usize, floats: &BTreeSet<String>) -> bool {
    let Some(prev) = as_idx.checked_sub(1).filter(|&p| p >= open) else {
        return false;
    };
    let t = &toks[prev];
    if let Some(w) = t.ident() {
        return floats.contains(w);
    }
    if is_float_literal(&t.text()) {
        return true;
    }
    if t.is_punct(')') {
        let Some(po) = open_before(toks, prev, open, '(', ')') else {
            return false;
        };
        // `(expr) as ..` — anything float-evident inside the parens.
        if (po + 1..prev).any(|k| {
            toks[k].ident().is_some_and(|w| floats.contains(w)) || is_float_literal(&toks[k].text())
        }) {
            return true;
        }
        // `recv.method(..) as ..` — a float method, or a float receiver.
        if po >= 1 {
            if let Some(m) = toks[po - 1].ident() {
                if FLOAT_METHODS.contains(&m) {
                    return true;
                }
                if po >= 3 && toks[po - 2].is_punct('.') {
                    if let Some(r) = toks[po - 3].ident() {
                        return floats.contains(r);
                    }
                }
            }
        }
        return false;
    }
    if t.is_punct(']') {
        // `v[i] as ..` — indexing into a float slice.
        let Some(bo) = open_before(toks, prev, open, '[', ']') else {
            return false;
        };
        return bo >= 1 && toks[bo - 1].ident().is_some_and(|w| floats.contains(w));
    }
    false
}

/// Index of the opener matching the closer at `close_idx`, scanning
/// backwards no further than `floor`.
fn open_before(
    toks: &[Tok],
    close_idx: usize,
    floor: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i64;
    let mut k = close_idx;
    loop {
        if toks[k].is_punct(close) {
            depth += 1;
        } else if toks[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == floor {
            return None;
        }
        k -= 1;
    }
}

/// Raw binary `-` at top level inside a slice-index expression.
fn find_index_arith(
    toks: &[Tok],
    (open, close): (usize, usize),
    rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let end = close.min(toks.len().saturating_sub(1));
    for i in open..=end {
        if !toks[i].is_punct('[') {
            continue;
        }
        // Indexing, not an array/slice literal or a type: the expression
        // before the bracket must be a value (`ident[..]`, `call()[..]`,
        // `v[i][..]`).
        let indexing = i >= 1
            && (toks[i - 1].ident().is_some()
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'));
        if !indexing {
            continue;
        }
        let Some(bclose) = seek_close(toks, i, end + 1, '[', ']') else {
            continue;
        };
        let mut paren = 0i64;
        let mut bracket = 0i64;
        for k in i + 1..bclose {
            let t = &toks[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('-') && paren == 0 && bracket == 0 {
                // Binary minus only: `i - 1`, not unary `-x` after an
                // operator or an opener.
                let binary = k >= 1
                    && (toks[k - 1].ident().is_some()
                        || toks[k - 1].is_punct(')')
                        || toks[k - 1].is_punct(']')
                        || toks[k - 1].text().chars().all(|c| c.is_ascii_digit()))
                    && !toks[k - 1].is_ident("return");
                if binary {
                    findings.push(Finding::new(
                        NO_UNCHECKED_INDEX_ARITH,
                        rel_path,
                        t.line,
                        "subtraction inside a slice index can wrap below zero (usize): \
                         a panic in debug, a wild index in release; use \
                         `checked_sub`/`saturating_sub` or restructure the chunk math",
                    ));
                }
            }
        }
    }
}

/// Identifiers in one function known to hold floats: parameters whose
/// type annotation mentions `f64`/`f32` (including slices and references)
/// and `let` bindings annotated that way or initialized from a float
/// literal.
fn float_symbols(toks: &[Tok], f: &Item) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let (sig_start, sig_end) = f.sig;
    if let Some(popen) = (sig_start..sig_end).find(|&k| toks[k].is_punct('(')) {
        if let Some(pclose) = seek_close(toks, popen, sig_end, '(', ')') {
            let mut i = popen + 1;
            while i < pclose {
                let Some(name) = toks.get(i).and_then(Tok::ident) else {
                    i += 1;
                    continue;
                };
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                    let ty_end = type_end(toks, i + 2, pclose);
                    if (i + 2..ty_end)
                        .any(|k| toks[k].ident().is_some_and(|w| w == "f64" || w == "f32"))
                    {
                        out.insert(name.to_string());
                    }
                    i = ty_end + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if let Some((open, close)) = f.body {
        let mut i = open;
        while i < close {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Tok::ident) else {
                i = j + 1;
                continue;
            };
            j += 1;
            let stmt_end = statement_end(toks, j, close);
            let floaty = if toks.get(j).is_some_and(|t| t.is_punct(':')) {
                let ty_end = (j + 1..stmt_end)
                    .find(|&k| toks[k].is_punct('='))
                    .unwrap_or(stmt_end);
                (j + 1..ty_end).any(|k| toks[k].ident().is_some_and(|w| w == "f64" || w == "f32"))
            } else if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                (j + 1..stmt_end).any(|k| is_float_literal(&toks[k].text()))
            } else {
                false
            };
            if floaty {
                out.insert(name.to_string());
            }
            i = stmt_end + 1;
        }
    }
    out
}

/// Depth-0 `,` (or `close`) ending a parameter's type annotation.
fn type_end(toks: &[Tok], start: usize, close: usize) -> usize {
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    for (k, t) in toks.iter().enumerate().take(close).skip(start) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(',') && angle <= 0 && paren == 0 && bracket == 0 {
            return k;
        }
    }
    close
}

/// Token-index ranges of `for`/`while` loop bodies inside one fn body.
fn loop_ranges(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let end = close.min(toks.len().saturating_sub(1));
    let mut i = open;
    while i <= end {
        let looping = toks[i]
            .ident()
            .is_some_and(|w| w == "for" || w == "while" || w == "loop");
        if looping {
            // Body `{` is the first brace at paren/bracket depth 0 after
            // the keyword (closure braces in the header sit inside parens).
            let mut paren = 0i64;
            let mut bracket = 0i64;
            let mut j = i + 1;
            while j <= end {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if t.is_punct('{') && paren == 0 && bracket == 0 {
                    if let Some(bclose) = seek_close(toks, j, end + 1, '{', '}') {
                        out.push((j, bclose));
                    }
                    break;
                } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                    break; // not a loop header after all
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// A numeric literal with a fractional part or an explicit float suffix.
fn is_float_literal(text: &str) -> bool {
    text.chars().next().is_some_and(|c| c.is_ascii_digit())
        && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_rust_source;

    const KERN: &str = "crates/cs-linalg/src/kernels.rs";

    fn taint(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_workspace(&owned)
    }

    fn fired(src: &str, path: &str) -> Vec<&'static str> {
        lint_rust_source(src, path)
            .into_iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn clock_source_flows_cross_file_into_sum() {
        // The designed gap: config.rs may *read* the clock (ambient
        // exemption), but the value must not escape into a reduction.
        let config = "use std::time::Instant;\n\
                      pub fn jitter_seed() -> f64 {\n\
                          Instant::now().elapsed().as_secs_f64()\n\
                      }";
        let agg = "pub fn accumulate(xs: &[f64]) -> f64 {\n\
                       let j = crate::config::jitter_seed();\n\
                       xs.iter().map(|x| x + j).sum()\n\
                   }";
        let findings = taint(&[
            ("crates/cs-fake/src/config.rs", config),
            ("crates/cs-fake/src/agg.rs", agg),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, DETERMINISM_TAINT);
        assert_eq!(f.file, "crates/cs-fake/src/agg.rs");
        assert_eq!(f.line, 3);
        assert!(!f.waived);
        assert!(
            f.message.contains("jitter_seed -> accumulate"),
            "{}",
            f.message
        );
        assert!(f.message.contains("Instant::now"), "{}", f.message);
        assert!(f.message.contains("config.rs:3"), "{}", f.message);
    }

    #[test]
    fn hash_source_flows_down_into_callee_sink() {
        // Argument flow: the tainted fn calls the sink fn.
        let a = "use std::collections::HashMap;\n\
                 pub fn spread(m: &HashMap<u32, f64>) -> f64 {\n\
                     let mut vals = Vec::new();\n\
                     for (_, v) in m { vals.push(*v); }\n\
                     crate::reduce::total(&vals)\n\
                 }";
        let b = "pub fn total(xs: &[f64]) -> f64 { xs.iter().sum() }";
        let findings = taint(&[
            ("crates/cs-fake/src/a.rs", a),
            ("crates/cs-fake/src/reduce.rs", b),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.file, "crates/cs-fake/src/reduce.rs");
        assert!(f.message.contains("spread -> total"), "{}", f.message);
        assert!(f.message.contains("`for` over a HashMap"), "{}", f.message);
    }

    #[test]
    fn turbofish_sum_is_still_a_sink() {
        // `.sum::<f64>()` must match like `.sum()`, and a call made with a
        // turbofish must still register as a call-graph edge.
        let src = "use std::collections::HashMap;\n\
                   fn seed(m: &HashMap<u32, f64>) -> f64 {\n\
                       m.values().copied().next().unwrap_or(0.0)\n\
                   }\n\
                   fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                       let xs = [seed::<>(m); 4];\n\
                       xs.iter().sum::<f64>()\n\
                   }";
        let findings = taint(&[("crates/cs-fake/src/a.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("seed -> total"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn multi_hop_chain_is_reported_in_full() {
        let src = "use std::time::Instant;\n\
                   fn leaf() -> f64 { Instant::now().elapsed().as_secs_f64() }\n\
                   fn mid() -> f64 { leaf() * 2.0 }\n\
                   fn top(xs: &[f64]) -> f64 { xs.iter().fold(mid(), |a, x| a + x) }";
        let findings = taint(&[("crates/cs-fake/src/chain.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("leaf -> mid -> top"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn same_fn_source_and_sink_is_left_to_intra_rules() {
        let src = "use std::collections::HashMap;\n\
                   pub fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }";
        assert!(taint(&[("crates/cs-fake/src/one.rs", src)]).is_empty());
    }

    #[test]
    fn exonerated_iteration_is_not_a_source() {
        let src = "use std::collections::HashMap;\n\
                   pub fn keys_sorted(m: &HashMap<String, f64>) -> Vec<String> {\n\
                       let mut v: Vec<String> = m.keys().cloned().collect();\n\
                       v.sort();\n\
                       v\n\
                   }\n\
                   pub fn count(m: &HashMap<String, f64>) -> f64 {\n\
                       keys_sorted(m).iter().map(|k| k.len() as f64).sum()\n\
                   }";
        assert!(taint(&[("crates/cs-fake/src/ok.rs", src)]).is_empty());
    }

    #[test]
    fn lock_push_source_reaches_kernel_entry() {
        let src = "use std::sync::Mutex;\n\
                   pub fn gather(acc: &Mutex<Vec<f64>>, v: f64) {\n\
                       acc.lock().unwrap().push(v);\n\
                   }\n\
                   pub fn finish(acc: &Mutex<Vec<f64>>, out: &mut [f64]) {\n\
                       gather(acc, 1.0);\n\
                       kernels::axpy(out);\n\
                   }";
        let findings = taint(&[("crates/cs-fake/src/gath.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("arrival-order `.push(..)`"),
            "{}",
            findings[0].message
        );
        assert!(
            findings[0].message.contains("kernels::axpy"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn waiver_at_sink_suppresses_and_is_not_stale() {
        let config = "use std::time::Instant;\n\
                      pub fn seed() -> f64 { Instant::now().elapsed().as_secs_f64() }";
        let agg = "pub fn acc(xs: &[f64]) -> f64 {\n\
                       let j = crate::config::seed();\n\
                       // cs-lint: allow(determinism-taint) -- seed is logged, not summed into outputs\n\
                       xs.iter().map(|x| x + j).sum()\n\
                   }";
        let findings = taint(&[
            ("crates/cs-fake/src/config.rs", config),
            ("crates/cs-fake/src/agg.rs", agg),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].waived);
    }

    #[test]
    fn waiver_at_source_suppresses_too() {
        let config = "use std::time::Instant;\n\
                      pub fn seed() -> f64 {\n\
                          // cs-lint: allow(determinism-taint) -- wall-clock jitter is the feature here\n\
                          Instant::now().elapsed().as_secs_f64()\n\
                      }";
        let agg = "pub fn acc(xs: &[f64]) -> f64 {\n\
                       let j = crate::config::seed();\n\
                       xs.iter().map(|x| x + j).sum()\n\
                   }";
        let findings = taint(&[
            ("crates/cs-fake/src/config.rs", config),
            ("crates/cs-fake/src/agg.rs", agg),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].waived);
    }

    #[test]
    fn dangling_taint_waiver_is_stale() {
        let src = "pub fn plain(xs: &[f64]) -> f64 {\n\
                       // cs-lint: allow(determinism-taint) -- left behind\n\
                       xs.iter().sum()\n\
                   }";
        let findings = taint(&[("crates/cs-fake/src/x.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, STALE_WAIVER);
        assert_eq!(findings[0].line, 2);
        assert!(!findings[0].waived);
    }

    #[test]
    fn test_files_and_bench_crate_are_out_of_scope() {
        let src = "use std::time::Instant;\n\
                   fn t() -> f64 { Instant::now().elapsed().as_secs_f64() }\n\
                   fn s(xs: &[f64]) -> f64 { xs.iter().fold(t(), |a, x| a + x) }";
        assert!(taint(&[("crates/cs-core/tests/x.rs", src)]).is_empty());
        assert!(taint(&[("crates/cs-bench/src/x.rs", src)]).is_empty());
        // In a test region of a lib file, same story.
        let gated = format!("#[cfg(test)]\nmod t {{ {src} }}");
        assert!(taint(&[("crates/cs-fake/src/y.rs", gated.as_str())]).is_empty());
    }

    #[test]
    fn lossy_casts_fire_only_in_hot_path() {
        let narrow = "pub fn demote(x: f64) -> f32 { x as f32 }";
        assert_eq!(fired(narrow, KERN), vec![NO_LOSSY_CAST_IN_HOT_PATH]);
        assert!(fired(narrow, "crates/cs-match/src/fake.rs").is_empty());

        let trunc = "pub fn bucket(x: f64) -> usize { x as usize }";
        assert_eq!(fired(trunc, KERN), vec![NO_LOSSY_CAST_IN_HOT_PATH]);

        // Int→float widening and int→int casts stay silent.
        let ok = "pub fn widen(n: usize) -> f64 { n as f64 }\n\
                  pub fn shrink(n: u64) -> u32 { n as u32 }";
        assert!(fired(ok, KERN).is_empty());

        // Float evidence through parens, indexing, and float methods.
        let paren = "pub fn f(x: f64, s: f64) -> usize { (x * s) as usize }";
        assert_eq!(fired(paren, KERN), vec![NO_LOSSY_CAST_IN_HOT_PATH]);
        let index = "pub fn g(v: &[f64], i: usize) -> u32 { v[i] as u32 }";
        assert_eq!(fired(index, KERN), vec![NO_LOSSY_CAST_IN_HOT_PATH]);
        let method = "pub fn h(x: f64) -> i64 { x.round() as i64 }";
        assert_eq!(fired(method, KERN), vec![NO_LOSSY_CAST_IN_HOT_PATH]);

        // Waivable with justification.
        let waived = "pub fn demote(x: f64) -> f32 {\n\
                      // cs-lint: allow(no-lossy-cast-in-hot-path) -- f32-accumulator kernel by design\n\
                      x as f32\n\
                      }";
        assert!(fired(waived, KERN).is_empty());
    }

    #[test]
    fn index_arith_fires_in_chunk_deal_scope() {
        let src = "pub fn last(v: &[f64], n: usize) -> f64 { v[n - 1] }";
        assert_eq!(fired(src, KERN), vec![NO_UNCHECKED_INDEX_ARITH]);
        assert!(fired(src, "crates/cs-linalg/src/stats.rs").is_empty());

        // checked_sub has no raw `-`: clean by construction.
        let ok = "pub fn last(v: &[f64], n: usize) -> f64 {\n\
                      v[n.checked_sub(1).unwrap_or(0)]\n\
                  }";
        assert!(fired(ok, KERN).is_empty());

        // Subtraction buried in a nested call is not index arithmetic.
        let nested = "pub fn f(v: &[f64], a: usize, b: usize) -> f64 { v[offset(a - b)] }";
        assert!(fired(nested, KERN)
            .iter()
            .all(|r| *r != NO_UNCHECKED_INDEX_ARITH));

        // Array type annotations and literals stay silent.
        let ty = "pub fn f() -> [f64; 4] { let x: [f64; 4] = [0.0; 4]; x }";
        assert!(fired(ty, KERN).is_empty());
    }

    #[test]
    fn float_symbols_track_params_and_lets() {
        let toks =
            lex("fn f(a: f64, v: &[f64], n: usize) { let mut acc = 0.0; let k = 3; }").tokens;
        let parsed = items::parse_items(&toks);
        let mut fns = Vec::new();
        items::for_each_fn(&parsed, &mut |f| fns.push(f));
        let floats = float_symbols(&toks, fns[0]);
        assert!(floats.contains("a") && floats.contains("v") && floats.contains("acc"));
        assert!(!floats.contains("n") && !floats.contains("k"));
    }

    #[test]
    fn float_accumulation_loop_is_a_sink() {
        let src = "use std::collections::HashMap;\n\
                   pub fn feed(m: &HashMap<u32, f64>) -> Vec<f64> {\n\
                       let mut out = Vec::new();\n\
                       for v in m.values() { out.push(*v); }\n\
                       out\n\
                   }\n\
                   pub fn drain(m: &HashMap<u32, f64>) -> f64 {\n\
                       let mut acc = 0.0;\n\
                       for v in feed(m) { acc += v; }\n\
                       acc\n\
                   }";
        let findings = taint(&[("crates/cs-fake/src/accl.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("float `+=` accumulation"),
            "{}",
            findings[0].message
        );
        assert!(findings[0].message.contains("feed -> drain"));
    }

    #[test]
    fn integer_accumulation_is_not_a_sink() {
        let src = "use std::collections::HashMap;\n\
                   pub fn feed(m: &HashMap<u32, u64>) -> Vec<u64> {\n\
                       let mut out = Vec::new();\n\
                       for v in m.values() { out.push(*v); }\n\
                       out\n\
                   }\n\
                   pub fn drain(m: &HashMap<u32, u64>) -> u64 {\n\
                       let mut acc = 0;\n\
                       for v in feed(m) { acc += v; }\n\
                       acc\n\
                   }";
        assert!(taint(&[("crates/cs-fake/src/acci.rs", src)]).is_empty());
    }
}
