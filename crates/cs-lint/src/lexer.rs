//! A hand-rolled Rust lexer — just enough of the language to lint it.
//!
//! The hermetic dependency policy (DESIGN.md §6) rules out `syn`, `dylint`,
//! or clippy plugins, so the rule engine works on a flat token stream
//! produced here. The lexer's one job is to never misclassify: everything
//! inside comments, string/char literals (including raw and byte strings),
//! and doc comments must produce **no tokens**, so `// .unwrap()` or
//! `"panic!"` can never trip a rule. Line comments are additionally scanned
//! for `cs-lint: allow(..)` waiver pragmas.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; the text is kept for matching.
    Ident(String),
    /// Single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct(char),
    /// String/char/number literal. The source text is kept so signature
    /// extraction (the API snapshot, DESIGN.md §7) can render literals in
    /// type position (`[f64; 4]`); the hygiene rules never look inside.
    Literal(String),
}

impl Tok {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// The token's source text: identifier text, the punctuation character,
    /// or the literal's source span.
    pub fn text(&self) -> String {
        match &self.kind {
            TokKind::Ident(s) | TokKind::Literal(s) => s.clone(),
            TokKind::Punct(c) => c.to_string(),
        }
    }
}

/// A `// cs-lint: allow(rule-a, rule-b) -- justification` waiver comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on. The waiver applies to
    /// findings on this line and the line directly below it.
    pub line: u32,
    /// Rule names listed inside `allow(..)`.
    pub rules: Vec<String>,
    /// Whether a non-empty `-- justification` trailer was present.
    pub justified: bool,
}

/// Lexer output: the token stream plus any waiver pragmas found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub pragmas: Vec<Pragma>,
}

/// Marker that introduces a waiver pragma inside a `//` or `#` comment.
pub const PRAGMA_MARKER: &str = "cs-lint: allow(";

/// Parses the waiver pragma out of one comment body, if present.
///
/// Returns `None` when the comment has no `cs-lint:` marker at all; returns
/// a [`Pragma`] (possibly with `justified == false` or an empty rule list,
/// which the caller reports as malformed) when the marker is present.
pub fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let at = comment.find(PRAGMA_MARKER)?;
    let rest = &comment[at + PRAGMA_MARKER.len()..];
    let close = match rest.find(')') {
        Some(c) => c,
        None => {
            return Some(Pragma {
                line,
                rules: Vec::new(),
                justified: false,
            })
        }
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let trailer = &rest[close + 1..];
    let justified = trailer
        .find("--")
        .map(|d| !trailer[d + 2..].trim().is_empty())
        .unwrap_or(false);
    Some(Pragma {
        line,
        rules,
        justified,
    })
}

/// Tokenizes Rust source. Never fails: unterminated literals simply consume
/// to end-of-input (the compiler, which runs in the same verify gate, owns
/// real syntax errors).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                // Doc comments (`///`, `//!`) are prose about the code —
                // only plain `//` comments can carry a waiver pragma, so
                // documentation *describing* the pragma syntax is inert.
                let is_doc = comment.starts_with("///") && !comment.starts_with("////")
                    || comment.starts_with("//!");
                if !is_doc {
                    if let Some(p) = parse_pragma(comment, line) {
                        out.pragmas.push(p);
                    }
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                let start = i;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal(src[start..i].to_string()),
                    line: tok_line,
                });
            }
            b'\'' => {
                let tok_line = line;
                if let Some(next) = char_literal_end(b, i) {
                    let start = i;
                    i = next;
                    out.tokens.push(Tok {
                        kind: TokKind::Literal(src[start..i].to_string()),
                        line: tok_line,
                    });
                } else {
                    // Lifetime: consume the quote plus the label identifier.
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    // Lifetimes never matter to the rules; drop them.
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let start = i;
                i = skip_number(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Literal(src[start..i].to_string()),
                    line: tok_line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw/byte string prefixes: r" r#" b" br#" b' etc.
                if i < b.len() && matches!(word, "r" | "b" | "br") {
                    match b[i] {
                        b'"' | b'#' if word != "b" || b[i] == b'"' => {
                            let tok_line = line;
                            i = if word == "b" {
                                skip_string(b, i, &mut line)
                            } else {
                                skip_raw_string(b, i, &mut line)
                            };
                            out.tokens.push(Tok {
                                kind: TokKind::Literal(src[start..i].to_string()),
                                line: tok_line,
                            });
                            continue;
                        }
                        b'\'' if word == "b" => {
                            let tok_line = line;
                            i = char_literal_end(b, i).unwrap_or(b.len());
                            out.tokens.push(Tok {
                                kind: TokKind::Literal(src[start..i].to_string()),
                                line: tok_line,
                            });
                            continue;
                        }
                        _ => {}
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident(word.to_string()),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Consumes a `"…"` string (with escapes) starting at the opening quote;
/// returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string starting at the first `#` or `"` after the `r`/`br`
/// prefix; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return i; // not actually a raw string; resynchronize
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b.len() - i > hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        } else if b[i] == b'"' && hashes == 0 {
            return i + 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Distinguishes `'x'` / `'\n'` char literals from `'label` lifetimes.
/// Returns `Some(end)` past the closing quote for a char literal, `None`
/// for a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    // b[i] == '\''
    let c = *b.get(i + 1)?;
    if c == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < b.len() {
            if b[j] == b'\\' {
                j += 2;
            } else if b[j] == b'\'' {
                return Some(j + 1);
            } else {
                j += 1;
            }
        }
        return Some(j);
    }
    if is_ident_start(c) || c.is_ascii_digit() {
        // 'x' is a char literal only when the very next char closes it;
        // otherwise it's a lifetime label ('static, 'a in 'a>).
        if b.get(i + 2) == Some(&b'\'') {
            return Some(i + 3);
        }
        return None;
    }
    // Punctuation char literal like '(' or ' '.
    if b.get(i + 2) == Some(&b'\'') {
        return Some(i + 3);
    }
    None
}

/// Consumes a numeric literal (ints, floats, exponents, hex, suffixes),
/// careful not to swallow the `..` of a range expression.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            // Exponent sign: 1e-12 / 1E+3.
            if (c == b'e' || c == b'E')
                && i + 1 < b.len()
                && (b[i + 1] == b'-' || b[i + 1] == b'+')
                && i + 2 < b.len()
                && b[i + 2].is_ascii_digit()
            {
                i += 2;
            }
            i += 1;
        } else if c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r###"
            // not.unwrap() here
            /* nor panic! here /* nested */ still comment */
            let s = "contains .unwrap() text";
            let r = r#"raw with "quotes" and .unwrap()"#;
            let b = b"byte .unwrap()";
            let c = '\'';
            real_ident();
        "###;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "let", "c", "real_ident"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"static".to_string()) || !ids.contains(&"'static".to_string()));
        // The quote of a lifetime must not start a string that swallows code.
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let src = r"let q = '\''; after();";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn ranges_are_not_floats() {
        let src = "for i in 0..n { body(); }";
        let ids = idents(src);
        assert!(ids.contains(&"body".to_string()));
        // `..` survives as two dots.
        let dots = lex(src).tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_track_newlines_in_strings() {
        let src = "let a = \"x\ny\";\nmarker();";
        let l = lex(src);
        let marker = l.tokens.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn doc_comments_cannot_carry_pragmas() {
        let src = "/// docs: `// cs-lint: allow(no-unsafe) -- x`\n//! cs-lint: allow(no-unsafe) -- y\n// cs-lint: allow(no-unsafe) -- real\nfn f() {}";
        let l = lex(src);
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].line, 3);
    }

    #[test]
    fn multi_hash_raw_strings_close_only_on_matching_hashes() {
        // `"#` inside must not close an `r##"…"##` literal.
        let src = r####"let s = r##"contains "# and "quotes" inside"##; after();"####;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
        let l = lex(src);
        let lit = l
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Literal(s) if s.starts_with("r##")))
            .expect("raw literal kept as one token");
        assert!(lit.text().ends_with("\"##"));
    }

    #[test]
    fn byte_string_escapes_do_not_end_the_literal() {
        let src = r#"let b = b"quote \" and \x7f bytes"; after();"#;
        assert_eq!(idents(src), vec!["let", "b", "after"]);
        // Raw byte strings take the raw path: backslashes are inert.
        let src = r##"let r = br#"trailing backslash \"#; after();"##;
        assert_eq!(idents(src), vec!["let", "r", "after"]);
        // Byte char with escape.
        let src = r"let n = b'\n'; after();";
        assert_eq!(idents(src), vec!["let", "n", "after"]);
    }

    #[test]
    fn lifetime_after_turbofish_is_not_a_char_literal() {
        let src = "fn f() { g::<'a, u8>(1); let p = Foo::<'static>::new(); let c = 'x'; done(); }";
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()));
        assert!(ids.contains(&"new".to_string()));
        let l = lex(src);
        // 'x' stays a char literal token…
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Literal(s) if s == "'x'")));
        // …while 'a / 'static produce no literal that would swallow code.
        assert!(!l.tokens.iter().any(
            |t| matches!(&t.kind, TokKind::Literal(s) if s.starts_with("'a")
                || s.starts_with("'s"))
        ));
    }

    #[test]
    fn pragma_parsing() {
        let p = parse_pragma("// cs-lint: allow(no-unsafe) -- FFI shim", 7).unwrap();
        assert_eq!(p.rules, vec!["no-unsafe"]);
        assert!(p.justified);
        assert_eq!(p.line, 7);

        let p = parse_pragma("// cs-lint: allow(a, b) --", 1).unwrap();
        assert_eq!(p.rules, vec!["a", "b"]);
        assert!(!p.justified);

        let p = parse_pragma("// cs-lint: allow(x)", 1).unwrap();
        assert!(!p.justified);

        assert!(parse_pragma("// plain comment", 1).is_none());
    }
}
