//! The rule set, tailored to this workspace (see DESIGN.md §7).
//!
//! Rules operate on the token stream from [`crate::lexer`]; file-path
//! classification decides which rules are in scope, and `#[cfg(test)]` /
//! `#[test]` item bodies are exempt from the hygiene rules so test code can
//! keep its idiomatic `unwrap()`s.

use crate::concurrency;
use crate::items::{self, UseMap};
use crate::lexer::{lex, Pragma, Tok};
use crate::report::Finding;

/// Rule: `partial_cmp(..).unwrap()/.expect(..)` inside a sort/extremum
/// comparator — panics on the first NaN score. Use `cs_linalg::total_cmp_f64`.
pub const NO_FLOAT_SORT_UNWRAP: &str = "no-float-sort-unwrap";
/// Rule: `.unwrap()` in non-test library code of cs-core / cs-linalg.
pub const NO_UNWRAP_IN_LIB: &str = "no-unwrap-in-lib";
/// Rule: `panic!` / `todo!` / `unimplemented!` in cs-core non-test code.
pub const PANIC_FREE_CORE: &str = "panic-free-core";
/// Rule: no `unsafe` anywhere in the workspace.
pub const NO_UNSAFE: &str = "no-unsafe";
/// Rule: no registry/git dependency may enter the workspace (DESIGN.md §6).
pub const HERMETIC_DEPS: &str = "hermetic-deps";
/// Rule: `Mutex<Vec<..>>` in cs-core non-test code — the classic shape of
/// workers pushing results in *arrival* order, which breaks the
/// determinism contract (DESIGN.md §8). Waivable where the vector's order
/// provably does not reach any output.
pub const NO_ARRIVAL_ORDER_REDUCE: &str = "no-arrival-order-reduce";
/// Rule: `HashMap`/`HashSet` iteration in the deterministic-pipeline
/// crates, where hasher-dependent order can reach numeric accumulation or
/// serialized output (DESIGN.md §8). Use a `BTreeMap`/`BTreeSet` or an
/// explicit sort; waivable for provably commutative folds.
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
/// Rule: `std::env::var` / `Instant::now` / `SystemTime::now` outside the
/// designated config and bench modules — ambient process state must enter
/// through `cs_linalg::config`.
pub const NO_AMBIENT_AUTHORITY: &str = "no-ambient-authority";
/// Rule: a second `Mutex`/`RwLock` guard acquired while another may still
/// be live within one function body of `cs_core::pool` / cs-embed.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule: a justified `cs-lint: allow(<rule>)` pragma whose named rule no
/// longer fires on the waived line — dead waivers hide real regressions.
pub const STALE_WAIVER: &str = "stale-waiver";
/// Diagnostic for malformed or unknown waiver pragmas (not waivable).
pub const PRAGMA: &str = "pragma";
/// Rule: interprocedural determinism taint ([`crate::dataflow`]) — a
/// nondeterministically-ordered value (hash iteration, clock read,
/// arrival-order push under a lock) reaches an order-sensitive float
/// reduction through the intra-crate call graph (DESIGN.md §8). Waivable
/// at the source line or the sink line.
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Rule: an unchecked `as` cast between float and integer width (or a
/// narrowing `as f32`) inside a hot-path kernel of cs-linalg /
/// `cs_core::pool` — NaN and out-of-range inputs truncate silently.
pub const NO_LOSSY_CAST_IN_HOT_PATH: &str = "no-lossy-cast-in-hot-path";
/// Rule: raw subtraction inside a slice index in chunk-deal code — a
/// `usize` underflow panics in debug and wraps to a wild index in release.
pub const NO_UNCHECKED_INDEX_ARITH: &str = "no-unchecked-index-arith";

/// Every enforceable rule name, for pragma validation.
pub const ALL_RULES: [&str; 13] = [
    NO_FLOAT_SORT_UNWRAP,
    NO_UNWRAP_IN_LIB,
    PANIC_FREE_CORE,
    NO_UNSAFE,
    HERMETIC_DEPS,
    NO_ARRIVAL_ORDER_REDUCE,
    NO_UNORDERED_ITERATION,
    NO_AMBIENT_AUTHORITY,
    LOCK_DISCIPLINE,
    STALE_WAIVER,
    DETERMINISM_TAINT,
    NO_LOSSY_CAST_IN_HOT_PATH,
    NO_UNCHECKED_INDEX_ARITH,
];

/// Diagnostic weight: `Error` findings fail the gate; `Warning` findings
/// are reported (and counted in the JSON document) but do not flip the
/// exit code, so advisory rules can ride in the same report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    /// The lowercase label used in the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Severity of a rule. Everything is an error except the advisory
/// hot-path cast rule, whose findings are legitimate in mixed-precision
/// kernels and gate via review + waiver instead of the exit code.
pub fn severity(rule: &str) -> Severity {
    if rule == NO_LOSSY_CAST_IN_HOT_PATH {
        Severity::Warning
    } else {
        Severity::Error
    }
}

/// Comparator-taking methods in whose argument list a float
/// `partial_cmp().unwrap()` is banned. Matched after a `.` receiver or a
/// `::` path segment (`Iterator::min_by(..)`-style UFCS calls).
const COMPARATOR_FNS: [&str; 7] = [
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "partition_point_by", // future-proofing; not std, but harmless
];

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct FileClass {
    /// Under `crates/cs-core/src/` — panic-free and unwrap-free.
    pub core_lib: bool,
    /// Under `crates/cs-linalg/src/` — unwrap-free.
    pub linalg_lib: bool,
    /// Under a `tests/` or `benches/` directory: hygiene rules off,
    /// `no-unsafe` still on.
    pub test_code: bool,
    /// Deterministic-pipeline crates (`no-unordered-iteration` scope):
    /// library sources of cs-core, cs-linalg, cs-match, cs-schema, cs-repro.
    pub det_scope: bool,
    /// Designated config / bench module: `no-ambient-authority` off.
    pub ambient_exempt: bool,
    /// `lock-discipline` scope: `cs_core::pool` and cs-embed sources.
    pub lock_scope: bool,
    /// Hot-path kernel scope (`no-lossy-cast-in-hot-path`): cs-linalg
    /// library sources plus the chunk-deal pool.
    pub hot_path: bool,
    /// Chunk-deal / slot-assembly scope (`no-unchecked-index-arith`):
    /// the pool and the cs-linalg kernels.
    pub chunk_deal: bool,
}

impl FileClass {
    /// Classifies a `/`-separated workspace-relative path.
    pub fn from_path(rel_path: &str) -> Self {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let under = |prefix: &[&str]| parts.len() > prefix.len() && parts.starts_with(prefix);
        let basename = parts.last().copied().unwrap_or("");
        FileClass {
            core_lib: under(&["crates", "cs-core", "src"]),
            linalg_lib: under(&["crates", "cs-linalg", "src"]),
            test_code: parts[..parts.len().saturating_sub(1)]
                .iter()
                .any(|p| *p == "tests" || *p == "benches"),
            det_scope: ["cs-core", "cs-linalg", "cs-match", "cs-schema", "cs-repro"]
                .iter()
                .any(|c| under(&["crates", c, "src"])),
            ambient_exempt: under(&["crates", "cs-bench"]) || basename == "config.rs",
            lock_scope: rel_path == "crates/cs-core/src/pool.rs"
                || under(&["crates", "cs-embed", "src"]),
            hot_path: under(&["crates", "cs-linalg", "src"])
                || rel_path == "crates/cs-core/src/pool.rs",
            chunk_deal: rel_path == "crates/cs-core/src/pool.rs"
                || rel_path == "crates/cs-linalg/src/kernels.rs",
        }
    }
}

/// Lints one Rust source file. `rel_path` is the workspace-relative path
/// used both for classification and in diagnostics.
pub fn lint_rust_source(src: &str, rel_path: &str) -> Vec<Finding> {
    let class = FileClass::from_path(rel_path);
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut findings = Vec::new();

    check_pragmas(&lexed.pragmas, rel_path, &mut findings);
    let test_regions = find_test_regions(toks);
    let in_test = |idx: usize| -> bool {
        class.test_code || test_regions.iter().any(|&(s, e)| idx >= s && idx <= e)
    };

    for (i, t) in toks.iter().enumerate() {
        let Some(word) = t.ident() else { continue };
        match word {
            "unsafe" => findings.push(Finding::new(
                NO_UNSAFE,
                rel_path,
                t.line,
                "`unsafe` is banned workspace-wide; every substrate is safe Rust",
            )),
            "panic" | "todo" | "unimplemented"
                if class.core_lib
                    && !in_test(i)
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    // `panic` in `#[should_panic]`-style attribute positions
                    // has no `!`; the bang check already excludes it.
                    =>
            {
                findings.push(Finding::new(
                    PANIC_FREE_CORE,
                    rel_path,
                    t.line,
                    format!("`{word}!` in cs-core non-test code; return a typed error instead"),
                ));
            }
            "Mutex"
                if class.core_lib
                    && !in_test(i)
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('<'))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("Vec")) =>
            {
                findings.push(Finding::new(
                    NO_ARRIVAL_ORDER_REDUCE,
                    rel_path,
                    t.line,
                    "`Mutex<Vec<..>>` accumulates parallel results in arrival order, \
                     breaking the determinism contract (DESIGN.md §8); deal indexed \
                     chunks and assemble result slots by position (see cs_core::pool)",
                ));
            }
            "unwrap"
                if (class.core_lib || class.linalg_lib)
                    && !in_test(i)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
            {
                findings.push(Finding::new(
                    NO_UNWRAP_IN_LIB,
                    rel_path,
                    t.line,
                    "`.unwrap()` in library code; propagate a typed error or document \
                     the invariant with a waiver pragma",
                ));
            }
            _ => {}
        }
    }

    find_float_sort_unwraps(toks, rel_path, &class, &test_regions, &mut findings);

    let parsed = items::parse_items(toks);
    let uses = UseMap::build(toks, &parsed);
    concurrency::lint_items(
        toks,
        &parsed,
        &uses,
        &class,
        rel_path,
        &test_regions,
        &mut findings,
    );
    crate::dataflow::lint_hot_path_items(
        toks,
        &parsed,
        &class,
        rel_path,
        &test_regions,
        &mut findings,
    );

    apply_waivers(&lexed.pragmas, &mut findings);
    flag_stale_waivers(&lexed.pragmas, rel_path, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Emits [`STALE_WAIVER`] for every justified, well-formed pragma naming a
/// rule that produced no finding (waived or not) on the pragma's line or
/// the line below — the two positions a waiver can cover.
fn flag_stale_waivers(pragmas: &[Pragma], rel_path: &str, findings: &mut Vec<Finding>) {
    let mut stale = Vec::new();
    for p in pragmas {
        if !p.justified {
            continue; // already reported as a `pragma` finding
        }
        for r in &p.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                continue; // already reported as a `pragma` finding
            }
            if r == DETERMINISM_TAINT {
                // Taint findings only exist after the workspace-level
                // dataflow pass; staleness for them is checked there
                // (`crate::dataflow::analyze_workspace`).
                continue;
            }
            let covers = findings
                .iter()
                .any(|f| f.rule == r && (f.line == p.line || f.line == p.line + 1));
            if !covers {
                stale.push(Finding::new(
                    STALE_WAIVER,
                    rel_path,
                    p.line,
                    format!("waiver for `{r}` no longer matches a finding here; delete the pragma"),
                ));
            }
        }
    }
    // A stale-waiver finding is itself waivable through the normal pragma
    // mechanism (`allow(stale-waiver)` is legal, if eccentric).
    apply_waivers(pragmas, &mut stale);
    findings.extend(stale);
}

/// Reports malformed pragmas (missing justification, unknown rule names).
fn check_pragmas(pragmas: &[Pragma], rel_path: &str, findings: &mut Vec<Finding>) {
    for p in pragmas {
        if p.rules.is_empty() {
            findings.push(Finding::new(
                PRAGMA,
                rel_path,
                p.line,
                "malformed waiver: expected `cs-lint: allow(<rule>) -- <justification>`",
            ));
            continue;
        }
        if !p.justified {
            findings.push(Finding::new(
                PRAGMA,
                rel_path,
                p.line,
                "waiver pragma needs a `-- <justification>` trailer",
            ));
        }
        for r in &p.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                findings.push(Finding::new(
                    PRAGMA,
                    rel_path,
                    p.line,
                    format!("waiver names unknown rule `{r}`"),
                ));
            }
        }
    }
}

/// Marks findings as waived when a well-formed pragma naming their rule sits
/// on the same line or the line directly above. `pragma` findings are never
/// waivable.
fn apply_waivers(pragmas: &[Pragma], findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.rule == PRAGMA {
            continue;
        }
        f.waived = pragmas.iter().any(|p| {
            p.justified
                && (p.line == f.line || p.line + 1 == f.line)
                && p.rules.iter().any(|r| r == f.rule)
        });
    }
}

/// Token-index ranges `(start, end)` covering the bodies of `#[cfg(test)]`
/// / `#[test]` items (inclusive of the braces).
pub(crate) fn find_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching(toks, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&toks[i + 2..attr_end]) {
                // Skip any further attributes, then find the item's brace
                // block; a `;` first means an out-of-line item (no body).
                let mut j = attr_end + 1;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(toks, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => return regions,
                    }
                }
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    if let Some(close) = matching(toks, j, '{', '}') {
                        regions.push((i, close));
                        i = attr_end + 1; // attributes can nest inside; rescan body is harmless
                        continue;
                    }
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]` — any attribute whose
/// first ident is `test`, or `cfg(..)` mentioning `test`.
fn attr_is_test(attr: &[Tok]) -> bool {
    match attr.first().and_then(Tok::ident) {
        Some("test") => true,
        // `not` makes the predicate ambiguous (`cfg(not(test))`); treat it
        // as non-test so lib code can't hide behind a negation.
        Some("cfg") => {
            attr.iter().skip(1).any(|t| t.is_ident("test"))
                && !attr.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    }
}

/// Index of the token closing the bracket opened at `open_idx`.
pub(crate) fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Detects `partial_cmp(..).unwrap()` / `.expect(..)` inside the argument
/// list of a comparator-taking method call.
fn find_float_sort_unwraps(
    toks: &[Tok],
    rel_path: &str,
    class: &FileClass,
    test_regions: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    let mut depth = 0i64;
    // Paren depths at which a comparator call's argument list is open.
    let mut ctx: Vec<i64> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
            // Did this paren open a `.sort_by(`-style call, or a
            // `Iterator::min_by(`-style UFCS call?
            let recv = i >= 2
                && (toks[i - 2].is_punct('.')
                    || (toks[i - 2].is_punct(':') && i >= 3 && toks[i - 3].is_punct(':')));
            if recv
                && toks[i - 1]
                    .ident()
                    .is_some_and(|w| COMPARATOR_FNS.contains(&w))
            {
                ctx.push(depth);
            }
        } else if t.is_punct(')') {
            if ctx.last() == Some(&depth) {
                ctx.pop();
            }
            depth -= 1;
        } else if t.is_ident("partial_cmp")
            && !ctx.is_empty()
            && i > 0
            // Method form (`a.partial_cmp(b)`) or UFCS path form
            // (`f64::partial_cmp(a, b)`) — both produce the NaN-panicking
            // `Option<Ordering>` when chained into `unwrap`/`expect`.
            && (toks[i - 1].is_punct('.')
                || (toks[i - 1].is_punct(':') && i >= 2 && toks[i - 2].is_punct(':')))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matching(toks, i + 1, '(', ')') {
                let chained = toks.get(close + 1).is_some_and(|n| n.is_punct('.'))
                    && toks
                        .get(close + 2)
                        .and_then(Tok::ident)
                        .is_some_and(|w| w == "unwrap" || w == "expect");
                let exempt = class.test_code || test_regions.iter().any(|&(s, e)| i >= s && i <= e);
                if chained && !exempt {
                    let method = toks[close + 2].ident().unwrap_or("unwrap");
                    findings.push(Finding::new(
                        NO_FLOAT_SORT_UNWRAP,
                        rel_path,
                        toks[i].line,
                        format!(
                            "`partial_cmp(..).{method}(..)` inside a comparator panics on NaN; \
                             use `cs_linalg::total_cmp_f64`"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/cs-core/src/fake.rs";

    fn rules_fired(src: &str, path: &str) -> Vec<&'static str> {
        lint_rust_source(src, path)
            .into_iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn classification() {
        let c = FileClass::from_path("crates/cs-core/src/scoping.rs");
        assert!(c.core_lib && !c.linalg_lib && !c.test_code);
        assert!(c.det_scope && !c.ambient_exempt && !c.lock_scope);
        let t = FileClass::from_path("crates/cs-linalg/tests/properties.rs");
        assert!(t.test_code && !t.linalg_lib && !t.det_scope);
        let b = FileClass::from_path("crates/cs-bench/benches/scaling.rs");
        assert!(b.test_code && b.ambient_exempt);
        let root = FileClass::from_path("tests/hermetic.rs");
        assert!(root.test_code);
        let pool = FileClass::from_path("crates/cs-core/src/pool.rs");
        assert!(pool.lock_scope && pool.det_scope);
        assert!(pool.hot_path && pool.chunk_deal);
        let embed = FileClass::from_path("crates/cs-embed/src/encoder.rs");
        assert!(embed.lock_scope && !embed.det_scope);
        assert!(!embed.hot_path && !embed.chunk_deal);
        let cfg = FileClass::from_path("crates/cs-linalg/src/config.rs");
        assert!(cfg.ambient_exempt && cfg.linalg_lib);
        let kern = FileClass::from_path("crates/cs-linalg/src/kernels.rs");
        assert!(kern.hot_path && kern.chunk_deal);
        let core = FileClass::from_path("crates/cs-core/src/scoping.rs");
        assert!(!core.hot_path && !core.chunk_deal);
    }

    #[test]
    fn severity_split() {
        assert_eq!(severity(NO_LOSSY_CAST_IN_HOT_PATH), Severity::Warning);
        assert_eq!(severity(NO_UNCHECKED_INDEX_ARITH), Severity::Error);
        assert_eq!(severity(DETERMINISM_TAINT), Severity::Error);
        assert_eq!(severity(NO_UNSAFE), Severity::Error);
        assert_eq!(Severity::Warning.label(), "warning");
    }

    #[test]
    fn unwrap_in_core_lib_fires() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(src, LIB), vec![NO_UNWRAP_IN_LIB]);
        // Same code in a non-core crate: clean.
        assert!(rules_fired(src, "crates/cs-match/src/fake.rs").is_empty());
        // Same code inside a test mod: clean.
        let test_src = format!("#[cfg(test)] mod tests {{ {src} }}");
        assert!(rules_fired(&test_src, LIB).is_empty());
    }

    #[test]
    fn test_fn_attribute_exempts() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }";
        assert!(rules_fired(src, LIB).is_empty());
    }

    #[test]
    fn panic_macros_fire_only_in_core() {
        for mac in ["panic!(\"boom\")", "todo!()", "unimplemented!()"] {
            let src = format!("fn f() {{ {mac}; }}");
            assert_eq!(rules_fired(&src, LIB), vec![PANIC_FREE_CORE], "{mac}");
            assert!(rules_fired(&src, "crates/cs-oda/src/fake.rs").is_empty());
        }
        // `panic` without a bang (e.g. a variable named panic) is fine.
        assert!(rules_fired("fn f() { let panic = 1; }", LIB).is_empty());
    }

    #[test]
    fn unsafe_fires_everywhere_even_tests() {
        let src = "#[cfg(test)] mod t { fn f() { unsafe { () } } }";
        assert_eq!(
            rules_fired(src, "crates/cs-embed/tests/x.rs"),
            vec![NO_UNSAFE]
        );
    }

    #[test]
    fn float_sort_unwrap_fires() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
        let src = "fn f(v: &[f64], d: f64) { v.binary_search_by(|x| x.partial_cmp(&d).expect(\"finite\")).ok(); }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
    }

    #[test]
    fn select_nth_and_ufcs_comparators_fire() {
        let src = "fn f(v: &mut [f64]) { v.select_nth_unstable_by(3, |a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
        // UFCS receiver form: `Iterator::min_by(iter, cmp)`.
        let src = "fn f(v: Vec<f64>) -> Option<f64> {\n\
                   Iterator::min_by(v.into_iter(), |a, b| a.partial_cmp(b).unwrap())\n\
                   }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
        let src = "fn f(v: Vec<f64>) -> Option<f64> {\n\
                   std::iter::Iterator::max_by(v.into_iter(), |a, b| a.partial_cmp(b).expect(\"fin\"))\n\
                   }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
    }

    #[test]
    fn ufcs_partial_cmp_inside_comparator_fires() {
        // PR 6-era kernels spell the comparator as `f64::partial_cmp(a, b)`
        // — the path form must be caught exactly like `.partial_cmp(..)`.
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| f64::partial_cmp(a, b).unwrap()); }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
        let src = "fn f(v: &[f64], d: f64) {\n\
                   v.binary_search_by(|x| f64::partial_cmp(x, &d).expect(\"finite\")).ok();\n\
                   }";
        assert_eq!(
            rules_fired(src, "crates/cs-match/src/fake.rs"),
            vec![NO_FLOAT_SORT_UNWRAP]
        );
        // The UFCS form with a total order is clean.
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| f64::total_cmp(a, b)); }";
        assert!(rules_fired(src, "crates/cs-match/src/fake.rs").is_empty());
    }

    #[test]
    fn stale_waiver_fires_when_rule_is_quiet() {
        let src = "fn f(x: Option<u8>) -> Option<u8> {\n\
                   // cs-lint: allow(no-unwrap-in-lib) -- left behind after a refactor\n\
                   x\n\
                   }";
        assert_eq!(rules_fired(src, LIB), vec![STALE_WAIVER]);
    }

    #[test]
    fn live_waiver_is_not_stale() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // cs-lint: allow(no-unwrap-in-lib) -- invariant: x always Some here\n\
                   x.unwrap()\n\
                   }";
        assert!(rules_fired(src, LIB).is_empty());
    }

    #[test]
    fn stale_waiver_per_rule_in_multi_rule_pragma() {
        // One pragma naming two rules: only the quiet one is stale.
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // cs-lint: allow(no-unwrap-in-lib, no-unsafe) -- mixed\n\
                   x.unwrap()\n\
                   }";
        assert_eq!(rules_fired(src, LIB), vec![STALE_WAIVER]);
    }

    #[test]
    fn float_sort_with_total_cmp_is_clean() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(cs_linalg::total_cmp_f64); }";
        assert!(rules_fired(src, "crates/cs-match/src/fake.rs").is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_outside_comparator_is_not_this_rule() {
        // Not inside sort_by/max_by/..: no-float-sort-unwrap stays silent
        // (no-unwrap-in-lib may still fire in core/linalg).
        let src = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }";
        assert!(rules_fired(src, "crates/cs-match/src/fake.rs").is_empty());
        assert_eq!(rules_fired(src, LIB), vec![NO_UNWRAP_IN_LIB]);
    }

    #[test]
    fn mutex_vec_fires_only_in_core_lib() {
        let src = "use std::sync::Mutex;\nstruct Acc { results: Mutex<Vec<f64>> }";
        assert_eq!(rules_fired(src, LIB), vec![NO_ARRIVAL_ORDER_REDUCE]);
        // Other crates may still use the pattern.
        assert!(rules_fired(src, "crates/cs-match/src/fake.rs").is_empty());
        // Test code in cs-core is exempt.
        let test_src = format!("#[cfg(test)] mod tests {{ {src} }}");
        assert!(rules_fired(&test_src, LIB).is_empty());
    }

    #[test]
    fn mutex_of_non_vec_is_clean() {
        // The pool's own `Mutex<mpsc::Receiver<..>>` shape must not fire.
        let src = "use std::sync::Mutex;\nstruct P { rx: Mutex<std::sync::mpsc::Receiver<u8>> }";
        assert!(rules_fired(src, LIB).is_empty());
        assert!(rules_fired("fn f(m: &std::sync::Mutex<usize>) {}", LIB).is_empty());
    }

    #[test]
    fn mutex_vec_is_waivable() {
        let src = "struct Acc {\n    // cs-lint: allow(no-arrival-order-reduce) -- order never reaches output\n    results: std::sync::Mutex<Vec<f64>>,\n}";
        assert!(rules_fired(src, LIB).is_empty());
    }

    #[test]
    fn waiver_pragma_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // cs-lint: allow(no-unwrap-in-lib) -- invariant: x always Some here\n    x.unwrap()\n}";
        assert!(rules_fired(src, LIB).is_empty());
        // Same-line waiver.
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // cs-lint: allow(no-unwrap-in-lib) -- checked";
        assert!(rules_fired(src, LIB).is_empty());
    }

    #[test]
    fn waiver_without_justification_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // cs-lint: allow(no-unwrap-in-lib)\n    x.unwrap()\n}";
        let fired = rules_fired(src, LIB);
        assert!(fired.contains(&PRAGMA));
        assert!(fired.contains(&NO_UNWRAP_IN_LIB));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // cs-lint: allow(no-unsafe) -- wrong rule\n    x.unwrap()\n}";
        assert!(rules_fired(src, LIB).contains(&NO_UNWRAP_IN_LIB));
    }

    #[test]
    fn unknown_rule_in_pragma_reported() {
        let src = "// cs-lint: allow(no-such-rule) -- why\nfn f() {}";
        assert_eq!(rules_fired(src, LIB), vec![PRAGMA]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r###"
            fn f() {
                let s = "x.unwrap() and unsafe and panic!";
                let r = r#"v.sort_by(|a, b| a.partial_cmp(b).unwrap())"#;
                // x.unwrap(); unsafe { panic!() }
            }
        "###;
        assert!(rules_fired(src, LIB).is_empty());
    }
}
