//! Diagnostics: the [`Finding`] record, human-readable rendering, and the
//! machine-readable JSON report (written with the in-workspace
//! `cs_core::json` writer — the linter obeys the policy it enforces).

use std::collections::BTreeMap;

use cs_core::json::JsonValue;

use crate::rules::{severity, Severity};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (kebab-case, e.g. `no-unwrap-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// True when an inline `cs-lint: allow(..)` pragma covers this finding.
    pub waived: bool,
}

impl Finding {
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            waived: false,
        }
    }

    /// `file:line: [rule] message` — the clickable diagnostic format.
    /// Warnings carry their severity label so the two gate outcomes are
    /// distinguishable in terminal output.
    pub fn render(&self) -> String {
        let sev = match self.severity() {
            Severity::Error => "",
            Severity::Warning => " warning:",
        };
        format!(
            "{}:{}: [{}]{} {}",
            self.file, self.line, self.rule, sev, self.message
        )
    }

    /// Severity of this finding, derived from its rule.
    pub fn severity(&self) -> Severity {
        severity(self.rule)
    }
}

/// The full result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, waived ones included; sorted by file, then line.
    pub findings: Vec<Finding>,
    /// Number of files scanned (Rust sources + manifests).
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by a waiver pragma — these fail the gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// True when no finding is unwaived — the strict bar the shipped tree
    /// is held to (selfcheck), regardless of severity.
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Unwaived findings whose rule is an error.
    pub fn errors(&self) -> usize {
        self.unwaived()
            .filter(|f| f.severity() == Severity::Error)
            .count()
    }

    /// Unwaived findings whose rule is advisory.
    pub fn warnings(&self) -> usize {
        self.unwaived()
            .filter(|f| f.severity() == Severity::Warning)
            .count()
    }

    /// The CI gate: zero unwaived errors (warnings allowed).
    pub fn gate_ok(&self) -> bool {
        self.errors() == 0
    }

    /// Machine-readable report document: per-finding severity, the
    /// error/warning totals the gate keys on, and per-rule counts so
    /// downstream tooling never has to grep the findings array.
    pub fn to_json(&self) -> JsonValue {
        let findings: Vec<JsonValue> = self
            .findings
            .iter()
            .map(|f| {
                JsonValue::object(vec![
                    ("rule", JsonValue::String(f.rule.to_string())),
                    (
                        "severity",
                        JsonValue::String(f.severity().label().to_string()),
                    ),
                    ("file", JsonValue::String(f.file.clone())),
                    ("line", JsonValue::Number(f.line as f64)),
                    ("message", JsonValue::String(f.message.clone())),
                    ("waived", JsonValue::Bool(f.waived)),
                ])
            })
            .collect();
        // Per-rule tallies over every finding (waived included, tracked
        // separately) for rules that fired at least once.
        let mut tally: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let e = tally.entry(f.rule).or_insert((0, 0));
            e.0 += 1;
            if f.waived {
                e.1 += 1;
            }
        }
        let rules: Vec<(&str, JsonValue)> = tally
            .iter()
            .map(|(rule, &(count, waived))| {
                (
                    *rule,
                    JsonValue::object(vec![
                        (
                            "severity",
                            JsonValue::String(severity(rule).label().to_string()),
                        ),
                        ("count", JsonValue::Number(count as f64)),
                        ("waived", JsonValue::Number(waived as f64)),
                    ]),
                )
            })
            .collect();
        JsonValue::object(vec![
            ("tool", JsonValue::String("cs-lint".to_string())),
            (
                "files_scanned",
                JsonValue::Number(self.files_scanned as f64),
            ),
            (
                "unwaived",
                JsonValue::Number(self.unwaived().count() as f64),
            ),
            (
                "waived",
                JsonValue::Number(self.findings.iter().filter(|f| f.waived).count() as f64),
            ),
            ("errors", JsonValue::Number(self.errors() as f64)),
            ("warnings", JsonValue::Number(self.warnings() as f64)),
            ("clean", JsonValue::Bool(self.clean())),
            ("gate_ok", JsonValue::Bool(self.gate_ok())),
            ("rules", JsonValue::object(rules)),
            ("findings", JsonValue::Array(findings)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::rules::NO_LOSSY_CAST_IN_HOT_PATH;

    #[test]
    fn render_format() {
        let f = Finding::new("no-unsafe", "crates/x/src/a.rs", 12, "msg");
        assert_eq!(f.render(), "crates/x/src/a.rs:12: [no-unsafe] msg");
        let w = Finding::new(NO_LOSSY_CAST_IN_HOT_PATH, "a.rs", 3, "msg");
        assert_eq!(
            w.render(),
            "a.rs:3: [no-lossy-cast-in-hot-path] warning: msg"
        );
    }

    #[test]
    fn severity_gate_counts() {
        let mut r = LintReport::default();
        r.findings.push(Finding::new("no-unsafe", "a.rs", 1, "m"));
        r.findings
            .push(Finding::new(NO_LOSSY_CAST_IN_HOT_PATH, "a.rs", 2, "m"));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.gate_ok() && !r.clean());
        // Waiving the error leaves only the warning: gate passes, strict
        // cleanliness does not.
        r.findings[0].waived = true;
        assert_eq!(r.errors(), 0);
        assert!(r.gate_ok() && !r.clean());
    }

    #[test]
    fn rules_tally_in_json() {
        let mut r = LintReport::default();
        r.findings.push(Finding::new("no-unsafe", "a.rs", 1, "m"));
        let mut w = Finding::new(NO_LOSSY_CAST_IN_HOT_PATH, "a.rs", 2, "m");
        w.waived = true;
        r.findings.push(w);
        r.findings
            .push(Finding::new(NO_LOSSY_CAST_IN_HOT_PATH, "b.rs", 3, "m"));
        let doc = r.to_json();
        assert_eq!(doc.get("errors").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(doc.get("warnings").and_then(JsonValue::as_usize), Some(1));
        let rules = doc.get("rules").expect("rules object");
        let cast = rules.get(NO_LOSSY_CAST_IN_HOT_PATH).expect("tallied");
        assert_eq!(cast.get("count").and_then(JsonValue::as_usize), Some(2));
        assert_eq!(cast.get("waived").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(
            cast.get("severity"),
            Some(&JsonValue::String("warning".to_string()))
        );
        let unsafe_rule = rules.get("no-unsafe").expect("tallied");
        assert_eq!(
            unsafe_rule.get("severity"),
            Some(&JsonValue::String("error".to_string()))
        );
    }

    #[test]
    fn report_json_shape() {
        let mut r = LintReport::default();
        r.files_scanned = 3;
        let mut f = Finding::new("no-unsafe", "a.rs", 1, "m");
        f.waived = true;
        r.findings.push(f);
        r.findings.push(Finding::new("pragma", "b.rs", 2, "m2"));
        let doc = r.to_json();
        assert_eq!(doc.get("clean"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("unwaived").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(doc.get("waived").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(
            doc.get("findings")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        // Round-trips through the in-workspace parser.
        let text = doc.write_pretty();
        let back = cs_core::json::parse(&text).expect("parses");
        assert_eq!(back.get("clean"), Some(&JsonValue::Bool(false)));
    }
}
