//! Diagnostics: the [`Finding`] record, human-readable rendering, and the
//! machine-readable JSON report (written with the in-workspace
//! `cs_core::json` writer — the linter obeys the policy it enforces).

use cs_core::json::JsonValue;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (kebab-case, e.g. `no-unwrap-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// True when an inline `cs-lint: allow(..)` pragma covers this finding.
    pub waived: bool,
}

impl Finding {
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            waived: false,
        }
    }

    /// `file:line: [rule] message` — the clickable diagnostic format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The full result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, waived ones included; sorted by file, then line.
    pub findings: Vec<Finding>,
    /// Number of files scanned (Rust sources + manifests).
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by a waiver pragma — these fail the gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Machine-readable report document.
    pub fn to_json(&self) -> JsonValue {
        let findings: Vec<JsonValue> = self
            .findings
            .iter()
            .map(|f| {
                JsonValue::object(vec![
                    ("rule", JsonValue::String(f.rule.to_string())),
                    ("file", JsonValue::String(f.file.clone())),
                    ("line", JsonValue::Number(f.line as f64)),
                    ("message", JsonValue::String(f.message.clone())),
                    ("waived", JsonValue::Bool(f.waived)),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("tool", JsonValue::String("cs-lint".to_string())),
            (
                "files_scanned",
                JsonValue::Number(self.files_scanned as f64),
            ),
            (
                "unwaived",
                JsonValue::Number(self.unwaived().count() as f64),
            ),
            (
                "waived",
                JsonValue::Number(self.findings.iter().filter(|f| f.waived).count() as f64),
            ),
            ("clean", JsonValue::Bool(self.clean())),
            ("findings", JsonValue::Array(findings)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_format() {
        let f = Finding::new("no-unsafe", "crates/x/src/a.rs", 12, "msg");
        assert_eq!(f.render(), "crates/x/src/a.rs:12: [no-unsafe] msg");
    }

    #[test]
    fn report_json_shape() {
        let mut r = LintReport::default();
        r.files_scanned = 3;
        let mut f = Finding::new("no-unsafe", "a.rs", 1, "m");
        f.waived = true;
        r.findings.push(f);
        r.findings.push(Finding::new("pragma", "b.rs", 2, "m2"));
        let doc = r.to_json();
        assert_eq!(doc.get("clean"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("unwaived").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(doc.get("waived").and_then(JsonValue::as_usize), Some(1));
        assert_eq!(
            doc.get("findings")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        // Round-trips through the in-workspace parser.
        let text = doc.write_pretty();
        let back = cs_core::json::parse(&text).expect("parses");
        assert_eq!(back.get("clean"), Some(&JsonValue::Bool(false)));
    }
}
