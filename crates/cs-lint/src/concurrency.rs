//! The determinism & concurrency rule pack (DESIGN.md §7/§8).
//!
//! These rules are *item-level*: they consume the brace tree from
//! [`crate::items`] and reason per function body instead of over the flat
//! token stream —
//!
//! - [`crate::rules::NO_UNORDERED_ITERATION`] — iterating a
//!   `HashMap`/`HashSet` in the deterministic-pipeline crates, where
//!   arrival at a float reduction or a serialized emitter makes output
//!   depend on hasher state,
//! - [`crate::rules::NO_AMBIENT_AUTHORITY`] — `std::env::var`,
//!   `Instant::now`, `SystemTime::now` outside the designated config /
//!   bench modules,
//! - [`crate::rules::LOCK_DISCIPLINE`] — acquiring a second
//!   `Mutex`/`RwLock` guard while another may still be live within one
//!   function body of `cs_core::pool` or `cs-embed`.
//!
//! All three are heuristic by design (no type inference), tuned so the
//! shipped tree is clean without waivers and every false positive has a
//! cheap local fix (an ordered collection, an explicit sort, a justified
//! waiver).

use std::collections::BTreeSet;

use crate::items::{for_each_fn, Item, ItemKind, UseMap};
use crate::lexer::Tok;
use crate::report::Finding;
use crate::rules::{FileClass, LOCK_DISCIPLINE, NO_AMBIENT_AUTHORITY, NO_UNORDERED_ITERATION};

/// Iterator-producing methods on hash collections whose order is
/// hasher-dependent.
pub(crate) const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Chain methods that impose an explicit order downstream of an unordered
/// iterator.
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

/// Terminal adapters whose result does not depend on iteration order
/// (counting and boolean folds; float `sum` is *not* here — float
/// addition is order-sensitive, which is this rule's whole point).
const ORDER_INSENSITIVE_TERMINALS: [&str; 3] = ["count", "any", "all"];

/// Ordered collections a `collect` may target to restore determinism.
const ORDERED_COLLECTIONS: [&str; 3] = ["BTreeMap", "BTreeSet", "Vec"];

/// Runs the item-level pack over one file. `toks`/`items`/`uses` come from
/// the caller so the stream is lexed and parsed once per file.
pub fn lint_items(
    toks: &[Tok],
    items: &[Item],
    uses: &UseMap,
    class: &FileClass,
    rel_path: &str,
    test_regions: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    let in_test =
        |idx: usize| class.test_code || test_regions.iter().any(|&(s, e)| idx >= s && idx <= e);

    if class.det_scope {
        let hash_names = hash_type_names(uses);
        let fields = hash_fields(toks, items, &hash_names);
        let mut fns = Vec::new();
        for_each_fn(items, &mut |f| fns.push(f));
        for f in &fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            if in_test(open) {
                continue;
            }
            let symbols = hash_symbols(toks, f, &hash_names);
            if symbols.is_empty() && fields.is_empty() {
                continue;
            }
            find_unordered_iterations(toks, (open, close), &symbols, &fields, rel_path, findings);
        }
    }

    if !class.ambient_exempt {
        find_ambient_authority(toks, uses, rel_path, &in_test, findings);
    }

    if class.lock_scope {
        let mut fns = Vec::new();
        for_each_fn(items, &mut |f| fns.push(f));
        for f in &fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            if in_test(open) {
                continue;
            }
            find_nested_locks(toks, (open, close), rel_path, findings);
        }
    }
}

/// Local names that denote `std::collections::HashMap` / `HashSet`
/// (imports and aliases), always including the literal names themselves —
/// fully-qualified mentions keep the bare ident in the token stream.
pub(crate) fn hash_type_names(uses: &UseMap) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    names.insert("HashMap".to_string());
    names.insert("HashSet".to_string());
    for target in ["HashMap", "HashSet"] {
        for alias in ["Map", "Set", "Index", "Buckets", "Cache", "Lookup"] {
            if uses.names_type(alias, target, &["std::collections", "collections"]) {
                names.insert(alias.to_string());
            }
        }
    }
    names
}

/// True when the *outer* type in `range` is a hash collection: the last
/// ident before the first `<` (path segments allowed, references skipped).
/// `Vec<HashMap<..>>` is ordered at the iteration boundary and must not
/// match; `&HashMap<..>` and `std::collections::HashMap<..>` must.
fn outer_is_hash(toks: &[Tok], range: (usize, usize), names: &BTreeSet<String>) -> bool {
    let mut last: Option<&str> = None;
    for t in &toks[range.0..range.1.min(toks.len())] {
        if t.is_punct('<') {
            break;
        }
        if let Some(w) = t.ident() {
            last = Some(w);
        }
    }
    last.is_some_and(|w| names.contains(w))
}

/// Struct fields (file-wide) whose declared type is a hash collection.
pub(crate) fn hash_fields(
    toks: &[Tok],
    items: &[Item],
    names: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    collect_hash_fields(toks, items, names, &mut fields);
    fields
}

fn collect_hash_fields(
    toks: &[Tok],
    items: &[Item],
    names: &BTreeSet<String>,
    fields: &mut BTreeSet<String>,
) {
    for item in items {
        if matches!(item.kind, ItemKind::Struct | ItemKind::Union) {
            if let Some((open, close)) = item.body {
                // Fields: `name : Type ,` split at depth-0 commas.
                let mut i = open + 1;
                while i < close {
                    // Skip field attributes and visibility.
                    while i < close && (toks[i].is_punct('#') || toks[i].is_ident("pub")) {
                        if toks[i].is_punct('#') {
                            match seek_close(toks, i + 1, close, '[', ']') {
                                Some(e) => i = e + 1,
                                None => return,
                            }
                        } else {
                            i += 1;
                            if i < close && toks[i].is_punct('(') {
                                match seek_close(toks, i, close, '(', ')') {
                                    Some(e) => i = e + 1,
                                    None => return,
                                }
                            }
                        }
                    }
                    let Some(name) = toks.get(i).and_then(Tok::ident) else {
                        i += 1;
                        continue;
                    };
                    if toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                        let ty_start = i + 2;
                        let ty_end = field_end(toks, ty_start, close);
                        if outer_is_hash(toks, (ty_start, ty_end), names) {
                            fields.insert(name.to_string());
                        }
                        i = ty_end + 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        collect_hash_fields(toks, &item.children, names, fields);
    }
}

/// Index of the depth-0 `,` (or `close`) ending a struct field's type.
fn field_end(toks: &[Tok], start: usize, close: usize) -> usize {
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    for (k, t) in toks.iter().enumerate().take(close).skip(start) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(',') && angle <= 0 && paren == 0 && bracket == 0 {
            return k;
        }
    }
    close
}

pub(crate) fn seek_close(
    toks: &[Tok],
    open_idx: usize,
    end: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(end).skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Identifiers in one function known to hold a hash collection: annotated
/// parameters, `let` bindings with a hash type annotation, and `let`
/// bindings initialized from `HashName::..`.
pub(crate) fn hash_symbols(toks: &[Tok], f: &Item, names: &BTreeSet<String>) -> BTreeSet<String> {
    let mut symbols = BTreeSet::new();
    let (sig_start, sig_end) = f.sig;

    // Parameters: inside the signature's top-level parens.
    if let Some(open) = (sig_start..sig_end).find(|&k| toks[k].is_punct('(')) {
        if let Some(close) = seek_close(toks, open, sig_end, '(', ')') {
            let mut i = open + 1;
            while i < close {
                let Some(name) = toks.get(i).and_then(Tok::ident) else {
                    i += 1;
                    continue;
                };
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                    let ty_start = i + 2;
                    let ty_end = field_end(toks, ty_start, close);
                    if outer_is_hash(toks, (ty_start, ty_end), names) {
                        symbols.insert(name.to_string());
                    }
                    i = ty_end + 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    // `let [mut] name` bindings in the body.
    if let Some((open, close)) = f.body {
        let mut i = open;
        while i < close {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Tok::ident) else {
                i = j + 1;
                continue;
            };
            j += 1;
            let stmt_end = statement_end(toks, j, close);
            let hashy = if toks.get(j).is_some_and(|t| t.is_punct(':')) {
                // Annotated: type runs to the `=` (or statement end).
                let ty_end = (j + 1..stmt_end)
                    .find(|&k| toks[k].is_punct('='))
                    .unwrap_or(stmt_end);
                outer_is_hash(toks, (j + 1, ty_end), names)
            } else if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                // Unannotated: initializer names the type (`HashMap::new()`).
                (j + 1..stmt_end).any(|k| {
                    toks[k].ident().is_some_and(|w| names.contains(w))
                        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                })
            } else {
                false
            };
            if hashy {
                symbols.insert(name.to_string());
            }
            i = stmt_end + 1;
        }
    }
    symbols
}

/// Index of the token ending the statement starting at/inside `start`: the
/// next `;` at brace-relative depth 0, the close of a depth-0 brace block
/// (`if let .. { .. }` ends with its block), or the end of the enclosing
/// block, bounded by `close`.
pub(crate) fn statement_end(toks: &[Tok], start: usize, close: usize) -> usize {
    let mut brace = 0i64;
    for (k, t) in toks.iter().enumerate().take(close).skip(start) {
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            if brace == 0 {
                return k;
            }
            brace -= 1;
            if brace == 0 {
                return k;
            }
        } else if t.is_punct(';') && brace == 0 {
            return k;
        }
    }
    close
}

/// Scans one fn body for unordered-iteration sites.
fn find_unordered_iterations(
    toks: &[Tok],
    (open, close): (usize, usize),
    symbols: &BTreeSet<String>,
    fields: &BTreeSet<String>,
    rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let is_hash_receiver = |idx: usize| -> bool {
        // `sym.iter()` — receiver ident directly before the dot.
        let Some(word) = toks.get(idx).and_then(Tok::ident) else {
            return false;
        };
        if symbols.contains(word)
            && !toks
                .get(idx.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
        {
            return true;
        }
        // `self.field.iter()` / `x.field.iter()` — field access.
        fields.contains(word) && idx >= 1 && toks[idx - 1].is_punct('.')
    };

    let mut i = open;
    while i <= close {
        let t = &toks[i];
        // Method form: `<recv> . iter ( )`.
        if let Some(word) = t.ident() {
            if ITER_METHODS.contains(&word)
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && is_hash_receiver(i - 2)
            {
                if let Some(call_close) = seek_close(toks, i + 1, close + 1, '(', ')') {
                    if !chain_restores_order(toks, call_close, close) {
                        findings.push(Finding::new(
                            NO_UNORDERED_ITERATION,
                            rel_path,
                            t.line,
                            format!(
                                "`.{word}()` on a HashMap/HashSet iterates in hasher order, which \
                                 can reach numeric accumulation or serialized output \
                                 (DESIGN.md §8); use a BTreeMap/BTreeSet or sort before consuming"
                            ),
                        ));
                    }
                    i = call_close + 1;
                    continue;
                }
            }
            // Loop form: `for <pat> in [&[mut]] <recv> {`.
            if word == "for" {
                if let Some(hit_line) = for_loop_over_hash(toks, i, close, symbols, fields) {
                    findings.push(Finding::new(
                        NO_UNORDERED_ITERATION,
                        rel_path,
                        hit_line,
                        "`for` over a HashMap/HashSet visits entries in hasher order, which can \
                         reach numeric accumulation or serialized output (DESIGN.md §8); use a \
                         BTreeMap/BTreeSet or collect-and-sort first",
                    ));
                }
            }
        }
        i += 1;
    }
}

/// If the `for` at `for_idx` loops directly over a hash symbol/field,
/// returns the line to report.
pub(crate) fn for_loop_over_hash(
    toks: &[Tok],
    for_idx: usize,
    close: usize,
    symbols: &BTreeSet<String>,
    fields: &BTreeSet<String>,
) -> Option<u32> {
    // Find the `in` of this `for` before its body `{` (patterns never
    // contain `in`; parens in tuple patterns are fine to scan over).
    let mut j = for_idx + 1;
    while j <= close && !toks[j].is_ident("in") {
        if toks[j].is_punct('{') {
            return None;
        }
        j += 1;
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    // Strip `&`, `&mut`.
    while k <= close && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
        k += 1;
    }
    let root = toks.get(k).and_then(Tok::ident)?;
    let line = toks[k].line;
    if symbols.contains(root) {
        // `for x in map` / `for x in &map` — and not `map.something_safe()`:
        // a chained call is handled (and possibly exonerated) by the
        // method-form scan, so only flag bare receivers here.
        let next = toks.get(k + 1);
        if next.is_none_or(|t| t.is_punct('{')) {
            return Some(line);
        }
        return None;
    }
    if root == "self" {
        // `for x in &self.field {`
        if toks.get(k + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(field) = toks.get(k + 2).and_then(Tok::ident) {
                if fields.contains(field) && toks.get(k + 3).is_some_and(|t| t.is_punct('{')) {
                    return Some(line);
                }
            }
        }
    }
    None
}

/// Walks the method chain after a closing paren; true when the chain (or
/// the statement it feeds) restores a deterministic order: an explicit
/// sort, an order-insensitive terminal, or a collect into an ordered
/// collection that is sorted afterwards.
pub(crate) fn chain_restores_order(toks: &[Tok], mut call_close: usize, body_close: usize) -> bool {
    let mut last_method: Option<&str> = None;
    let mut collected_ordered = false;
    loop {
        let Some(dot) = toks.get(call_close + 1) else {
            break;
        };
        if !dot.is_punct('.') {
            break;
        }
        let Some(name) = toks.get(call_close + 2).and_then(Tok::ident) else {
            break;
        };
        if SORT_METHODS.contains(&name) {
            return true;
        }
        let mut next = call_close + 3;
        // Optional turbofish: `::<BTreeMap<_, _>>`.
        if toks.get(next).is_some_and(|t| t.is_punct(':'))
            && toks.get(next + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(next + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut angle = 0i64;
            let mut k = next + 2;
            while k <= body_close {
                if toks[k].is_punct('<') {
                    angle += 1;
                } else if toks[k].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                if name == "collect"
                    && toks[k]
                        .ident()
                        .is_some_and(|w| w == "BTreeMap" || w == "BTreeSet")
                {
                    return true;
                }
                if name == "collect" && toks[k].ident().is_some_and(|w| w == "Vec") {
                    collected_ordered = true;
                }
                k += 1;
            }
            next = k + 1;
        }
        if toks.get(next).is_some_and(|t| t.is_punct('(')) {
            match seek_close(toks, next, body_close + 1, '(', ')') {
                Some(c) => call_close = c,
                None => break,
            }
        } else {
            call_close = next - 1;
        }
        last_method = Some(name);
    }
    if last_method.is_some_and(|m| ORDER_INSENSITIVE_TERMINALS.contains(&m)) {
        return true;
    }
    // `let [mut] v = <chain>;` (or `let v: BTree.. = <chain>;`): a
    // following `v.sort..()` in the same body exonerates — the canonical
    // collect-then-sort conversion. A collect into a BTree via the let
    // annotation also restores order.
    let stmt_end = statement_end(toks, call_close, body_close);
    if let Some((binding, annotated_ordered)) = let_binding_before(toks, call_close) {
        if annotated_ordered {
            return true;
        }
        if last_method == Some("collect") || collected_ordered {
            let mut k = stmt_end;
            while k + 2 <= body_close {
                if toks[k].is_ident(&binding)
                    && toks[k + 1].is_punct('.')
                    && toks
                        .get(k + 2)
                        .and_then(Tok::ident)
                        .is_some_and(|w| SORT_METHODS.contains(&w))
                {
                    return true;
                }
                k += 1;
            }
        }
    }
    false
}

/// Walks backwards from a chain position to the start of its statement;
/// returns the `let` binding name and whether its type annotation names an
/// ordered collection.
fn let_binding_before(toks: &[Tok], from: usize) -> Option<(String, bool)> {
    let mut k = from;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
    }
    let mut j = k + 1;
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    j += 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j).and_then(Tok::ident)?.to_string();
    let mut annotated_ordered = false;
    if toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
        let mut m = j + 2;
        while m < from && !toks[m].is_punct('=') {
            if toks[m]
                .ident()
                .is_some_and(|w| ORDERED_COLLECTIONS[..2].contains(&w))
            {
                annotated_ordered = true;
            }
            m += 1;
        }
    }
    Some((name, annotated_ordered))
}

/// Ambient-authority tokens: `env::var` / `env::var_os`, `Instant::now`,
/// `SystemTime::now`, plus bare `var(..)` when `use std::env::var` is in
/// scope.
fn find_ambient_authority(
    toks: &[Tok],
    uses: &UseMap,
    rel_path: &str,
    in_test: &impl Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let bare_var = uses.resolve("var") == Some("std::env::var")
        || uses.resolve("var_os") == Some("std::env::var_os");
    for i in 0..toks.len() {
        let Some(word) = toks[i].ident() else {
            continue;
        };
        let qualified = |head: &str, tail: &str| -> bool {
            // Call form only (`env::var(..)`) — a `use std::env::var;`
            // declaration is matched at the call site instead.
            word == head
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(tail))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        };
        let hit = if qualified("env", "var") || qualified("env", "var_os") {
            Some("std::env::var")
        } else if qualified("Instant", "now") {
            Some("Instant::now")
        } else if qualified("SystemTime", "now") {
            Some("SystemTime::now")
        } else if bare_var
            && (word == "var" || word == "var_os")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.') || t.is_punct(':'))
        {
            Some("std::env::var")
        } else {
            None
        };
        if let Some(what) = hit {
            if !in_test(i) {
                findings.push(Finding::new(
                    NO_AMBIENT_AUTHORITY,
                    rel_path,
                    toks[i].line,
                    format!(
                        "`{what}` reads ambient process state inside a numeric path; route \
                         environment knobs through `cs_linalg::config` (designated config/bench \
                         modules are exempt)"
                    ),
                ));
            }
        }
    }
}

/// A `Mutex`/`RwLock` guard acquisition inside one fn body, with the token
/// range over which the guard may still be live.
#[derive(Debug)]
struct Acquisition {
    idx: usize,
    line: u32,
    live_to: usize,
}

/// Scans one fn body for overlapping guard lifetimes.
///
/// Liveness is approximated per DESIGN.md §7: a guard bound by a plain
/// `let g = x.lock()…;` (chain ending at the lock or a following
/// `unwrap`/`expect`) lives to the end of the enclosing block; a guard
/// used as a temporary inside a larger expression lives to the end of its
/// statement (including an attached block — `if let` conditions keep
/// their temporaries alive through the body).
fn find_nested_locks(
    toks: &[Tok],
    (open, close): (usize, usize),
    rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        let is_acq = t
            .ident()
            .is_some_and(|w| matches!(w, "lock" | "read" | "write"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_acq {
            i += 1;
            continue;
        }
        let Some(call_close) = seek_close(toks, i + 1, close, '(', ')') else {
            break;
        };
        // Skip one `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)` —
        // still the same guard value.
        let mut chain_end = call_close;
        if toks.get(chain_end + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(next) = toks.get(chain_end + 2).and_then(Tok::ident) {
                if matches!(next, "unwrap" | "expect" | "unwrap_or_else") {
                    if let Some(c) = seek_close(toks, chain_end + 3, close, '(', ')') {
                        chain_end = c;
                    }
                }
            }
        }
        let guard_bound = !toks.get(chain_end + 1).is_some_and(|t| t.is_punct('.'))
            && let_binding_before(toks, i).is_some();
        let live_to = if guard_bound {
            enclosing_block_end(toks, i, close)
        } else {
            statement_end(toks, chain_end, close)
        };
        acquisitions.push(Acquisition {
            idx: i,
            line: t.line,
            live_to,
        });
        i += 1;
    }
    for (a, b) in acquisitions
        .iter()
        .enumerate()
        .flat_map(|(n, a)| acquisitions[n + 1..].iter().map(move |b| (a, b)))
    {
        if b.idx <= a.live_to {
            findings.push(Finding::new(
                LOCK_DISCIPLINE,
                rel_path,
                b.line,
                format!(
                    "second lock acquired while the guard taken at line {} may still be live; \
                     nested Mutex/RwLock acquisition risks deadlock — drop the first guard \
                     (or restructure) before taking another",
                    a.line
                ),
            ));
        }
    }
}

/// Index of the `}` closing the innermost block containing `idx`.
fn enclosing_block_end(toks: &[Tok], idx: usize, close: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(close + 1).skip(idx) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        }
    }
    close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_rust_source;

    const DET: &str = "crates/cs-repro/src/fake.rs";
    const POOL: &str = "crates/cs-core/src/pool.rs";

    fn fired(src: &str, path: &str) -> Vec<&'static str> {
        lint_rust_source(src, path)
            .into_iter()
            .filter(|f| !f.waived)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hashmap_for_loop_fires_in_det_scope() {
        let src = "use std::collections::HashMap;\n\
                   fn emit(m: &HashMap<String, f64>) -> f64 {\n\
                       let mut total = 0.0;\n\
                       for (_, v) in m { total += v; }\n\
                       total\n\
                   }";
        assert_eq!(fired(src, DET), vec![NO_UNORDERED_ITERATION]);
        // Same code outside the deterministic-pipeline crates: clean.
        assert!(fired(src, "crates/cs-nn/src/fake.rs").is_empty());
        // Test code is exempt.
        let test_src = format!("#[cfg(test)]\nmod t {{ {src} }}");
        assert!(fired(&test_src, DET).is_empty());
    }

    #[test]
    fn hashmap_iter_sum_fires() {
        let src = "use std::collections::HashMap;\n\
                   fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }";
        assert_eq!(fired(src, DET), vec![NO_UNORDERED_ITERATION]);
    }

    #[test]
    fn order_insensitive_terminals_are_clean() {
        let src = "use std::collections::HashMap;\n\
                   fn n(m: &HashMap<u32, f64>) -> usize { m.keys().count() }\n\
                   fn has(m: &HashMap<u32, f64>) -> bool { m.values().any(|v| *v > 0.0) }";
        assert!(fired(src, DET).is_empty());
    }

    #[test]
    fn explicit_sort_in_chain_is_clean() {
        let src = "use std::collections::HashSet;\n\
                   fn ordered(s: &HashSet<String>) -> Vec<String> {\n\
                       let mut v: Vec<String> = s.iter().cloned().collect();\n\
                       v.sort();\n\
                       v\n\
                   }";
        assert!(fired(src, DET).is_empty());
    }

    #[test]
    fn collect_into_btree_is_clean() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn ordered(m: &HashMap<String, f64>) -> BTreeMap<String, f64> {\n\
                       m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<String, f64>>()\n\
                   }";
        assert!(fired(src, DET).is_empty());
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn ordered(m: &HashMap<String, f64>) -> BTreeMap<String, f64> {\n\
                       let out: BTreeMap<String, f64> = m.iter().map(|(k, v)| (k.clone(), *v)).collect();\n\
                       out\n\
                   }";
        assert!(fired(src, DET).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "use std::collections::BTreeMap;\n\
                   fn total(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }";
        assert!(fired(src, DET).is_empty());
    }

    #[test]
    fn let_binding_from_new_is_tracked() {
        let src = "use std::collections::HashMap;\n\
                   fn f() -> f64 {\n\
                       let mut h: HashMap<u32, f64> = HashMap::new();\n\
                       h.insert(1, 2.0);\n\
                       let mut acc = 0.0;\n\
                       for (_, v) in &h { acc += v; }\n\
                       acc\n\
                   }";
        assert_eq!(fired(src, DET), vec![NO_UNORDERED_ITERATION]);
    }

    #[test]
    fn struct_field_iteration_fires() {
        let src = "use std::collections::HashMap;\n\
                   pub struct Hist { counts: HashMap<String, usize> }\n\
                   impl Hist {\n\
                       pub fn emit(&self) -> String {\n\
                           let mut out = String::new();\n\
                           for (k, v) in &self.counts { out.push_str(k); }\n\
                           out\n\
                       }\n\
                   }";
        assert_eq!(fired(src, DET), vec![NO_UNORDERED_ITERATION]);
    }

    #[test]
    fn unordered_iteration_is_waivable() {
        let src = "use std::collections::HashMap;\n\
                   fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                       // cs-lint: allow(no-unordered-iteration) -- commutative integer fold\n\
                       m.values().sum()\n\
                   }";
        assert!(fired(src, DET).is_empty());
    }

    #[test]
    fn ambient_authority_fires_outside_config() {
        let src = "fn threads() -> usize {\n\
                       std::env::var(\"CS_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n\
                   }";
        assert_eq!(
            fired(src, "crates/cs-core/src/fake.rs"),
            vec![NO_AMBIENT_AUTHORITY]
        );
        // Designated config module: clean.
        assert!(fired(src, "crates/cs-linalg/src/config.rs").is_empty());
        // Bench crate: clean.
        assert!(fired(src, "crates/cs-bench/src/fake.rs").is_empty());
        // Test code: clean.
        assert!(fired(src, "crates/cs-core/tests/fake.rs").is_empty());
    }

    #[test]
    fn clock_reads_fire() {
        for call in ["std::time::Instant::now()", "SystemTime::now()"] {
            let src = format!("fn f() {{ let _ = {call}; }}");
            assert_eq!(
                fired(&src, "crates/cs-match/src/fake.rs"),
                vec![NO_AMBIENT_AUTHORITY],
                "{call}"
            );
        }
    }

    #[test]
    fn bare_var_fires_only_with_env_import() {
        let src = "use std::env::var;\nfn f() -> Option<String> { var(\"X\").ok() }";
        assert_eq!(
            fired(src, "crates/cs-core/src/fake.rs"),
            vec![NO_AMBIENT_AUTHORITY]
        );
        // A local fn named `var` without the import: clean.
        let src = "fn var(x: u8) -> u8 { x }\nfn f() -> u8 { var(3) }";
        assert!(fired(src, "crates/cs-core/src/fake.rs").is_empty());
    }

    #[test]
    fn nested_let_bound_guards_fire() {
        let src = "use std::sync::Mutex;\n\
                   fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n\
                       let ga = a.lock().expect(\"a\");\n\
                       let gb = b.lock().expect(\"b\");\n\
                       *ga + *gb\n\
                   }";
        assert_eq!(fired(src, POOL), vec![LOCK_DISCIPLINE]);
        // Outside the lock-discipline scope: clean.
        assert!(fired(src, "crates/cs-match/src/fake.rs").is_empty());
    }

    #[test]
    fn sequential_temporaries_are_clean() {
        let src = "use std::sync::RwLock;\n\
                   use std::collections::HashMap;\n\
                   struct C { m: RwLock<HashMap<String, f64>> }\n\
                   impl C {\n\
                       fn get_or_insert(&self, k: &str) -> f64 {\n\
                           if let Some(v) = self.m.read().expect(\"poisoned\").get(k) { return *v; }\n\
                           self.m.write().expect(\"poisoned\").insert(k.to_string(), 1.0);\n\
                           1.0\n\
                       }\n\
                   }";
        assert!(fired(src, "crates/cs-embed/src/fake.rs").is_empty());
    }

    #[test]
    fn write_inside_read_guard_statement_fires() {
        let src = "use std::sync::RwLock;\n\
                   use std::collections::HashMap;\n\
                   struct C { m: RwLock<HashMap<String, f64>> }\n\
                   impl C {\n\
                       fn bad(&self, k: &str) {\n\
                           if let Some(_) = self.m.read().expect(\"p\").get(k) {\n\
                               self.m.write().expect(\"p\").insert(k.to_string(), 1.0);\n\
                           }\n\
                       }\n\
                   }";
        assert_eq!(
            fired(src, "crates/cs-embed/src/fake.rs"),
            vec![LOCK_DISCIPLINE]
        );
    }

    #[test]
    fn lock_discipline_is_waivable() {
        let src = "use std::sync::Mutex;\n\
                   fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n\
                       let ga = a.lock().expect(\"a\");\n\
                       // cs-lint: allow(lock-discipline) -- global order: a before b everywhere\n\
                       let gb = b.lock().expect(\"b\");\n\
                       *ga + *gb\n\
                   }";
        assert!(fired(src, POOL).is_empty());
    }
}
