//! Item-level analysis: a brace-tree parser over the [`crate::lexer`]
//! token stream.
//!
//! The flat token rules of the original linter cannot answer questions
//! like "is this `.lock()` still live when that `.write()` runs?" or
//! "does this identifier name a `HashMap`?". This module recovers just
//! enough structure for scoped, intraprocedural rules (DESIGN.md §7):
//!
//! - **items** — `fn` / `impl` / `mod` / `use` / `struct` / `enum` /
//!   `trait` / `const` / `static` / `type`, each with its signature token
//!   range, optional brace-body range, and nesting (mods, impl blocks),
//! - **per-function bodies** — the token range a rule should treat as one
//!   analysis scope,
//! - **a lite use-resolution map** — local name → full `::` path, so a
//!   rule can tell `use std::collections::HashMap` apart from a local
//!   `mod HashMap` shadow without type inference.
//!
//! The parser is deliberately *lite*: it never errors (unparseable
//! stretches are skipped token by token) and it does not descend into
//! function bodies looking for nested items — the rules that consume it
//! treat a body as a flat region.

use crate::lexer::Tok;
use std::collections::BTreeMap;

/// What kind of item a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
    Mod,
    Use,
    Const,
    Static,
    TypeAlias,
    MacroDef,
    ExternCrate,
}

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ..)` — not public API surface.
    Scoped,
    /// No visibility qualifier.
    Private,
}

/// One parsed item. Token indices refer to the stream the item was parsed
/// from.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    pub vis: Vis,
    /// Declared name (`fn name`, `mod name`, ..); empty for `impl` and
    /// `use` items.
    pub name: String,
    /// 1-based source line of the item keyword.
    pub line: u32,
    /// `[start, end)` token range of the header/signature: from the first
    /// token after attributes up to (exclusive) the body `{` or the
    /// terminating `;`.
    pub sig: (usize, usize),
    /// `[open, close]` token range of the brace body, inclusive of both
    /// braces, when the item has one.
    pub body: Option<(usize, usize)>,
    /// Nested items: a `mod`'s contents, an `impl`/`trait` block's
    /// associated items. Empty for everything else.
    pub children: Vec<Item>,
}

impl Item {
    /// True when this item's brace body covers token index `idx`.
    pub fn body_contains(&self, idx: usize) -> bool {
        self.body.is_some_and(|(s, e)| idx >= s && idx <= e)
    }
}

/// Item keywords that carry a brace body (scan stops at `{`); the rest
/// terminate at `;` (scan tracks nesting so `[u8; 4]` or `= Foo { .. }`
/// never end an item early).
fn has_brace_body(kind: ItemKind) -> bool {
    matches!(
        kind,
        ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Union
            | ItemKind::Trait
            | ItemKind::Impl
            | ItemKind::Mod
            | ItemKind::MacroDef
    )
}

/// Parses the whole token stream as a sequence of items (a file body).
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    parse_block(toks, 0, toks.len())
}

/// Parses items in `toks[start..end)` (a file body, `mod` body, or
/// `impl`/`trait` block).
fn parse_block(toks: &[Tok], start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        // Attributes: `#[..]` and inner `#![..]`.
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < end && toks[j].is_punct('!') {
                j += 1;
            }
            if j < end && toks[j].is_punct('[') {
                match matching_delim(toks, j, end, '[', ']') {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => break,
                }
            }
            i += 1;
            continue;
        }
        match parse_item(toks, i, end) {
            Some((item, next)) => {
                i = next;
                items.push(item);
            }
            None => i += 1,
        }
    }
    items
}

/// Attempts to parse one item starting at `i` (visibility or item keyword
/// position). Returns the item and the index just past it.
fn parse_item(toks: &[Tok], i: usize, end: usize) -> Option<(Item, usize)> {
    let sig_start = i;
    let mut j = i;

    // Visibility: `pub`, `pub(crate)`, `pub(super)`, `pub(in path)`.
    let mut vis = Vis::Private;
    if toks.get(j).is_some_and(|t| t.is_ident("pub")) {
        vis = Vis::Pub;
        j += 1;
        if j < end && toks[j].is_punct('(') {
            let close = matching_delim(toks, j, end, '(', ')')?;
            vis = Vis::Scoped;
            j = close + 1;
        }
    }

    // Qualifiers before the item keyword. `const`/`extern` double as item
    // keywords, so peek before treating them as qualifiers.
    loop {
        let word = toks.get(j).and_then(Tok::ident)?;
        match word {
            "default" | "async" | "unsafe" => j += 1,
            "const" if toks.get(j + 1).is_some_and(|t| t.is_ident("fn")) => j += 1,
            "extern" if next_is_fn_after_abi(toks, j, end) => {
                j += 1;
                // Optional ABI string literal.
                if toks
                    .get(j)
                    .is_some_and(|t| t.ident().is_none() && !t.is_punct('{'))
                {
                    j += 1;
                }
            }
            _ => break,
        }
    }

    let kw = toks.get(j).and_then(Tok::ident)?;
    let line = toks[j].line;
    let (kind, named) = match kw {
        "fn" => (ItemKind::Fn, true),
        "struct" => (ItemKind::Struct, true),
        "enum" => (ItemKind::Enum, true),
        "union" => (ItemKind::Union, true),
        "trait" => (ItemKind::Trait, true),
        "impl" => (ItemKind::Impl, false),
        "mod" => (ItemKind::Mod, true),
        "use" => (ItemKind::Use, false),
        "const" => (ItemKind::Const, true),
        "static" => (ItemKind::Static, true),
        "type" => (ItemKind::TypeAlias, true),
        "macro_rules" => (ItemKind::MacroDef, true),
        "extern" if toks.get(j + 1).is_some_and(|t| t.is_ident("crate")) => {
            (ItemKind::ExternCrate, false)
        }
        _ => return None,
    };
    j += 1;

    let name = if named {
        // `const _: () = ..` and `static mut X` wrinkles.
        if kind == ItemKind::Static && toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if kind == ItemKind::MacroDef && toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        match toks.get(j).and_then(Tok::ident) {
            Some(n) => {
                j += 1;
                n.to_string()
            }
            None if kind == ItemKind::Const && toks.get(j).is_some_and(|t| t.is_punct('_')) => {
                j += 1;
                "_".to_string()
            }
            None => String::new(),
        }
    } else {
        String::new()
    };

    // Scan to the item terminator: the body `{` at nesting depth 0 for
    // brace-bodied kinds, otherwise the `;` at nesting depth 0.
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut brace = 0i64;
    let want_brace = has_brace_body(kind);
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') {
            if want_brace && paren == 0 && bracket == 0 && brace == 0 {
                // Body found.
                let close = matching_delim(toks, j, end, '{', '}')?;
                let children = match kind {
                    ItemKind::Mod | ItemKind::Impl | ItemKind::Trait => {
                        parse_block(toks, j + 1, close)
                    }
                    _ => Vec::new(),
                };
                return Some((
                    Item {
                        kind,
                        vis,
                        name,
                        line,
                        sig: (sig_start, j),
                        body: Some((j, close)),
                        children,
                    },
                    close + 1,
                ));
            }
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                // End of the enclosing block: a bodyless item ran out.
                break;
            }
        } else if t.is_punct(';') && paren == 0 && bracket == 0 && brace == 0 {
            if want_brace {
                // `fn f();` (trait method), `mod name;`, `struct Unit;`.
                return Some((
                    Item {
                        kind,
                        vis,
                        name,
                        line,
                        sig: (sig_start, j),
                        body: None,
                        children: Vec::new(),
                    },
                    j + 1,
                ));
            }
            return Some((
                Item {
                    kind,
                    vis,
                    name,
                    line,
                    sig: (sig_start, j),
                    body: None,
                    children: Vec::new(),
                },
                j + 1,
            ));
        }
        j += 1;
    }
    None
}

/// After an `extern` at `j`, is the next meaningful token (skipping one
/// optional ABI literal) `fn`? Distinguishes `extern "C" fn` from
/// `extern crate`.
fn next_is_fn_after_abi(toks: &[Tok], j: usize, end: usize) -> bool {
    let mut k = j + 1;
    if k < end && toks[k].ident().is_none() && !toks[k].is_punct('{') {
        k += 1; // ABI string literal
    }
    toks.get(k).is_some_and(|t| t.is_ident("fn"))
}

/// Index of the token closing the delimiter opened at `open_idx`, bounded
/// by `end`.
fn matching_delim(
    toks: &[Tok],
    open_idx: usize,
    end: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(end).skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Visits every `fn` item in the tree (including methods inside `impl` /
/// `trait` blocks and fns in inline mods), depth-first.
pub fn for_each_fn<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.kind == ItemKind::Fn {
            visit(item);
        }
        for_each_fn(&item.children, visit);
    }
}

/// The lite use-resolution map: local name → full `::`-joined path.
///
/// Built from the file's `use` items (groups, `as` aliases, nested
/// groups); glob imports are ignored. `resolve` answers "what path does
/// this identifier name here" for rules that key on well-known types
/// (`HashMap`, `Instant`) without chasing cross-crate semantics.
#[derive(Debug, Default)]
pub struct UseMap {
    map: BTreeMap<String, String>,
}

impl UseMap {
    /// Builds the map from a parsed item tree (recurses into inline mods —
    /// good enough for file-scoped rules; path shadowing across mods is
    /// out of scope for a lite resolver).
    pub fn build(toks: &[Tok], items: &[Item]) -> Self {
        let mut map = BTreeMap::new();
        collect_uses(toks, items, &mut map);
        Self { map }
    }

    /// Full path an identifier resolves to via `use`, if any.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// True when `name` resolves to a path whose last segment is `target`
    /// under any of the given path prefixes (e.g. is `Map` really
    /// `std::collections::HashMap`?).
    pub fn names_type(&self, name: &str, target: &str, prefixes: &[&str]) -> bool {
        match self.resolve(name) {
            Some(path) => {
                path.ends_with(&format!("::{target}"))
                    && prefixes.iter().any(|p| path.starts_with(p))
            }
            None => false,
        }
    }

    /// Number of resolved names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no `use` item contributed an entry.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn collect_uses(toks: &[Tok], items: &[Item], map: &mut BTreeMap<String, String>) {
    for item in items {
        if item.kind == ItemKind::Use {
            let (start, end) = item.sig;
            // Skip visibility and the `use` keyword itself.
            let mut k = start;
            while k < end && !toks[k].is_ident("use") {
                k += 1;
            }
            if k < end {
                parse_use_tree(toks, k + 1, end, &mut Vec::new(), map);
            }
        }
        collect_uses(toks, &item.children, map);
    }
}

/// Recursive descent over one use-tree: `a::b::{c, d as e, f::g}`.
/// `prefix` carries the path segments accumulated so far.
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    map: &mut BTreeMap<String, String>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while i < end {
        let t = &toks[i];
        if let Some(word) = t.ident() {
            if word == "as" {
                // Alias: the *next* ident names the full path so far.
                if let Some(alias) = toks.get(i + 1).and_then(Tok::ident) {
                    let mut path = prefix.clone();
                    if let Some(seg) = last.take() {
                        path.push(seg);
                    }
                    map.insert(alias.to_string(), path.join("::"));
                    i += 2;
                    continue;
                }
            }
            last = Some(word.to_string());
            i += 1;
        } else if t.is_punct(':') {
            // `::` — the pending segment becomes part of the prefix.
            if toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                i += 2;
            } else {
                i += 1;
            }
        } else if t.is_punct('{') {
            i = parse_use_tree(toks, i + 1, end, prefix, map);
        } else if t.is_punct(',') {
            if let Some(seg) = last.take() {
                let mut path = prefix.clone();
                path.push(seg.clone());
                map.insert(seg, path.join("::"));
            }
            prefix.truncate(depth_at_entry);
            i += 1;
        } else if t.is_punct('}') || t.is_punct(';') {
            break;
        } else {
            // `*` glob or stray punctuation: drop the pending segment.
            last = None;
            i += 1;
        }
    }
    if let Some(seg) = last.take() {
        let mut path = prefix.clone();
        path.push(seg.clone());
        map.insert(seg, path.join("::"));
    }
    prefix.truncate(depth_at_entry);
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> (Vec<Tok>, Vec<Item>) {
        let toks = lex(src).tokens;
        let items = parse_items(&toks);
        (toks, items)
    }

    #[test]
    fn top_level_items_recovered() {
        let src = "
            use std::collections::HashMap;
            pub struct S { a: u8 }
            pub(crate) enum E { A, B(u8) }
            const N: usize = 4;
            pub fn f(x: u8) -> u8 { x + 1 }
            mod inner { pub fn g() {} }
        ";
        let (_, items) = items_of(src);
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Struct,
                ItemKind::Enum,
                ItemKind::Const,
                ItemKind::Fn,
                ItemKind::Mod,
            ]
        );
        assert_eq!(items[1].vis, Vis::Pub);
        assert_eq!(items[2].vis, Vis::Scoped);
        assert_eq!(items[3].vis, Vis::Private);
        assert_eq!(items[4].name, "f");
        assert!(items[4].body.is_some());
        assert_eq!(items[5].children.len(), 1);
        assert_eq!(items[5].children[0].name, "g");
    }

    #[test]
    fn impl_methods_are_children() {
        let src = "
            impl Foo {
                pub fn a(&self) -> u8 { 1 }
                fn b(&self) {}
            }
            impl Display for Foo {
                fn fmt(&self, f: &mut Formatter) -> fmt::Result { Ok(()) }
            }
        ";
        let (_, items) = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].name, "a");
        assert_eq!(items[0].children[0].vis, Vis::Pub);
        assert_eq!(items[1].children.len(), 1);
    }

    #[test]
    fn fn_body_ranges_are_exact() {
        let src = "fn f() { inner(); } fn g() {}";
        let (toks, items) = items_of(src);
        let (open, close) = items[0].body.unwrap();
        assert!(toks[open].is_punct('{') && toks[close].is_punct('}'));
        // `inner` sits inside f's body, `g` outside it.
        let inner_idx = toks.iter().position(|t| t.is_ident("inner")).unwrap();
        assert!(items[0].body_contains(inner_idx));
        let g_idx = toks.iter().position(|t| t.is_ident("g")).unwrap();
        assert!(!items[0].body_contains(g_idx));
    }

    #[test]
    fn const_with_struct_literal_value_does_not_split() {
        let src = "const C: Cfg = Cfg { a: 1, b: 2 }; fn after() {}";
        let (_, items) = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Const);
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn array_semicolons_do_not_terminate() {
        let src = "pub fn f(x: [u8; 4]) -> [f64; 2] { [0.0; 2] } fn g() {}";
        let (_, items) = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "f");
        assert!(items[0].body.is_some());
    }

    #[test]
    fn where_clauses_stay_in_signature() {
        let src = "pub fn run<T, F>(k: usize, work: F) -> Vec<T> where F: Fn(usize) -> T, T: Send { Vec::new() }";
        let (toks, items) = items_of(src);
        let (s, e) = items[0].sig;
        let sig_text: Vec<String> = toks[s..e].iter().map(Tok::text).collect();
        assert!(sig_text.contains(&"where".to_string()));
        assert!(!sig_text.contains(&"new".to_string()));
    }

    #[test]
    fn use_map_groups_and_aliases() {
        let src = "
            use std::collections::{HashMap, HashSet, BTreeMap as Tree};
            use std::sync::Mutex;
            use std::time::Instant;
            use crate::other::*;
        ";
        let (toks, items) = items_of(src);
        let m = UseMap::build(&toks, &items);
        assert_eq!(m.resolve("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(m.resolve("HashSet"), Some("std::collections::HashSet"));
        assert_eq!(m.resolve("Tree"), Some("std::collections::BTreeMap"));
        assert_eq!(m.resolve("Mutex"), Some("std::sync::Mutex"));
        assert_eq!(m.resolve("Instant"), Some("std::time::Instant"));
        assert!(m.names_type("HashMap", "HashMap", &["std::collections"]));
        assert!(!m.names_type("Tree", "HashMap", &["std::collections"]));
        assert_eq!(m.resolve("*"), None);
    }

    #[test]
    fn nested_use_groups() {
        let src = "use std::{collections::{HashMap, hash_map::Entry}, sync::{Arc, Mutex}};";
        let (toks, items) = items_of(src);
        let m = UseMap::build(&toks, &items);
        assert_eq!(m.resolve("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(
            m.resolve("Entry"),
            Some("std::collections::hash_map::Entry")
        );
        assert_eq!(m.resolve("Arc"), Some("std::sync::Arc"));
        assert_eq!(m.resolve("Mutex"), Some("std::sync::Mutex"));
    }

    #[test]
    fn trait_methods_without_bodies() {
        let src = "pub trait Scoper { fn assess(&self) -> u8; fn both(&self) -> u8 { 2 } }";
        let (_, items) = items_of(src);
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].body.is_none());
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn for_each_fn_visits_nested() {
        let src = "
            fn top() {}
            mod m { impl T { pub fn method(&self) {} } }
            pub trait Tr { fn sig(&self); }
        ";
        let (_, items) = items_of(src);
        let mut names = Vec::new();
        for_each_fn(&items, &mut |f| names.push(f.name.clone()));
        assert_eq!(names, vec!["top", "method", "sig"]);
    }

    #[test]
    fn attributes_are_skipped() {
        let src = "#![allow(dead_code)]\n#[derive(Debug, Clone)]\n#[repr(C)]\npub struct S;";
        let (_, items) = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[0].name, "S");
    }

    #[test]
    fn qualifier_combinations() {
        let src =
            "pub const fn c() {} pub async fn a() {} pub unsafe fn u() {} extern \"C\" fn e() {}";
        let (_, items) = items_of(src);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "u", "e"]);
        assert!(items.iter().all(|i| i.kind == ItemKind::Fn));
    }
}
