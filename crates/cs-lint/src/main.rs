//! CLI entry point: `cargo run -p cs-lint [-- --root DIR --report FILE]`.
//!
//! Prints `file:line: [rule] message` diagnostics for every unwaived
//! finding and exits nonzero when any unwaived **error** exists, so the
//! tier-1 gate (`scripts/verify.sh`) fails on a violation; advisory
//! warnings are printed and counted without flipping the exit code.
//! `--report` additionally writes the machine-readable JSON document with
//! per-rule counts and severities.
//!
//! `--api-check` verifies the public-API snapshots (`API.lock`) instead of
//! linting; `--api-write` regenerates them (`scripts/apilock.sh`).

use std::path::PathBuf;
use std::process::ExitCode;

use cs_lint::{api, find_workspace_root, lint_workspace};

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    quiet: bool,
    api_check: bool,
    api_write: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        report: None,
        quiet: false,
        api_check: false,
        api_write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--api-check" => args.api_check = true,
            "--api-write" => args.api_write = true,
            "--help" | "-h" => {
                println!(
                    "cs-lint: workspace static analysis (DESIGN.md §7)\n\n\
                     usage: cs-lint [--root DIR] [--report FILE.json] [--quiet]\n\
                            cs-lint --api-check [--root DIR]\n\
                            cs-lint --api-write [--root DIR]\n\n\
                     Exits 0 when the workspace is lint-clean (or the API\n\
                     snapshots match), 1 on any unwaived finding or API drift,\n\
                     2 on usage or I/O errors."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.api_check && args.api_write {
        return Err("--api-check and --api-write are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cs-lint: no Cargo.lock above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if args.api_write {
        return match api::write_locks(&root) {
            Ok(written) => {
                if !args.quiet {
                    for p in &written {
                        println!("cs-lint: wrote {}", p.display());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cs-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    if args.api_check {
        return match api::check_locks(&root) {
            Ok(drift) if drift.is_empty() => {
                if !args.quiet {
                    println!("cs-lint: API.lock snapshots match the public surface");
                }
                ExitCode::SUCCESS
            }
            Ok(drift) => {
                for d in &drift {
                    eprintln!("cs-lint: api drift: {d}");
                }
                eprintln!(
                    "cs-lint: {} unacknowledged API change(s); if intentional, run \
                     scripts/apilock.sh and commit the updated API.lock files",
                    drift.len()
                );
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("cs-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json().write_pretty()) {
            eprintln!("cs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unwaived: Vec<_> = report.unwaived().collect();
    if !args.quiet {
        for f in &unwaived {
            println!("{}", f.render());
        }
        let waived = report.findings.len() - unwaived.len();
        println!(
            "cs-lint: {} files scanned, {} error(s), {} warning(s), {} waived",
            report.files_scanned,
            report.errors(),
            report.warnings(),
            waived
        );
    }
    // The gate keys on errors only: advisory warnings are printed (and
    // land in the JSON report) without failing CI.
    if report.gate_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
