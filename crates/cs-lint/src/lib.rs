//! # cs-lint
//!
//! In-workspace static analysis for the collaborative-scoping workspace
//! (DESIGN.md §7). The hermetic dependency policy (§6) rules out clippy
//! plugins, dylint, or `syn`-based tooling, so this crate lints the
//! workspace with a hand-rolled lexer and a rule set tailored to the
//! codebase:
//!
//! - [`rules::NO_FLOAT_SORT_UNWRAP`] — no `partial_cmp(..).unwrap()` inside
//!   sort/extremum comparators (use `cs_linalg::total_cmp_f64`),
//! - [`rules::NO_UNWRAP_IN_LIB`] — no `.unwrap()` in cs-core / cs-linalg
//!   non-test library code,
//! - [`rules::PANIC_FREE_CORE`] — no `panic!`/`todo!`/`unimplemented!` in
//!   cs-core non-test code,
//! - [`rules::NO_UNSAFE`] — no `unsafe` anywhere,
//! - [`rules::HERMETIC_DEPS`] — no registry/git dependency in any manifest
//!   or in `Cargo.lock`.
//!
//! A violation is waived only by an inline
//! `// cs-lint: allow(<rule>) -- <justification>` pragma on the same line
//! or the line above. The binary exits nonzero on any unwaived finding;
//! `scripts/verify.sh` runs it as part of the tier-1 gate.

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

pub use manifest::{lint_cargo_lock, lint_cargo_toml};
pub use report::{Finding, LintReport};
pub use rules::lint_rust_source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories (relative to the workspace root) whose `.rs` files are
/// scanned. `crates/` covers each member's `src`, `tests`, `benches`, and
/// `examples` trees.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Lints the whole workspace rooted at `root`: every `.rs` file under the
/// scan roots, every `Cargo.toml`, and `Cargo.lock`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let mut rust_files = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    for dir in SCAN_ROOTS {
        collect_files(&root.join(dir), &mut rust_files, &mut manifests)?;
    }
    rust_files.sort();
    manifests.sort();
    manifests.dedup();

    for path in &rust_files {
        let text = fs::read_to_string(path)?;
        report
            .findings
            .extend(lint_rust_source(&text, &rel(root, path)));
        report.files_scanned += 1;
    }
    for path in &manifests {
        if !path.is_file() {
            continue;
        }
        let text = fs::read_to_string(path)?;
        report
            .findings
            .extend(lint_cargo_toml(&text, &rel(root, path)));
        report.files_scanned += 1;
    }
    let lock = root.join("Cargo.lock");
    if lock.is_file() {
        let text = fs::read_to_string(&lock)?;
        report
            .findings
            .extend(lint_cargo_lock(&text, &rel(root, &lock)));
        report.files_scanned += 1;
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursive walk collecting `.rs` files and `Cargo.toml` manifests,
/// skipping `target/` and hidden directories. Entries are visited in sorted
/// order so diagnostics are deterministic across filesystems.
fn collect_files(
    dir: &Path,
    rust_files: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, rust_files, manifests)?;
        } else if name.ends_with(".rs") {
            rust_files.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, `/`-separated path for diagnostics.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` to the first directory
/// holding a `Cargo.lock`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
