//! The `hermetic-deps` rule: mechanizes DESIGN.md §6.
//!
//! Two checks, both over the minimal slice of TOML this workspace actually
//! uses (a full TOML parser would be overkill and another thing to trust):
//!
//! - **`Cargo.lock`** must contain no `source = ..` entry: a path-only
//!   dependency graph never records a source, so the first registry or git
//!   crate to enter resolution shows up as one line here.
//! - **every `Cargo.toml`** dependency entry must stay inside the
//!   workspace: `{ path = ".." }`, `foo.workspace = true`, or
//!   `{ workspace = true }`. A bare version string, a `version`-only inline
//!   table, or a `git`/`registry` key is an external dependency.
//!
//! Waivers use the TOML comment form `# cs-lint: allow(hermetic-deps) -- why`
//! on the offending line or the line above.

use crate::lexer::parse_pragma;
use crate::report::Finding;
use crate::rules::HERMETIC_DEPS;

/// Lints a `Cargo.lock` file.
pub fn lint_cargo_lock(text: &str, rel_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut package = String::from("<unknown>");
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("name = ") {
            package = rest.trim_matches('"').to_string();
        }
        if line.starts_with("source = ") {
            findings.push(Finding::new(
                HERMETIC_DEPS,
                rel_path,
                idx as u32 + 1,
                format!(
                    "package `{package}` resolves from an external source ({}); \
                     the lockfile must stay path-only (DESIGN.md §6)",
                    line.trim_start_matches("source = ").trim_matches('"')
                ),
            ));
        }
    }
    findings
}

/// Lints one `Cargo.toml` manifest.
pub fn lint_cargo_toml(text: &str, rel_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]`-style subsections accumulate keys; judged at exit.
    let mut sub: Option<(u32, String, bool)> = None; // (line, name, saw_path_or_ws)
    let mut pragma_lines: Vec<(u32, bool)> = Vec::new(); // (line, covers hermetic-deps)

    let flush_sub = |sub: &mut Option<(u32, String, bool)>, findings: &mut Vec<Finding>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok {
                findings.push(Finding::new(
                    HERMETIC_DEPS,
                    "", // patched by caller below
                    line,
                    format!("dependency `{name}` has no `path`/`workspace` key — external crate"),
                ));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if let Some(hash) = find_comment_start(line) {
            if let Some(p) = parse_pragma(&line[hash..], lineno) {
                pragma_lines.push((
                    lineno,
                    p.justified && p.rules.iter().any(|r| r == HERMETIC_DEPS),
                ));
            }
        }
        let line = strip_comment(line);
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_sub(&mut sub, &mut findings);
            let section = line.trim_matches(|c| c == '[' || c == ']');
            if let Some(dep_name) = dependency_subsection(section) {
                // e.g. [dependencies.foo] — collect keys until next header.
                in_dep_section = false;
                sub = Some((lineno, dep_name.to_string(), false));
            } else {
                in_dep_section = is_dependency_section(section);
            }
            continue;
        }
        if let Some((_, _, ok)) = &mut sub {
            let key = line.split('=').next().unwrap_or("").trim();
            match key {
                "path" | "workspace" => *ok = true,
                "git" | "registry" | "version" => {}
                _ => {}
            }
            if matches!(key, "git" | "registry") {
                findings.push(Finding::new(
                    HERMETIC_DEPS,
                    "",
                    lineno,
                    format!("`{key}` dependency source is outside the workspace"),
                ));
            }
            continue;
        }
        if in_dep_section {
            if let Some(f) = check_dep_entry(line, lineno) {
                findings.push(f);
            }
        }
    }
    flush_sub(&mut sub, &mut findings);

    for f in &mut findings {
        f.file = rel_path.to_string();
        f.waived = pragma_lines
            .iter()
            .any(|&(l, covers)| covers && (l == f.line || l + 1 == f.line));
    }
    findings
}

/// One `name = value` line inside a `[*dependencies]` section.
fn check_dep_entry(line: &str, lineno: u32) -> Option<Finding> {
    let (key, value) = line.split_once('=')?;
    let key = key.trim();
    let value = value.trim();
    // `foo.workspace = true` — in-workspace by definition.
    if key.ends_with(".workspace") {
        return None;
    }
    // `foo = { .. }` inline table: must carry `path =` or `workspace = true`
    // and must not point at git/registry.
    if value.starts_with('{') {
        let has_local = value.contains("path") || value.contains("workspace");
        let has_remote = value.contains("git") || value.contains("registry");
        if has_local && !has_remote {
            return None;
        }
        return Some(Finding::new(
            HERMETIC_DEPS,
            "",
            lineno,
            format!("dependency `{key}` is not a path/workspace dependency"),
        ));
    }
    // `foo = "1.2"` — bare registry version.
    Some(Finding::new(
        HERMETIC_DEPS,
        "",
        lineno,
        format!("dependency `{key}` pins a registry version; use a path dependency"),
    ))
}

/// True for `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'cfg(..)'.dependencies]`, ….
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dependency_subsection(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(prefix) {
            return Some(rest);
        }
        if let Some(at) = section.find(&format!(".{prefix}")) {
            return Some(&section[at + 1 + prefix.len()..]);
        }
    }
    None
}

/// Byte index of a `#` comment that is not inside a quoted string.
fn find_comment_start(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn strip_comment(line: &str) -> &str {
    match find_comment_start(line) {
        Some(i) => line[..i].trim_end(),
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lock_passes() {
        let lock = "[[package]]\nname = \"cs-core\"\nversion = \"0.1.0\"\ndependencies = [\n \"cs-linalg\",\n]\n";
        assert!(lint_cargo_lock(lock, "Cargo.lock").is_empty());
    }

    #[test]
    fn registry_source_in_lock_fires() {
        let lock = "[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let f = lint_cargo_lock(lock, "Cargo.lock");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = "[dependencies]\ncs-linalg.workspace = true\ncs-core = { path = \"../cs-core\" }\n\n[dev-dependencies]\ncs-datasets.workspace = true\n";
        assert!(lint_cargo_toml(toml, "crates/x/Cargo.toml").is_empty());
    }

    #[test]
    fn workspace_dependency_table_passes() {
        let toml = "[workspace.dependencies]\ncs-linalg = { path = \"crates/cs-linalg\" }\n";
        assert!(lint_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn version_string_fires() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let f = lint_cargo_toml(toml, "crates/x/Cargo.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
        assert_eq!(f[0].file, "crates/x/Cargo.toml");
    }

    #[test]
    fn git_dep_fires() {
        let toml = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(lint_cargo_toml(toml, "Cargo.toml").len(), 1);
        let toml = "[dependencies.bar]\ngit = \"https://example.com/bar\"\nbranch = \"main\"\n";
        assert!(!lint_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn subsection_with_path_passes() {
        let toml = "[dependencies.cs-core]\npath = \"../cs-core\"\n";
        assert!(lint_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[features]\nbench = []\n\n[profile.release]\nopt-level = 3\n";
        assert!(lint_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn toml_pragma_waives() {
        let toml = "[dependencies]\n# cs-lint: allow(hermetic-deps) -- vendored locally next PR\nserde = \"1.0\"\n";
        let f = lint_cargo_toml(toml, "Cargo.toml");
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn version_only_inline_table_fires() {
        let toml = "[dependencies]\nfoo = { version = \"2\", features = [\"std\"] }\n";
        assert_eq!(lint_cargo_toml(toml, "Cargo.toml").len(), 1);
    }
}
