//! End-to-end fixture tests: a synthetic workspace is written to a temp
//! directory with one seeded violation per rule, and the linter (library
//! and compiled binary both) must flag each at the right file:line — and
//! must go quiet when the violations carry waiver pragmas.

use std::fs;
use std::path::PathBuf;

use cs_lint::{lint_workspace, rules};

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("cs-lint-fixture-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dirs");
        fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A minimal clean lockfile so root detection and the lock pass both work.
const CLEAN_LOCK: &str = "version = 3\n\n[[package]]\nname = \"fix\"\nversion = \"0.1.0\"\n";

fn seeded_fixture(tag: &str) -> Fixture {
    let fx = Fixture::new(tag);
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
    );
    fx.write(
        "crates/cs-core/src/bad.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\npub fn g() {\n    panic!(\"boom\");\n}\n",
    );
    fx.write(
        "crates/cs-match/src/bad_sort.rs",
        "pub fn rank(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
    );
    fx.write(
        "src/bad_unsafe.rs",
        "pub fn h() -> u8 {\n    let x: u8 = 7;\n    unsafe { *(&x as *const u8) }\n}\n",
    );
    fx.write(
        "crates/cs-core/src/bad_reduce.rs",
        "use std::sync::Mutex;\n\npub struct Acc {\n    pub results: Mutex<Vec<f64>>,\n}\n",
    );
    fx.write(
        "crates/cs-core/src/bad_iter.rs",
        "use std::collections::HashMap;\n\npub fn total(m: &HashMap<String, f64>) -> f64 {\n    m.values().sum()\n}\n",
    );
    fx.write(
        "crates/cs-match/src/bad_env.rs",
        "pub fn knob() -> Option<String> {\n    std::env::var(\"CS_FIXTURE\").ok()\n}\n",
    );
    fx.write(
        "crates/cs-embed/src/bad_locks.rs",
        "use std::sync::Mutex;\n\npub fn both(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let ga = a.lock().expect(\"a\");\n    let gb = b.lock().expect(\"b\");\n    *ga + *gb\n}\n",
    );
    fx.write(
        "crates/cs-core/src/stale.rs",
        "// cs-lint: allow(no-unsafe) -- fixture: the unsafe block was removed\npub fn quiet() -> u8 {\n    1\n}\n",
    );
    fx
}

#[test]
fn each_rule_fires_at_the_seeded_location() {
    let fx = seeded_fixture("seeded");
    let report = lint_workspace(&fx.root).expect("lint runs");
    let hits: Vec<(String, &'static str, u32)> = report
        .unwaived()
        .map(|f| (f.file.clone(), f.rule, f.line))
        .collect();

    let expect = [
        ("Cargo.toml", rules::HERMETIC_DEPS, 6),
        ("crates/cs-core/src/bad.rs", rules::NO_UNWRAP_IN_LIB, 2),
        ("crates/cs-core/src/bad.rs", rules::PANIC_FREE_CORE, 5),
        (
            "crates/cs-match/src/bad_sort.rs",
            rules::NO_FLOAT_SORT_UNWRAP,
            2,
        ),
        ("src/bad_unsafe.rs", rules::NO_UNSAFE, 3),
        (
            "crates/cs-core/src/bad_reduce.rs",
            rules::NO_ARRIVAL_ORDER_REDUCE,
            4,
        ),
        (
            "crates/cs-core/src/bad_iter.rs",
            rules::NO_UNORDERED_ITERATION,
            4,
        ),
        (
            "crates/cs-match/src/bad_env.rs",
            rules::NO_AMBIENT_AUTHORITY,
            2,
        ),
        (
            "crates/cs-embed/src/bad_locks.rs",
            rules::LOCK_DISCIPLINE,
            5,
        ),
        ("crates/cs-core/src/stale.rs", rules::STALE_WAIVER, 1),
    ];
    for (file, rule, line) in expect {
        assert!(
            hits.iter()
                .any(|(f, r, l)| f == file && *r == rule && *l == line),
            "expected {rule} at {file}:{line}; got {hits:?}"
        );
    }
    assert_eq!(
        hits.len(),
        expect.len(),
        "unexpected extra findings: {hits:?}"
    );
}

#[test]
fn poisoned_lockfile_fires() {
    let fx = Fixture::new("lock");
    fx.write(
        "Cargo.lock",
        "version = 3\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.200\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n",
    );
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n",
    );
    let report = lint_workspace(&fx.root).expect("lint runs");
    let lock_findings: Vec<_> = report
        .unwaived()
        .filter(|f| f.file == "Cargo.lock" && f.rule == rules::HERMETIC_DEPS)
        .collect();
    assert_eq!(lock_findings.len(), 1);
    assert_eq!(lock_findings[0].line, 6);
    assert!(lock_findings[0].message.contains("serde"));
}

#[test]
fn waived_fixture_is_clean() {
    let fx = Fixture::new("waived");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n\n[dependencies]\n# cs-lint: allow(hermetic-deps) -- fixture: exercising the waiver path\nserde = \"1.0\"\n",
    );
    fx.write(
        "crates/cs-core/src/waived.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    // cs-lint: allow(no-unwrap-in-lib) -- invariant: caller checked is_some\n    x.unwrap()\n}\n",
    );
    let report = lint_workspace(&fx.root).expect("lint runs");
    let unwaived: Vec<_> = report.unwaived().map(|f| f.render()).collect();
    assert!(unwaived.is_empty(), "expected clean, got {unwaived:?}");
    // The waived findings are still recorded for the JSON report.
    assert_eq!(report.findings.iter().filter(|f| f.waived).count(), 2);
}

#[test]
fn test_code_is_exempt_from_hygiene_but_not_unsafe() {
    let fx = Fixture::new("exempt");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n",
    );
    fx.write(
        "crates/cs-core/src/lib.rs",
        "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        std::panic::catch_unwind(|| panic!(\"fine in tests\")).ok();\n    }\n}\n",
    );
    fx.write(
        "tests/integration.rs",
        "fn naive(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
    );
    fx.write(
        "crates/cs-core/tests/bad_unsafe.rs",
        "pub fn h(x: &u8) -> u8 { unsafe { *(x as *const u8) } }\n",
    );
    let report = lint_workspace(&fx.root).expect("lint runs");
    let rules_hit: Vec<&str> = report.unwaived().map(|f| f.rule).collect();
    assert_eq!(rules_hit, vec![rules::NO_UNSAFE]);
}

#[test]
fn binary_exits_nonzero_on_seeded_violation_and_writes_report() {
    let fx = seeded_fixture("binary");
    let report_path = fx.root.join("lint-report.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cs-lint"))
        .args(["--root"])
        .arg(&fx.root)
        .arg("--report")
        .arg(&report_path)
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "expected nonzero exit, got {:?}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/cs-core/src/bad.rs:2: [no-unwrap-in-lib]"),
        "diagnostic missing file:line, got:\n{stdout}"
    );

    let doc = cs_core::json::parse(&fs::read_to_string(&report_path).expect("report written"))
        .expect("report parses");
    assert_eq!(
        doc.get("clean"),
        Some(&cs_core::json::JsonValue::Bool(false))
    );
    assert_eq!(doc.get("unwaived").and_then(|v| v.as_usize()), Some(10));
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let fx = Fixture::new("clean");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n",
    );
    fx.write("src/lib.rs", "pub fn ok() -> u8 { 1 }\n");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cs-lint"))
        .args(["--root"])
        .arg(&fx.root)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}",
        out.status
    );
}

/// The determinism/concurrency pack's waiver paths: the same violations as
/// `seeded_fixture` go quiet under justified pragmas, and a stale pragma is
/// itself waivable with `allow(stale-waiver)`.
#[test]
fn new_rule_waivers_go_quiet() {
    let fx = Fixture::new("waived-pack");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n",
    );
    fx.write(
        "crates/cs-core/src/waived_iter.rs",
        "use std::collections::HashMap;\n\npub fn total(m: &HashMap<String, u64>) -> u64 {\n    // cs-lint: allow(no-unordered-iteration) -- commutative integer fold\n    m.values().sum()\n}\n",
    );
    fx.write(
        "crates/cs-match/src/waived_env.rs",
        "pub fn knob() -> Option<String> {\n    // cs-lint: allow(no-ambient-authority) -- documented debug escape hatch\n    std::env::var(\"CS_FIXTURE\").ok()\n}\n",
    );
    fx.write(
        "crates/cs-embed/src/waived_locks.rs",
        "use std::sync::Mutex;\n\npub fn both(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let ga = a.lock().expect(\"a\");\n    // cs-lint: allow(lock-discipline) -- global order: a before b everywhere\n    let gb = b.lock().expect(\"b\");\n    *ga + *gb\n}\n",
    );
    fx.write(
        "crates/cs-core/src/waived_stale.rs",
        "// cs-lint: allow(stale-waiver) -- fixture: pragma kept while refactor lands\n// cs-lint: allow(no-unsafe) -- fixture: the unsafe block was just removed\npub fn quiet() -> u8 {\n    1\n}\n",
    );
    let report = lint_workspace(&fx.root).expect("lint runs");
    let unwaived: Vec<_> = report.unwaived().map(|f| f.render()).collect();
    assert!(unwaived.is_empty(), "expected clean, got {unwaived:?}");
    // iter + env + lock + two stale-waiver findings (the `no-unsafe` pragma
    // and the `allow(stale-waiver)` pragma itself, which has no base
    // finding under it) — all five recorded as waived.
    assert_eq!(report.findings.iter().filter(|f| f.waived).count(), 5);
}

/// The public-API snapshot gate end to end: a signature change registers as
/// drift, fails the binary's `--api-check`, and is acknowledged by
/// regenerating the lock (what `scripts/apilock.sh` does).
#[test]
fn api_check_detects_pub_signature_drift() {
    let fx = Fixture::new("api");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write(
        "Cargo.toml",
        "[package]\nname = \"fix\"\nversion = \"0.1.0\"\n",
    );
    fx.write("src/lib.rs", "pub fn stable(x: u8) -> u8 {\n    x\n}\n");

    let written = cs_lint::api::write_locks(&fx.root).expect("write locks");
    assert_eq!(written, vec![fx.root.join("API.lock")]);
    assert!(cs_lint::api::check_locks(&fx.root)
        .expect("check runs")
        .is_empty());

    // Changing a pub fn signature must register as removed + added drift…
    fx.write(
        "src/lib.rs",
        "pub fn stable(x: u16) -> u8 {\n    x as u8\n}\n",
    );
    let drift = cs_lint::api::check_locks(&fx.root).expect("check runs");
    assert!(
        drift.iter().any(|d| d.contains("removed from public API")
            && d.contains("pub fn stable ( x : u8 ) -> u8")),
        "{drift:?}"
    );
    assert!(
        drift
            .iter()
            .any(|d| d.contains("added to public API")
                && d.contains("pub fn stable ( x : u16 ) -> u8")),
        "{drift:?}"
    );

    // …and fail the compiled gate with a pointer to the regen script.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cs-lint"))
        .args(["--api-check", "--root"])
        .arg(&fx.root)
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "expected drift to fail --api-check, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("api drift"), "{stderr}");
    assert!(stderr.contains("scripts/apilock.sh"), "{stderr}");

    // Regenerating the snapshot acknowledges the change.
    cs_lint::api::write_locks(&fx.root).expect("rewrite locks");
    assert!(cs_lint::api::check_locks(&fx.root)
        .expect("check runs")
        .is_empty());
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cs-lint"))
        .args(["--api-check", "--quiet", "--root"])
        .arg(&fx.root)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "expected clean check: {out:?}");
}

/// Keep the `--root` default usable: from inside the fixture dir the walker
/// should find the fixture's own lockfile, not the real workspace's.
#[test]
fn find_workspace_root_stops_at_first_lockfile() {
    let fx = Fixture::new("root");
    fx.write("Cargo.lock", CLEAN_LOCK);
    fx.write("sub/dir/keep.txt", "x");
    let found = cs_lint::find_workspace_root(&fx.root.join("sub/dir")).expect("found");
    assert_eq!(
        fs::canonicalize(&found).expect("canonical"),
        fs::canonicalize(&fx.root).expect("canonical")
    );
}
