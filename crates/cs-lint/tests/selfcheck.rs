//! The linter linting its own workspace: the shipped tree must be clean.
//!
//! This is the test-suite twin of the `cargo run -p cs-lint` step in
//! `scripts/verify.sh` — a violation introduced anywhere in the workspace
//! fails `cargo test` too, so the gate holds even when someone skips the
//! script.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/cs-lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.lock").is_file(),
        "not a workspace root: {root:?}"
    );

    let report = cs_lint::lint_workspace(root).expect("lint runs");
    let unwaived: Vec<String> = report.unwaived().map(|f| f.render()).collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        unwaived.join("\n")
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
