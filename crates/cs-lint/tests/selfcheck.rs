//! The linter linting its own workspace: the shipped tree must be clean.
//!
//! This is the test-suite twin of the `cargo run -p cs-lint` step in
//! `scripts/verify.sh` — a violation introduced anywhere in the workspace
//! fails `cargo test` too, so the gate holds even when someone skips the
//! script.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/cs-lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.lock").is_file(),
        "not a workspace root: {root:?}"
    );

    let report = cs_lint::lint_workspace(root).expect("lint runs");
    let unwaived: Vec<String> = report.unwaived().map(|f| f.render()).collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        unwaived.join("\n")
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The linter's own crate is not exempt: every source file under
/// `crates/cs-lint/src` is run through the rule engine file-by-file and
/// must come back without unwaived findings. This holds even if the
/// workspace walk's scan roots were ever narrowed by mistake.
#[test]
fn linter_lints_itself_clean() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    let mut stack = vec![src_dir.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read src dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = format!(
                    "crates/cs-lint/src/{}",
                    path.strip_prefix(&src_dir).expect("under src").display()
                );
                let text = std::fs::read_to_string(&path).expect("read source");
                let unwaived: Vec<String> = cs_lint::rules::lint_rust_source(&text, &rel)
                    .into_iter()
                    .filter(|f| !f.waived)
                    .map(|f| f.render())
                    .collect();
                assert!(unwaived.is_empty(), "{rel} has findings:\n{unwaived:?}");
                checked += 1;
            }
        }
    }
    assert!(checked >= 8, "expected all cs-lint modules, saw {checked}");
}

/// The dataflow pass eats its own dog food: the linter's sources — the
/// dataflow module itself included — are fed through the interprocedural
/// determinism-taint analysis as one crate and must produce no unwaived
/// findings. `workspace_is_lint_clean` covers this transitively via
/// `lint_workspace`; this test pins it directly so a regression names the
/// taint pass instead of the whole workspace.
#[test]
fn dataflow_pass_accepts_its_own_module() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut stack = vec![src_dir.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read src dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = format!(
                    "crates/cs-lint/src/{}",
                    path.strip_prefix(&src_dir).expect("under src").display()
                );
                sources.push((rel, std::fs::read_to_string(&path).expect("read source")));
            }
        }
    }
    assert!(
        sources.iter().any(|(rel, _)| rel.ends_with("dataflow.rs")),
        "the dataflow module itself must be among the analyzed sources"
    );
    let findings: Vec<String> = cs_lint::dataflow::analyze_workspace(&sources)
        .into_iter()
        .filter(|f| !f.waived)
        .map(|f| f.render())
        .collect();
    assert!(
        findings.is_empty(),
        "the taint pass flags its own crate:\n{}",
        findings.join("\n")
    );
}
