//! # cs-metrics
//!
//! Evaluation metrics for scoping and matching, matching Section 4.2 of
//! the paper:
//!
//! - [`BinaryConfusion`] — accuracy / precision / recall / F1 over binary
//!   linkability predictions,
//! - [`SweepCurve`] — a hyper-parameter sweep (`p` or `v` grid) of
//!   confusions, from which the four AUC summaries are computed:
//!   **AUC-F1** (F1 integrated over the parameter range), **AUC-ROC**
//!   (trapezoid over the observed ROC points — deliberately *not*
//!   extrapolated to FPR = 1, reproducing the paper's caveat), **AUC-ROC′**
//!   (monotonically sorted, interpolated, and range-normalized ROC), and
//!   **AUC-PR** (precision-recall area, the paper's primary metric),
//! - [`MatchQuality`] — PQ / PC / F1 / RR for linkage generation.
//!
//! This crate is pure math: no dependency on the schema or matcher types.

pub mod auc;
pub mod confusion;
pub mod curves;
pub mod matchmetrics;

pub use auc::trapezoid;
pub use confusion::BinaryConfusion;
pub use curves::{RocPoint, SweepCurve, SweepPoint};
pub use matchmetrics::{match_quality, MatchQuality};
