//! Hyper-parameter sweep curves and their AUC summaries.
//!
//! A [`SweepCurve`] holds one [`BinaryConfusion`] per grid value of the
//! scoping parameter (`p` for global scoping, `v` for collaborative
//! scoping). From it the four Table-4 metrics are derived. Because the
//! optimal parameter is unknown, the paper summarizes whole sweeps, not
//! single operating points.

use crate::auc::trapezoid;
use crate::confusion::BinaryConfusion;
use cs_linalg::total_cmp_f64;

/// One grid point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Parameter value (`p` or `v`).
    pub param: f64,
    /// Confusion at that parameter.
    pub confusion: BinaryConfusion,
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False positive rate.
    pub fpr: f64,
    /// True positive rate.
    pub tpr: f64,
}

/// A full hyper-parameter sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepCurve {
    points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from points.
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        Self { points }
    }

    /// Appends one grid point.
    pub fn push(&mut self, param: f64, confusion: BinaryConfusion) {
        self.points.push(SweepPoint { param, confusion });
    }

    /// The grid points.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// AUC of a per-point statistic over the **normalized** parameter range
    /// (so sweeps over different grids are comparable). Returns a value in
    /// `[0, 1]`.
    fn auc_over_param(&self, stat: impl Fn(&BinaryConfusion) -> f64) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.points.iter().map(|p| p.param).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| stat(&p.confusion)).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        if span <= 0.0 {
            return 0.0;
        }
        let normalized: Vec<f64> = xs.iter().map(|x| (x - lo) / span).collect();
        trapezoid(&normalized, &ys)
    }

    /// AUC-F1: F1 integrated over the parameter grid.
    pub fn auc_f1(&self) -> f64 {
        self.auc_over_param(BinaryConfusion::f1)
    }

    /// AUC of accuracy over the grid (plotted in Figures 5/6 (a)–(b)).
    pub fn auc_accuracy(&self) -> f64 {
        self.auc_over_param(BinaryConfusion::accuracy)
    }

    /// The ROC points of this sweep, sorted ascending by FPR, with the
    /// origin prepended.
    pub fn roc_points(&self) -> Vec<RocPoint> {
        let mut pts: Vec<RocPoint> = self
            .points
            .iter()
            .map(|p| RocPoint {
                fpr: p.confusion.fpr(),
                tpr: p.confusion.tpr(),
            })
            .collect();
        pts.push(RocPoint { fpr: 0.0, tpr: 0.0 });
        pts.sort_by(|a, b| total_cmp_f64(&a.fpr, &b.fpr).then(total_cmp_f64(&a.tpr, &b.tpr)));
        pts.dedup_by(|a, b| a == b);
        pts
    }

    /// AUC-ROC over the **observed** FPR range. Deliberately not
    /// extrapolated to FPR = 1: a method whose sweep never produces high
    /// FPR (like collaborative scoping) loses that area — the caveat the
    /// paper discusses in Section 4.2.
    pub fn auc_roc(&self) -> f64 {
        let pts = self.roc_points();
        let xs: Vec<f64> = pts.iter().map(|p| p.fpr).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.tpr).collect();
        trapezoid(&xs, &ys)
    }

    /// AUC-ROC′: the monotonically sorted, interpolated, range-normalized
    /// ROC (footnote 12's `splrep` smoothing analog). Non-monotone dips
    /// from sweep fluctuation are removed by a running maximum and the FPR
    /// axis is renormalized to the observed maximum, measuring "how quickly
    /// the curve converges to a high TPR".
    pub fn auc_roc_smoothed(&self) -> f64 {
        let pts = self.roc_points();
        let max_fpr = pts.iter().map(|p| p.fpr).fold(0.0, f64::max);
        if max_fpr <= 0.0 {
            return 0.0;
        }
        // Monotone envelope: TPR as running max over increasing FPR.
        let mut running = 0.0f64;
        let mut xs = Vec::with_capacity(pts.len());
        let mut ys = Vec::with_capacity(pts.len());
        for p in &pts {
            running = running.max(p.tpr);
            xs.push(p.fpr / max_fpr);
            ys.push(running);
        }
        trapezoid(&xs, &ys)
    }

    /// The precision-recall points, sorted ascending by recall, with the
    /// zero-recall anchor at the highest observed precision.
    pub fn pr_points(&self) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.confusion.recall(), p.confusion.precision()))
            .collect();
        let max_precision = pts.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        pts.push((0.0, max_precision));
        pts.sort_by(|a, b| total_cmp_f64(&a.0, &b.0).then(total_cmp_f64(&b.1, &a.1)));
        pts.dedup();
        pts
    }

    /// AUC-PR over the observed recall range — the paper's primary metric
    /// (robust to the linkable/unlinkable class imbalance).
    pub fn auc_pr(&self) -> f64 {
        let pts = self.pr_points();
        let xs: Vec<f64> = pts.iter().map(|&(r, _)| r).collect();
        let ys: Vec<f64> = pts.iter().map(|&(_, p)| p).collect();
        trapezoid(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn confusion(tp: usize, fp: usize, tn: usize, fn_: usize) -> BinaryConfusion {
        BinaryConfusion { tp, fp, tn, fn_ }
    }

    /// A sweep emulating a perfect ranker over 10 positives / 10 negatives:
    /// positives are all kept before any negative.
    fn perfect_sweep() -> SweepCurve {
        let mut c = SweepCurve::new();
        for kept in 0..=20usize {
            let tp = kept.min(10);
            let fp = kept.saturating_sub(10);
            c.push(kept as f64 / 20.0, confusion(tp, fp, 10 - fp, 10 - tp));
        }
        c
    }

    /// A random ranker: keeps positives and negatives proportionally.
    fn random_sweep() -> SweepCurve {
        let mut c = SweepCurve::new();
        for kept in 0..=10usize {
            c.push(
                kept as f64 / 10.0,
                confusion(kept, kept, 10 - kept, 10 - kept),
            );
        }
        c
    }

    #[test]
    fn perfect_ranker_auc_roc_is_one() {
        let auc = perfect_sweep().auc_roc();
        assert!((auc - 1.0).abs() < 1e-9, "{auc}");
    }

    #[test]
    fn random_ranker_auc_roc_is_half() {
        let auc = random_sweep().auc_roc();
        assert!((auc - 0.5).abs() < 1e-9, "{auc}");
    }

    #[test]
    fn truncated_fpr_penalizes_roc_but_not_smoothed() {
        // A method that is perfect but never exceeds FPR = 0.5.
        let mut c = SweepCurve::new();
        for kept in 0..=15usize {
            let tp = kept.min(10);
            let fp = kept.saturating_sub(10); // at most 5 of 10 negatives
            c.push(kept as f64 / 15.0, confusion(tp, fp, 10 - fp, 10 - tp));
        }
        let roc = c.auc_roc();
        let roc_smooth = c.auc_roc_smoothed();
        assert!(roc < 0.6, "observed-range AUC is penalized: {roc}");
        assert!(roc_smooth > 0.95, "normalized AUC recovers: {roc_smooth}");
    }

    #[test]
    fn auc_pr_perfect_vs_random() {
        let perfect = perfect_sweep().auc_pr();
        let random = random_sweep().auc_pr();
        assert!(perfect > 0.95, "{perfect}");
        assert!((random - 0.5).abs() < 0.05, "{random}");
    }

    #[test]
    fn auc_f1_normalizes_param_range() {
        // Same confusions on two different grids must give the same AUC-F1.
        let mut a = SweepCurve::new();
        let mut b = SweepCurve::new();
        for i in 0..=10usize {
            let c = confusion(i, 0, 10, 10 - i);
            a.push(i as f64 / 10.0, c);
            b.push(0.9 - 0.8 * (i as f64 / 10.0), c); // v-style reversed grid
        }
        assert!((a.auc_f1() - b.auc_f1()).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_point_curves() {
        let empty = SweepCurve::new();
        assert!(empty.is_empty());
        assert_eq!(empty.auc_f1(), 0.0);
        assert_eq!(empty.auc_roc(), 0.0);
        let mut single = SweepCurve::new();
        single.push(0.5, confusion(1, 1, 1, 1));
        assert_eq!(single.auc_f1(), 0.0);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn roc_points_sorted_and_deduped() {
        let c = perfect_sweep();
        let pts = c.roc_points();
        for w in pts.windows(2) {
            assert!(w[0].fpr <= w[1].fpr);
        }
        assert_eq!(pts[0], RocPoint { fpr: 0.0, tpr: 0.0 });
    }

    #[test]
    fn metric_ranges_are_bounded() {
        for curve in [perfect_sweep(), random_sweep()] {
            for m in [
                curve.auc_f1(),
                curve.auc_roc(),
                curve.auc_roc_smoothed(),
                curve.auc_pr(),
                curve.auc_accuracy(),
            ] {
                assert!((0.0..=1.0 + 1e-9).contains(&m), "{m}");
            }
        }
    }
}
