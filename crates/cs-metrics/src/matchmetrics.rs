//! Matching-quality metrics: PQ, PC, F1, RR (Section 4.2, "Matching").

/// Quality of one linkage-generation run `A(S')` against ground truth
/// `L(S)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Pair Quality (precision): `|A(S') ∩ L(S)| / |A(S')|`.
    pub pq: f64,
    /// Pair Completeness (recall): `|A(S') ∩ L(S)| / |L(S)|`.
    pub pc: f64,
    /// Harmonic mean of PQ and PC.
    pub f1: f64,
    /// Reduction Ratio: `1 − |A(S')| / cartesian`.
    pub rr: f64,
    /// `|A(S')|` — generated candidate pairs.
    pub candidates: usize,
    /// `|A(S') ∩ L(S)|` — true linkages found.
    pub true_positives: usize,
}

/// Computes PQ / PC / F1 / RR from raw counts.
///
/// * `candidates` — number of pairs the matcher generated,
/// * `true_positives` — of those, how many are annotated linkages,
/// * `truth_size` — `|L(S)|`,
/// * `cartesian` — the pairwise comparison count of the *original* schemas
///   (Table 3's Cartesian sizes), the RR denominator.
///
/// # Panics
/// If `true_positives` exceeds `candidates` or `truth_size`.
pub fn match_quality(
    candidates: usize,
    true_positives: usize,
    truth_size: usize,
    cartesian: usize,
) -> MatchQuality {
    assert!(true_positives <= candidates, "TP cannot exceed candidates");
    assert!(
        true_positives <= truth_size,
        "TP cannot exceed the truth size"
    );
    let pq = if candidates == 0 {
        0.0
    } else {
        true_positives as f64 / candidates as f64
    };
    let pc = if truth_size == 0 {
        0.0
    } else {
        true_positives as f64 / truth_size as f64
    };
    let f1 = if pq + pc == 0.0 {
        0.0
    } else {
        2.0 * pq * pc / (pq + pc)
    };
    let rr = if cartesian == 0 {
        0.0
    } else {
        1.0 - candidates as f64 / cartesian as f64
    };
    MatchQuality {
        pq,
        pc,
        f1,
        rr,
        candidates,
        true_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let q = match_quality(50, 30, 40, 1000);
        assert!((q.pq - 0.6).abs() < 1e-12);
        assert!((q.pc - 0.75).abs() < 1e-12);
        assert!((q.f1 - 2.0 * 0.6 * 0.75 / 1.35).abs() < 1e-12);
        assert!((q.rr - 0.95).abs() < 1e-12);
    }

    #[test]
    fn perfect_matcher() {
        let q = match_quality(40, 40, 40, 1000);
        assert_eq!(q.pq, 1.0);
        assert_eq!(q.pc, 1.0);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn empty_candidate_set() {
        let q = match_quality(0, 0, 40, 1000);
        assert_eq!(q.pq, 0.0);
        assert_eq!(q.pc, 0.0);
        assert_eq!(q.f1, 0.0);
        assert_eq!(q.rr, 1.0);
    }

    #[test]
    fn exhaustive_matcher_has_zero_rr() {
        let q = match_quality(1000, 40, 40, 1000);
        assert_eq!(q.rr, 0.0);
        assert_eq!(q.pc, 1.0);
    }

    #[test]
    fn zero_denominators() {
        let q = match_quality(0, 0, 0, 0);
        assert_eq!(q.pq, 0.0);
        assert_eq!(q.pc, 0.0);
        assert_eq!(q.rr, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed candidates")]
    fn tp_exceeding_candidates_panics() {
        match_quality(5, 6, 10, 100);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the truth")]
    fn tp_exceeding_truth_panics() {
        match_quality(10, 6, 5, 100);
    }
}
