//! Binary confusion counts and the derived rates.

/// Confusion counts for binary linkability prediction. The positive class
/// is *linkable* (kept), following the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    /// Linkable predicted linkable.
    pub tp: usize,
    /// Unlinkable predicted linkable.
    pub fp: usize,
    /// Unlinkable predicted unlinkable.
    pub tn: usize,
    /// Linkable predicted unlinkable.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    /// If the slices differ in length.
    pub fn from_labels(predicted: &[bool], truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "label length mismatch");
        let mut c = Self::default();
        for (&p, &t) in predicted.iter().zip(truth.iter()) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`; 0 on empty input.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `TP / (TP + FP)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)` — also the true positive rate; 0 when no positives
    /// exist.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Alias for [`Self::recall`] in ROC contexts.
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// `FP / (FP + TN)`; 0 when no negatives exist.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_tallies() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, false, true, true];
        let c = BinaryConfusion::from_labels(&pred, &truth);
        assert_eq!(
            c,
            BinaryConfusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn derived_rates() {
        let c = BinaryConfusion {
            tp: 6,
            fp: 2,
            tn: 8,
            fn_: 4,
        };
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.6).abs() < 1e-12);
        assert!((c.fpr() - 0.2).abs() < 1e-12);
        assert!((c.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
        assert_eq!(c.tpr(), c.recall());
    }

    #[test]
    fn division_by_zero_guards() {
        let empty = BinaryConfusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.fpr(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn perfect_prediction() {
        let truth = [true, false, true];
        let c = BinaryConfusion::from_labels(&truth, &truth);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.fpr(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        BinaryConfusion::from_labels(&[true], &[true, false]);
    }
}
