//! Trapezoidal area under a curve.

/// Trapezoidal integral of `ys` over `xs`.
///
/// The points are sorted by `x` internally (stable for ties), so callers
/// can pass sweep outputs in any order. Fewer than two points integrate
/// to 0.
///
/// # Panics
/// If the slices differ in length or contain non-finite values.
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(
        xs.iter().chain(ys.iter()).all(|v| v.is_finite()),
        "non-finite curve point"
    );
    if xs.len() < 2 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| cs_linalg::total_cmp_f64(&xs[a], &xs[b]).then(a.cmp(&b)));
    let mut area = 0.0;
    for w in order.windows(2) {
        let (i, j) = (w[0], w[1]);
        area += (xs[j] - xs[i]) * (ys[i] + ys[j]) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_and_triangle() {
        assert!((trapezoid(&[0.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((trapezoid(&[0.0, 1.0], &[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn order_independent() {
        let a = trapezoid(&[0.0, 0.5, 1.0], &[0.0, 0.8, 1.0]);
        let b = trapezoid(&[1.0, 0.0, 0.5], &[1.0, 0.0, 0.8]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(trapezoid(&[], &[]), 0.0);
        assert_eq!(trapezoid(&[0.5], &[1.0]), 0.0);
    }

    #[test]
    fn partial_range_integration() {
        // Curve stopping at x = 0.75 integrates only the observed range.
        let area = trapezoid(&[0.0, 0.75], &[1.0, 1.0]);
        assert!((area - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        trapezoid(&[0.0, f64::NAN], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        trapezoid(&[0.0], &[]);
    }
}
