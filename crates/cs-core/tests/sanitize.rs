//! Integration tests for the runtime determinism sanitizer (DESIGN.md
//! §12) as wired into the pool: a seeded deadlock-potential fixture the
//! lock-order graph must flag, and a clean pool run it must pass.
//!
//! The evidence graph is process-global, so each test filters the report
//! down to its own lock-name prefix rather than resetting underneath the
//! other.

use std::thread;

use cs_core::pool::{sanitize, ThreadPool};

/// Two threads nest a pair of locks in opposite orders. No real deadlock
/// occurs (the threads run sequentially), but the union graph contains the
/// cycle `fxcore.a → fxcore.b → fxcore.a` — exactly the interleaving a
/// production run could hit, and exactly what the sanitizer exists to
/// surface before it ever does.
#[test]
fn deadlock_potential_fixture_is_flagged() {
    sanitize::force(true);

    let first = thread::spawn(|| {
        let _a = sanitize::trace("fxcore.a");
        let _b = sanitize::trace("fxcore.b");
    });
    first.join().expect("first fixture thread");

    let second = thread::spawn(|| {
        let _b = sanitize::trace("fxcore.b");
        let _a = sanitize::trace("fxcore.a");
    });
    second.join().expect("second fixture thread");

    let rep = sanitize::report().filtered("fxcore.");
    assert_eq!(
        rep.edges,
        vec![
            ("fxcore.a".to_string(), "fxcore.b".to_string()),
            ("fxcore.b".to_string(), "fxcore.a".to_string()),
        ],
        "both nesting orders recorded"
    );
    assert_eq!(
        rep.cycles,
        vec![vec!["fxcore.a".to_string(), "fxcore.b".to_string()]],
        "opposite-order nesting is a deadlock potential"
    );
    assert!(!rep.healthy(), "a cyclic lock graph must fail healthy()");
}

/// A real pool run under the sanitizer: without fault arming the pool's
/// instrumented locks never nest, so the `pool.` slice of the graph stays
/// empty and every worker's float-environment probe agrees.
#[test]
fn clean_pool_run_passes() {
    sanitize::force(true);

    let pool = ThreadPool::with_threads(4);
    let out = pool
        .run_slots(64, |slot| (slot as f64).sqrt())
        .expect("clean pool run");
    assert_eq!(out.len(), 64);

    let rep = sanitize::report().filtered("pool.");
    assert!(
        rep.edges.is_empty() && rep.cycles.is_empty(),
        "an unarmed pool run must record no lock nesting, got {:?}",
        rep.edges
    );
    assert!(
        !rep.probes.is_empty(),
        "worker threads must record float-environment probes"
    );
    assert!(
        rep.probes.len() <= 1,
        "float environments drifted across workers: {:?}",
        rep.probes
    );
    assert!(rep.healthy(), "a clean run must pass the sanitizer");
}
