//! The determinism contract, end to end: the parallel pipeline must be
//! **bit-identical** to the sequential path for every worker count
//! (DESIGN.md §8).
//!
//! Each suite runs the same synthetic multi-source scenario through the
//! sequential executor and through pinned pools of 1, 2, 3, and 8
//! workers — the counts `CS_THREADS` would select — and compares raw
//! `f64` bits, never tolerances: chunk-deal scheduling plus slot
//! assembly means parallelism may not change a single ULP.

use std::sync::Arc;

use cs_core::pool::{ExecPolicy, ThreadPool};
use cs_core::{
    encode_catalog, CollaborativeScoper, CollaborativeSweep, CombinationRule, SchemaSignatures,
};
use cs_datasets::synthetic::{generate, SyntheticConfig};
use cs_embed::SignatureEncoder;
use cs_linalg::check::{run, Gen};

/// Worker counts the determinism contract is pinned on.
const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn pinned_pools() -> Vec<(usize, Arc<ThreadPool>)> {
    WORKER_COUNTS
        .iter()
        .map(|&n| (n, Arc::new(ThreadPool::with_threads(n))))
        .collect()
}

/// A synthetic catalog with schema count and seed drawn per case.
fn synthetic_sigs(g: &mut Gen) -> SchemaSignatures {
    let config = SyntheticConfig {
        schemas: g.usize_in(2, 4),
        shared_concepts: 14,
        concepts_per_schema: 9,
        private_per_schema: g.usize_in(2, 6),
        table_width: 5,
        alien_elements: if g.usize_in(0, 1) == 1 { 8 } else { 0 },
        seed: g.seed(),
        ..SyntheticConfig::default()
    };
    let ds = generate(&config);
    encode_catalog(&SignatureEncoder::default(), &ds.catalog)
}

fn scoper_with(v: f64, exec: ExecPolicy) -> CollaborativeScoper {
    CollaborativeScoper::builder()
        .explained_variance(v)
        .exec(exec)
        .build()
        .expect("valid v")
}

fn assert_f64_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

#[test]
fn training_is_bit_identical_across_worker_counts() {
    let pools = pinned_pools();
    run("determinism_train", 4, |g| {
        let sigs = synthetic_sigs(g);
        let v = g.f64_in(0.3, 0.95);
        let baseline = scoper_with(v, ExecPolicy::Sequential)
            .train_models(&sigs)
            .expect("sequential training");
        for (n, pool) in &pools {
            let models = scoper_with(v, ExecPolicy::Pool(Arc::clone(pool)))
                .train_models(&sigs)
                .expect("pooled training");
            assert_eq!(models.len(), baseline.len(), "{n} workers: model count");
            for (m, b) in models.iter().zip(baseline.iter()) {
                assert_eq!(m.schema_index(), b.schema_index());
                assert_eq!(
                    m.linkability_range().to_bits(),
                    b.linkability_range().to_bits(),
                    "{n} workers: linkability range of schema {}",
                    b.schema_index()
                );
                // The trained encoder–decoders must agree exactly too:
                // probe them on the schema's own signatures.
                let probe = sigs.schema(b.schema_index());
                assert_f64_bits_equal(
                    &m.reconstruction_errors(probe),
                    &b.reconstruction_errors(probe),
                    "reconstruction errors",
                );
            }
        }
    });
}

#[test]
fn assessment_is_bit_identical_across_worker_counts() {
    let pools = pinned_pools();
    run("determinism_assess", 4, |g| {
        let sigs = synthetic_sigs(g);
        let v = g.f64_in(0.3, 0.95);
        let baseline = scoper_with(v, ExecPolicy::Sequential)
            .run(&sigs)
            .expect("sequential run");
        for (n, pool) in &pools {
            let got = scoper_with(v, ExecPolicy::Pool(Arc::clone(pool)))
                .run(&sigs)
                .expect("pooled run");
            assert_eq!(got.outcome, baseline.outcome, "{n} workers: outcome");
            assert_eq!(
                got.accept_votes, baseline.accept_votes,
                "{n} workers: votes"
            );
            assert_f64_bits_equal(&got.best_margin, &baseline.best_margin, "margins");
            // CostReport is pure arithmetic over catalog sizes — equal
            // under every executor.
            assert_eq!(got.cost, baseline.cost, "{n} workers: cost report");
        }
    });
}

#[test]
fn sweep_grid_is_bit_identical_across_worker_counts() {
    let pools = pinned_pools();
    run("determinism_sweep", 3, |g| {
        let sigs = synthetic_sigs(g);
        let steps = g.usize_in(5, 12);
        let vs: Vec<f64> = (1..=steps).map(|i| i as f64 / steps as f64).collect();

        let baseline_sweep =
            CollaborativeSweep::prepare_with(&sigs, &ExecPolicy::Sequential).expect("prepare");
        let baseline: Vec<_> = vs
            .iter()
            .map(|&v| {
                baseline_sweep
                    .assess_with_rule(v, CombinationRule::Any)
                    .expect("valid grid point")
            })
            .collect();
        for (n, pool) in &pools {
            let exec = ExecPolicy::Pool(Arc::clone(pool));
            // Both the cache preparation and the v-grid fan-out run on
            // the pinned pool.
            let sweep = CollaborativeSweep::prepare_with(&sigs, &exec).expect("prepare");
            let got = sweep
                .assess_grid_with(&vs, CombinationRule::Any, &exec)
                .expect("assess_grid");
            assert_eq!(got.len(), baseline.len());
            for (point, (fast, slow)) in got.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    fast.decisions, slow.decisions,
                    "{n} workers: grid point {point} (v={})",
                    vs[point]
                );
            }
        }
    });
}

#[test]
fn sweep_grid_matches_full_reruns_of_algorithm_2() {
    // The cached-projection sweep and a fresh CollaborativeScoper::run
    // must agree at every grid point, under the parallel executor.
    run("determinism_sweep_vs_rerun", 2, |g| {
        let sigs = synthetic_sigs(g);
        let sweep = CollaborativeSweep::prepare(&sigs).expect("prepare");
        let vs = [0.9, 0.7, 0.5, 0.3];
        let grid = sweep
            .assess_grid(&vs, CombinationRule::Any)
            .expect("assess_grid");
        for (outcome, &v) in grid.iter().zip(vs.iter()) {
            let rerun = CollaborativeScoper::new(v).run(&sigs).expect("run");
            assert_eq!(outcome.decisions, rerun.outcome.decisions, "v={v}");
        }
    });
}

#[test]
fn global_default_matches_sequential() {
    // The ambient executor (whatever CS_THREADS resolved to in this
    // process) obeys the same contract as the pinned pools.
    run("determinism_global_default", 3, |g| {
        let sigs = synthetic_sigs(g);
        let v = g.f64_in(0.4, 0.9);
        let par = scoper_with(v, ExecPolicy::Global).run(&sigs).expect("run");
        let seq = scoper_with(v, ExecPolicy::Sequential)
            .run(&sigs)
            .expect("run");
        assert_eq!(par.outcome, seq.outcome);
        assert_eq!(par.accept_votes, seq.accept_votes);
        assert_f64_bits_equal(&par.best_margin, &seq.best_margin, "margins");
        assert_eq!(par.cost, seq.cost);
    });
}

#[test]
fn every_solver_is_bit_identical_across_worker_counts() {
    use cs_linalg::{Matrix, PcaSolver, Xoshiro256};
    let pools = pinned_pools();
    // Low-rank-plus-noise schemas large enough (~80 rows) that the
    // truncated solver's subspace iteration actually runs instead of
    // falling back to the exact Gram path; small enough that the FullSvd
    // reference stays fast.
    let mut rng = Xoshiro256::seed_from(0xDE7E12);
    let dim = 96;
    let rank = 10;
    let basis = Matrix::from_fn(rank, dim, |_, _| rng.next_gaussian());
    let mut make = |n: usize| {
        let coeff = Matrix::from_fn(n, rank, |_, j| rng.next_gaussian() / (1.0 + j as f64));
        let mut m = coeff.matmul(&basis);
        for x in m.as_mut_slice() {
            *x += rng.next_gaussian() * 1e-3;
        }
        m
    };
    let sigs = SchemaSignatures::from_matrices(
        vec![make(80), make(72), make(68)],
        vec!["A".into(), "B".into(), "C".into()],
    );
    for solver in [
        PcaSolver::Auto,
        PcaSolver::FullSvd,
        PcaSolver::Gram,
        PcaSolver::truncated(),
    ] {
        let baseline = CollaborativeScoper::builder()
            .explained_variance(0.6)
            .pca_solver(solver)
            .exec(ExecPolicy::Sequential)
            .build()
            .expect("valid v")
            .run(&sigs)
            .expect("sequential run");
        for (n, pool) in &pools {
            let got = CollaborativeScoper::builder()
                .explained_variance(0.6)
                .pca_solver(solver)
                .exec(ExecPolicy::Pool(Arc::clone(pool)))
                .build()
                .expect("valid v")
                .run(&sigs)
                .expect("pooled run");
            assert_eq!(got.outcome, baseline.outcome, "{solver:?}, {n} workers");
            assert_eq!(got.accept_votes, baseline.accept_votes, "{solver:?}");
            assert_f64_bits_equal(&got.best_margin, &baseline.best_margin, "margins");
        }
        // The sweep's full-rank preparation honors the same pin.
        let seq = CollaborativeSweep::prepare_with_solver(&sigs, &ExecPolicy::Sequential, solver)
            .expect("prepare");
        for (n, pool) in &pools {
            let par = CollaborativeSweep::prepare_with_solver(
                &sigs,
                &ExecPolicy::Pool(Arc::clone(pool)),
                solver,
            )
            .expect("prepare");
            for &v in &[0.9, 0.6, 0.3] {
                assert_eq!(
                    seq.assess_at(v).expect("assess").decisions,
                    par.assess_at(v).expect("assess").decisions,
                    "{solver:?}, {n} workers, v={v}"
                );
            }
        }
    }
}

#[test]
fn worker_panic_surfaces_through_scoper_api() {
    // An empty schema makes LocalModel::train return an error — but a
    // panic *inside* pool workers must also surface as a typed error,
    // not a hang. Drive the pool directly with a panicking payload.
    let pool = ThreadPool::with_threads(2);
    let err = pool
        .run_slots(6, |i| {
            assert!(i != 3, "deliberate panic in worker");
            i
        })
        .expect_err("panic must surface");
    assert!(
        matches!(err, cs_core::ScopingError::WorkerPanicked { ref detail } if detail.contains("deliberate")),
        "got {err:?}"
    );
    // The pool remains usable afterwards.
    assert_eq!(pool.run_slots(3, |i| i).expect("healthy"), vec![0, 1, 2]);
}
