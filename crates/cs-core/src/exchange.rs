//! Model exchange: serialize local encoder–decoders for distribution.
//!
//! Collaborative scoping's deployment story (Section 3, phase III) is that
//! organizations exchange **models, not data**: each participant trains
//! `M_k = {μ_k, PC_k, l_k}` locally and publishes only that. This module
//! provides the wire formats for the exchange:
//!
//! - **JSON** ([`to_json`] / [`from_json`]) — human-auditable, the format
//!   an organization's review process would inspect before publishing,
//! - **binary** ([`to_bytes`] / [`from_bytes`]) — a compact versioned
//!   codec (magic `CSEX`, little-endian) for the actual transfer; a
//!   768-dimensional model with 20 components is ≈135 KB instead of
//!   ≈420 KB of JSON.
//!
//! Both formats validate on ingest: a corrupted or truncated payload is a
//! typed [`ExchangeError`], never a panic, because the payload crosses a
//! trust boundary.

use crate::local_model::LocalModel;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cs_linalg::{Matrix, Pca};
use serde::{Deserialize, Serialize};

/// Magic prefix of the binary format.
pub const MAGIC: &[u8; 4] = b"CSEX";
/// Current binary format version.
pub const VERSION: u16 = 1;

/// Errors raised while decoding an exchanged model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The payload does not start with the `CSEX` magic.
    BadMagic,
    /// The payload's version is not supported.
    UnsupportedVersion(u16),
    /// The payload ended before the declared content.
    Truncated,
    /// A declared shape is internally inconsistent.
    MalformedShape(String),
    /// JSON (de)serialization failed.
    Json(String),
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::BadMagic => write!(f, "payload is not a CSEX model"),
            ExchangeError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            ExchangeError::Truncated => write!(f, "payload truncated"),
            ExchangeError::MalformedShape(s) => write!(f, "malformed payload: {s}"),
            ExchangeError::Json(s) => write!(f, "JSON error: {s}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// The exchanged form of a local model: exactly the paper's
/// `M_k = {μ_k, PC_k, l_k}` triple plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEnvelope {
    /// Publishing schema's display name (provenance, not identity).
    pub schema_name: String,
    /// The publisher's schema index within the matching federation.
    pub schema_index: usize,
    /// Signature dimensionality the model expects.
    pub dim: usize,
    /// Local signature mean `μ_k`.
    pub mean: Vec<f64>,
    /// Principal components `PC_k` (rows).
    pub components: Matrix,
    /// Local linkability range `l_k`.
    pub linkability_range: f64,
}

impl ModelEnvelope {
    /// Packs a trained local model for exchange.
    pub fn pack(schema_name: impl Into<String>, model: &LocalModel) -> Self {
        Self {
            schema_name: schema_name.into(),
            schema_index: model.schema_index(),
            dim: model.pca().dim(),
            mean: model.pca().mean().to_vec(),
            components: model.pca().components().clone(),
            linkability_range: model.linkability_range(),
        }
    }

    /// Validates internal consistency (shapes, finiteness).
    pub fn validate(&self) -> Result<(), ExchangeError> {
        if self.mean.len() != self.dim {
            return Err(ExchangeError::MalformedShape(format!(
                "mean length {} != dim {}",
                self.mean.len(),
                self.dim
            )));
        }
        if self.components.cols() != self.dim {
            return Err(ExchangeError::MalformedShape(format!(
                "component width {} != dim {}",
                self.components.cols(),
                self.dim
            )));
        }
        if self.components.rows() == 0 {
            return Err(ExchangeError::MalformedShape("no components".into()));
        }
        if !self.linkability_range.is_finite() || self.linkability_range < 0.0 {
            return Err(ExchangeError::MalformedShape(format!(
                "linkability range {} invalid",
                self.linkability_range
            )));
        }
        if self.mean.iter().any(|x| !x.is_finite())
            || self.components.has_non_finite()
        {
            return Err(ExchangeError::MalformedShape("non-finite values".into()));
        }
        Ok(())
    }

    /// Reconstruction MSE of foreign signatures under this exchanged model
    /// — Definition 4 evaluated by the *receiving* schema.
    pub fn reconstruction_errors(&self, foreign: &Matrix) -> Vec<f64> {
        assert_eq!(foreign.cols(), self.dim, "dimension mismatch");
        let centered = foreign.sub_row_vector(&self.mean);
        let z = centered.matmul_transposed(&self.components);
        let decoded = z.matmul(&self.components);
        centered
            .rows_iter()
            .zip(decoded.rows_iter())
            .map(|(a, b)| cs_linalg::vecops::mse(a, b))
            .collect()
    }

    /// Which foreign signatures this exchanged model accepts as linkable.
    pub fn assess(&self, foreign: &Matrix) -> Vec<bool> {
        self.reconstruction_errors(foreign)
            .into_iter()
            .map(|e| e <= self.linkability_range)
            .collect()
    }
}

/// Serializes an envelope as JSON.
pub fn to_json(envelope: &ModelEnvelope) -> Result<String, ExchangeError> {
    serde_json::to_string(envelope).map_err(|e| ExchangeError::Json(e.to_string()))
}

/// Parses and validates an envelope from JSON.
pub fn from_json(json: &str) -> Result<ModelEnvelope, ExchangeError> {
    let envelope: ModelEnvelope =
        serde_json::from_str(json).map_err(|e| ExchangeError::Json(e.to_string()))?;
    envelope.validate()?;
    Ok(envelope)
}

/// Encodes an envelope in the compact binary format.
pub fn to_bytes(envelope: &ModelEnvelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + envelope.schema_name.len()
            + 8 * (envelope.mean.len() + envelope.components.as_slice().len()),
    );
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(envelope.schema_index as u32);
    buf.put_f64_le(envelope.linkability_range);
    buf.put_u32_le(envelope.schema_name.len() as u32);
    buf.put_slice(envelope.schema_name.as_bytes());
    buf.put_u32_le(envelope.dim as u32);
    for &x in &envelope.mean {
        buf.put_f64_le(x);
    }
    buf.put_u32_le(envelope.components.rows() as u32);
    for &x in envelope.components.as_slice() {
        buf.put_f64_le(x);
    }
    buf.freeze()
}

/// Decodes and validates an envelope from the binary format.
pub fn from_bytes(mut payload: &[u8]) -> Result<ModelEnvelope, ExchangeError> {
    fn need(buf: &[u8], n: usize) -> Result<(), ExchangeError> {
        if buf.remaining() < n {
            Err(ExchangeError::Truncated)
        } else {
            Ok(())
        }
    }
    need(payload, 4)?;
    let mut magic = [0u8; 4];
    payload.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ExchangeError::BadMagic);
    }
    need(payload, 2)?;
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(ExchangeError::UnsupportedVersion(version));
    }
    need(payload, 4 + 8 + 4)?;
    let schema_index = payload.get_u32_le() as usize;
    let linkability_range = payload.get_f64_le();
    let name_len = payload.get_u32_le() as usize;
    need(payload, name_len)?;
    let mut name_bytes = vec![0u8; name_len];
    payload.copy_to_slice(&mut name_bytes);
    let schema_name = String::from_utf8(name_bytes)
        .map_err(|_| ExchangeError::MalformedShape("schema name is not UTF-8".into()))?;
    need(payload, 4)?;
    let dim = payload.get_u32_le() as usize;
    need(payload, dim.checked_mul(8).ok_or(ExchangeError::Truncated)?)?;
    let mut mean = Vec::with_capacity(dim);
    for _ in 0..dim {
        mean.push(payload.get_f64_le());
    }
    need(payload, 4)?;
    let n_components = payload.get_u32_le() as usize;
    let n_values = n_components
        .checked_mul(dim)
        .ok_or_else(|| ExchangeError::MalformedShape("component count overflow".into()))?;
    need(payload, n_values.checked_mul(8).ok_or(ExchangeError::Truncated)?)?;
    let mut data = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        data.push(payload.get_f64_le());
    }
    let envelope = ModelEnvelope {
        schema_name,
        schema_index,
        dim,
        mean,
        components: Matrix::from_vec(n_components, dim, data),
        linkability_range,
    };
    envelope.validate()?;
    Ok(envelope)
}

/// Rehydrates a received envelope into something assessment code can use
/// alongside natively trained models: the underlying PCA plus range.
///
/// Note the explained-variance bookkeeping is not transferred (it is not
/// part of the paper's `M_k`), so re-truncation is not possible on the
/// receiving side — by design: the publisher chose the generalization.
pub fn to_pca(envelope: &ModelEnvelope) -> Result<(Pca, f64), ExchangeError> {
    envelope.validate()?;
    // Round-trip through the serde representation of Pca, which validates
    // matrix shape again.
    #[derive(Serialize)]
    struct PcaWire<'a> {
        mean: &'a [f64],
        components: &'a Matrix,
        explained_variance_ratio: Vec<f64>,
        singular_values: Vec<f64>,
    }
    let wire = PcaWire {
        mean: &envelope.mean,
        components: &envelope.components,
        explained_variance_ratio: vec![0.0; envelope.components.rows()],
        singular_values: vec![0.0; envelope.components.rows()],
    };
    let json = serde_json::to_string(&wire).map_err(|e| ExchangeError::Json(e.to_string()))?;
    let pca: Pca = serde_json::from_str(&json).map_err(|e| ExchangeError::Json(e.to_string()))?;
    Ok((pca, envelope.linkability_range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_model::LocalModel;
    use cs_linalg::pca::ExplainedVariance;
    use cs_linalg::Xoshiro256;

    fn trained_model() -> (LocalModel, Matrix) {
        let mut rng = Xoshiro256::seed_from(11);
        let data = Matrix::from_fn(20, 12, |_, _| rng.next_gaussian());
        let model = LocalModel::train(2, &data, ExplainedVariance::new(0.8).unwrap()).unwrap();
        (model, data)
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("OC-HANA", &model);
        let bytes = to_bytes(&envelope);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.schema_name, "OC-HANA");
        assert_eq!(back.schema_index, 2);
        assert_eq!(back.dim, 12);
        assert_eq!(back.mean, envelope.mean);
        assert_eq!(back.components, envelope.components);
        assert_eq!(back.linkability_range, envelope.linkability_range);
        // Assessment through the envelope matches the native model.
        assert_eq!(back.assess(&data), model.assess(&data));
    }

    #[test]
    fn json_roundtrip() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("OC-Oracle", &model);
        let json = to_json(&envelope).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.assess(&data), model.assess(&data));
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let (model, _) = trained_model();
        let envelope = ModelEnvelope::pack("X", &model);
        let bin = to_bytes(&envelope);
        let json = to_json(&envelope).unwrap();
        assert!(bin.len() < json.len(), "{} vs {}", bin.len(), json.len());
    }

    #[test]
    fn corrupted_magic_rejected() {
        let (model, _) = trained_model();
        let mut bytes = to_bytes(&ModelEnvelope::pack("X", &model)).to_vec();
        bytes[0] = b'Z';
        assert!(matches!(from_bytes(&bytes), Err(ExchangeError::BadMagic)));
    }

    #[test]
    fn unsupported_version_rejected() {
        let (model, _) = trained_model();
        let mut bytes = to_bytes(&ModelEnvelope::pack("X", &model)).to_vec();
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(ExchangeError::UnsupportedVersion(_))));
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let (model, _) = trained_model();
        let bytes = to_bytes(&ModelEnvelope::pack("SCHEMA", &model));
        for cut in [0, 3, 5, 10, 20, bytes.len() - 1] {
            let result = from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn tampered_range_rejected() {
        let (model, _) = trained_model();
        let mut envelope = ModelEnvelope::pack("X", &model);
        envelope.linkability_range = f64::NAN;
        assert!(matches!(
            from_bytes(&to_bytes(&envelope)),
            Err(ExchangeError::MalformedShape(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected_in_json() {
        let (model, _) = trained_model();
        let mut envelope = ModelEnvelope::pack("X", &model);
        envelope.dim = 99;
        let json = to_json(&envelope).unwrap();
        assert!(matches!(from_json(&json), Err(ExchangeError::MalformedShape(_))));
    }

    #[test]
    fn to_pca_assesses_identically() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("X", &model);
        let (pca, range) = to_pca(&envelope).unwrap();
        let errs = pca.reconstruction_errors(&data);
        let native = model.reconstruction_errors(&data);
        for (a, b) in errs.iter().zip(native.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(range, model.linkability_range());
    }

    #[test]
    fn unicode_schema_names_survive() {
        let (model, _) = trained_model();
        let envelope = ModelEnvelope::pack("Bestellungen-Köln-北京", &model);
        let back = from_bytes(&to_bytes(&envelope)).unwrap();
        assert_eq!(back.schema_name, "Bestellungen-Köln-北京");
    }
}
