//! Model exchange: serialize local encoder–decoders for distribution.
//!
//! Collaborative scoping's deployment story (Section 3, phase III) is that
//! organizations exchange **models, not data**: each participant trains
//! `M_k = {μ_k, PC_k, l_k}` locally and publishes only that. This module
//! provides the wire formats for the exchange:
//!
//! - **JSON** ([`to_json`] / [`from_json`]) — human-auditable, the format
//!   an organization's review process would inspect before publishing.
//!   Documents carry a `format_version` field; absent means version 1.
//! - **binary** ([`to_bytes`] / [`from_bytes`]) — a compact versioned
//!   codec (magic `CSEX`, little-endian) for the actual transfer; a
//!   768-dimensional model with 20 components is ≈135 KB instead of
//!   ≈420 KB of JSON.
//!
//! Both codecs are implemented in-workspace (the JSON side on
//! [`crate::json`], the binary side on plain `Vec<u8>` framing) per the
//! hermetic dependency policy. Both validate on ingest: a corrupted or
//! truncated payload is a typed [`ExchangeError`], never a panic, because
//! the payload crosses a trust boundary.

use crate::json::{self, JsonValue};
use crate::local_model::LocalModel;
use cs_linalg::{Matrix, Pca};

/// Magic prefix of the binary format.
pub const MAGIC: &[u8; 4] = b"CSEX";
/// Current exchange format version (shared by the binary and JSON framings).
pub const VERSION: u16 = 1;

/// Errors raised while decoding an exchanged model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The payload does not start with the `CSEX` magic.
    BadMagic,
    /// The payload's version is not supported.
    UnsupportedVersion(u16),
    /// The payload ended before the declared content.
    Truncated,
    /// A declared shape is internally inconsistent.
    MalformedShape(String),
    /// JSON (de)serialization failed.
    Json(String),
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::BadMagic => write!(f, "payload is not a CSEX model"),
            ExchangeError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            ExchangeError::Truncated => write!(f, "payload truncated"),
            ExchangeError::MalformedShape(s) => write!(f, "malformed payload: {s}"),
            ExchangeError::Json(s) => write!(f, "JSON error: {s}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// The exchanged form of a local model: exactly the paper's
/// `M_k = {μ_k, PC_k, l_k}` triple plus provenance.
#[derive(Debug, Clone)]
pub struct ModelEnvelope {
    /// Publishing schema's display name (provenance, not identity).
    pub schema_name: String,
    /// The publisher's schema index within the matching federation.
    pub schema_index: usize,
    /// Signature dimensionality the model expects.
    pub dim: usize,
    /// Local signature mean `μ_k`.
    pub mean: Vec<f64>,
    /// Principal components `PC_k` (rows).
    pub components: Matrix,
    /// Local linkability range `l_k`.
    pub linkability_range: f64,
}

impl ModelEnvelope {
    /// Packs a trained local model for exchange.
    pub fn pack(schema_name: impl Into<String>, model: &LocalModel) -> Self {
        Self {
            schema_name: schema_name.into(),
            schema_index: model.schema_index(),
            dim: model.pca().dim(),
            mean: model.pca().mean().to_vec(),
            components: model.pca().components().clone(),
            linkability_range: model.linkability_range(),
        }
    }

    /// Validates internal consistency (shapes, finiteness).
    pub fn validate(&self) -> Result<(), ExchangeError> {
        if self.mean.len() != self.dim {
            return Err(ExchangeError::MalformedShape(format!(
                "mean length {} != dim {}",
                self.mean.len(),
                self.dim
            )));
        }
        if self.components.cols() != self.dim {
            return Err(ExchangeError::MalformedShape(format!(
                "component width {} != dim {}",
                self.components.cols(),
                self.dim
            )));
        }
        if self.components.rows() == 0 {
            return Err(ExchangeError::MalformedShape("no components".into()));
        }
        if !self.linkability_range.is_finite() || self.linkability_range < 0.0 {
            return Err(ExchangeError::MalformedShape(format!(
                "linkability range {} invalid",
                self.linkability_range
            )));
        }
        if self.mean.iter().any(|x| !x.is_finite()) || self.components.has_non_finite() {
            return Err(ExchangeError::MalformedShape("non-finite values".into()));
        }
        Ok(())
    }

    /// Reconstruction MSE of foreign signatures under this exchanged model
    /// — Definition 4 evaluated by the *receiving* schema.
    pub fn reconstruction_errors(&self, foreign: &Matrix) -> Vec<f64> {
        assert_eq!(foreign.cols(), self.dim, "dimension mismatch");
        let centered = foreign.sub_row_vector(&self.mean);
        let z = centered.matmul_transposed(&self.components);
        let decoded = z.matmul(&self.components);
        centered
            .rows_iter()
            .zip(decoded.rows_iter())
            .map(|(a, b)| cs_linalg::vecops::mse(a, b))
            .collect()
    }

    /// Which foreign signatures this exchanged model accepts as linkable.
    pub fn assess(&self, foreign: &Matrix) -> Vec<bool> {
        self.reconstruction_errors(foreign)
            .into_iter()
            .map(|e| e <= self.linkability_range)
            .collect()
    }
}

/// Serializes an envelope as a versioned JSON document.
pub fn to_json(envelope: &ModelEnvelope) -> Result<String, ExchangeError> {
    Ok(envelope_to_value(envelope).write())
}

fn envelope_to_value(envelope: &ModelEnvelope) -> JsonValue {
    JsonValue::object(vec![
        ("format_version", JsonValue::Number(VERSION as f64)),
        (
            "schema_name",
            JsonValue::String(envelope.schema_name.clone()),
        ),
        (
            "schema_index",
            JsonValue::Number(envelope.schema_index as f64),
        ),
        ("dim", JsonValue::Number(envelope.dim as f64)),
        ("mean", JsonValue::numbers(&envelope.mean)),
        (
            "components",
            JsonValue::object(vec![
                ("rows", JsonValue::Number(envelope.components.rows() as f64)),
                ("cols", JsonValue::Number(envelope.components.cols() as f64)),
                ("data", JsonValue::numbers(envelope.components.as_slice())),
            ]),
        ),
        (
            "linkability_range",
            JsonValue::Number(envelope.linkability_range),
        ),
    ])
}

/// Parses and validates an envelope from JSON.
pub fn from_json(input: &str) -> Result<ModelEnvelope, ExchangeError> {
    let doc = json::parse(input).map_err(|e| ExchangeError::Json(e.to_string()))?;
    // Version envelope: a missing field means version 1 (documents written
    // before the field existed); anything other than the current version is
    // an explicit error, not a guess.
    if let Some(v) = doc.get("format_version") {
        let v = v
            .as_usize()
            .ok_or_else(|| ExchangeError::Json("format_version is not an integer".into()))?;
        if v != VERSION as usize {
            return Err(ExchangeError::UnsupportedVersion(
                v.min(u16::MAX as usize) as u16
            ));
        }
    }
    let field = |k: &str| {
        doc.get(k)
            .ok_or_else(|| ExchangeError::Json(format!("missing field '{k}'")))
    };
    let bad = |k: &str| ExchangeError::Json(format!("field '{k}' has the wrong type"));

    let schema_name = field("schema_name")?
        .as_str()
        .ok_or_else(|| bad("schema_name"))?;
    let schema_index = field("schema_index")?
        .as_usize()
        .ok_or_else(|| bad("schema_index"))?;
    let dim = field("dim")?.as_usize().ok_or_else(|| bad("dim"))?;
    let mean = field("mean")?.as_f64_vec().ok_or_else(|| bad("mean"))?;
    let comp = field("components")?;
    let rows = comp
        .get("rows")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| bad("components.rows"))?;
    let cols = comp
        .get("cols")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| bad("components.cols"))?;
    let data = comp
        .get("data")
        .and_then(JsonValue::as_f64_vec)
        .ok_or_else(|| bad("components.data"))?;
    if rows.checked_mul(cols) != Some(data.len()) {
        return Err(ExchangeError::MalformedShape(format!(
            "components claim {rows}x{cols} but carry {} values",
            data.len()
        )));
    }
    let linkability_range = field("linkability_range")?
        .as_f64()
        .ok_or_else(|| bad("linkability_range"))?;

    let envelope = ModelEnvelope {
        schema_name: schema_name.to_string(),
        schema_index,
        dim,
        mean,
        components: Matrix::from_vec(rows, cols, data),
        linkability_range,
    };
    envelope.validate()?;
    Ok(envelope)
}

/// Encodes an envelope in the compact binary format (all integers and
/// floats little-endian).
pub fn to_bytes(envelope: &ModelEnvelope) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        64 + envelope.schema_name.len()
            + 8 * (envelope.mean.len() + envelope.components.as_slice().len()),
    );
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(envelope.schema_index as u32).to_le_bytes());
    buf.extend_from_slice(&envelope.linkability_range.to_le_bytes());
    buf.extend_from_slice(&(envelope.schema_name.len() as u32).to_le_bytes());
    buf.extend_from_slice(envelope.schema_name.as_bytes());
    buf.extend_from_slice(&(envelope.dim as u32).to_le_bytes());
    for &x in &envelope.mean {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.extend_from_slice(&(envelope.components.rows() as u32).to_le_bytes());
    for &x in envelope.components.as_slice() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf
}

/// A bounds-checked little-endian reader over a byte slice; every read
/// reports [`ExchangeError::Truncated`] instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExchangeError> {
        let end = self.pos.checked_add(n).ok_or(ExchangeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ExchangeError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16_le(&mut self) -> Result<u16, ExchangeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("length 2"),
        ))
    }

    fn u32_le(&mut self) -> Result<u32, ExchangeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("length 4"),
        ))
    }

    fn f64_le(&mut self) -> Result<f64, ExchangeError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("length 8"),
        ))
    }

    fn f64_vec(&mut self, len: usize) -> Result<Vec<f64>, ExchangeError> {
        // Validate the whole span up front so a huge declared length fails
        // before allocation.
        let raw = self.take(len.checked_mul(8).ok_or(ExchangeError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("length 8")))
            .collect())
    }
}

/// Decodes and validates an envelope from the binary format.
pub fn from_bytes(payload: &[u8]) -> Result<ModelEnvelope, ExchangeError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(ExchangeError::BadMagic);
    }
    let version = r.u16_le()?;
    if version != VERSION {
        return Err(ExchangeError::UnsupportedVersion(version));
    }
    let schema_index = r.u32_le()? as usize;
    let linkability_range = r.f64_le()?;
    let name_len = r.u32_le()? as usize;
    let schema_name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| ExchangeError::MalformedShape("schema name is not UTF-8".into()))?;
    let dim = r.u32_le()? as usize;
    let mean = r.f64_vec(dim)?;
    let n_components = r.u32_le()? as usize;
    let n_values = n_components
        .checked_mul(dim)
        .ok_or_else(|| ExchangeError::MalformedShape("component count overflow".into()))?;
    let data = r.f64_vec(n_values)?;
    let envelope = ModelEnvelope {
        schema_name,
        schema_index,
        dim,
        mean,
        components: Matrix::from_vec(n_components, dim, data),
        linkability_range,
    };
    envelope.validate()?;
    Ok(envelope)
}

/// Rehydrates a received envelope into something assessment code can use
/// alongside natively trained models: the underlying PCA plus range.
///
/// Note the explained-variance bookkeeping is not transferred (it is not
/// part of the paper's `M_k`), so re-truncation is not possible on the
/// receiving side — by design: the publisher chose the generalization.
pub fn to_pca(envelope: &ModelEnvelope) -> Result<(Pca, f64), ExchangeError> {
    envelope.validate()?;
    let n = envelope.components.rows();
    let pca = Pca::from_parts(
        envelope.mean.clone(),
        envelope.components.clone(),
        vec![0.0; n],
        vec![0.0; n],
    )
    .map_err(|e| ExchangeError::MalformedShape(e.to_string()))?;
    Ok((pca, envelope.linkability_range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_model::LocalModel;
    use cs_linalg::pca::ExplainedVariance;
    use cs_linalg::Xoshiro256;

    fn trained_model() -> (LocalModel, Matrix) {
        let mut rng = Xoshiro256::seed_from(11);
        let data = Matrix::from_fn(20, 12, |_, _| rng.next_gaussian());
        let model = LocalModel::train(2, &data, ExplainedVariance::new(0.8).unwrap()).unwrap();
        (model, data)
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("OC-HANA", &model);
        let bytes = to_bytes(&envelope);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.schema_name, "OC-HANA");
        assert_eq!(back.schema_index, 2);
        assert_eq!(back.dim, 12);
        assert_eq!(back.mean, envelope.mean);
        assert_eq!(back.components, envelope.components);
        assert_eq!(back.linkability_range, envelope.linkability_range);
        // Assessment through the envelope matches the native model.
        assert_eq!(back.assess(&data), model.assess(&data));
    }

    #[test]
    fn json_roundtrip() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("OC-Oracle", &model);
        let json = to_json(&envelope).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.assess(&data), model.assess(&data));
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let (model, _) = trained_model();
        let envelope = ModelEnvelope::pack("OC-HANA", &model);
        let back = from_json(&to_json(&envelope).unwrap()).unwrap();
        assert_eq!(back.mean, envelope.mean);
        assert_eq!(back.components, envelope.components);
        assert_eq!(
            back.linkability_range.to_bits(),
            envelope.linkability_range.to_bits()
        );
    }

    #[test]
    fn json_without_format_version_is_accepted_as_v1() {
        let (model, _) = trained_model();
        let json = to_json(&ModelEnvelope::pack("X", &model)).unwrap();
        let legacy = json.replacen("\"format_version\":1,", "", 1);
        assert!(!legacy.contains("format_version"));
        assert!(from_json(&legacy).is_ok());
    }

    #[test]
    fn json_future_version_is_rejected() {
        let (model, _) = trained_model();
        let json = to_json(&ModelEnvelope::pack("X", &model)).unwrap();
        let future = json.replacen("\"format_version\":1", "\"format_version\":7", 1);
        assert!(matches!(
            from_json(&future),
            Err(ExchangeError::UnsupportedVersion(7))
        ));
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let (model, _) = trained_model();
        let envelope = ModelEnvelope::pack("X", &model);
        let bin = to_bytes(&envelope);
        let json = to_json(&envelope).unwrap();
        assert!(bin.len() < json.len(), "{} vs {}", bin.len(), json.len());
    }

    #[test]
    fn corrupted_magic_rejected() {
        let (model, _) = trained_model();
        let mut bytes = to_bytes(&ModelEnvelope::pack("X", &model));
        bytes[0] = b'Z';
        assert!(matches!(from_bytes(&bytes), Err(ExchangeError::BadMagic)));
    }

    #[test]
    fn unsupported_version_rejected() {
        let (model, _) = trained_model();
        let mut bytes = to_bytes(&ModelEnvelope::pack("X", &model));
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(ExchangeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let (model, _) = trained_model();
        let bytes = to_bytes(&ModelEnvelope::pack("SCHEMA", &model));
        for cut in [0, 3, 5, 10, 20, bytes.len() - 1] {
            let result = from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn tampered_range_rejected() {
        let (model, _) = trained_model();
        let mut envelope = ModelEnvelope::pack("X", &model);
        envelope.linkability_range = f64::NAN;
        assert!(matches!(
            from_bytes(&to_bytes(&envelope)),
            Err(ExchangeError::MalformedShape(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected_in_json() {
        let (model, _) = trained_model();
        let mut envelope = ModelEnvelope::pack("X", &model);
        envelope.dim = 99;
        let json = to_json(&envelope).unwrap();
        assert!(matches!(
            from_json(&json),
            Err(ExchangeError::MalformedShape(_))
        ));
    }

    #[test]
    fn to_pca_assesses_identically() {
        let (model, data) = trained_model();
        let envelope = ModelEnvelope::pack("X", &model);
        let (pca, range) = to_pca(&envelope).unwrap();
        let errs = pca.reconstruction_errors(&data);
        let native = model.reconstruction_errors(&data);
        for (a, b) in errs.iter().zip(native.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(range, model.linkability_range());
    }

    #[test]
    fn unicode_schema_names_survive() {
        let (model, _) = trained_model();
        let envelope = ModelEnvelope::pack("Bestellungen-Köln-北京", &model);
        let back = from_bytes(&to_bytes(&envelope)).unwrap();
        assert_eq!(back.schema_name, "Bestellungen-Köln-北京");
        let back_json = from_json(&to_json(&envelope).unwrap()).unwrap();
        assert_eq!(back_json.schema_name, "Bestellungen-Köln-北京");
    }
}
