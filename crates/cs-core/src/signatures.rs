//! Phase I: local signatures.
//!
//! [`SchemaSignatures`] holds one signature matrix per schema (row order =
//! the catalog's canonical element enumeration) plus the id bookkeeping
//! that maps matrix rows back to tables/attributes.

use std::sync::Arc;

use cs_embed::SignatureEncoder;
use cs_linalg::Matrix;
use cs_schema::serialize::serialize_schema_elements;
use cs_schema::{Catalog, ElementId, SerializeOptions};

/// The immutable signature data, shared by every clone of a catalog.
#[derive(Debug)]
struct Inner {
    per_schema: Vec<Matrix>,
    schema_names: Vec<String>,
    dim: usize,
}

/// Per-schema signature matrices for one catalog.
///
/// The matrices are immutable once built and held behind an [`Arc`], so
/// `Clone` is a reference-count bump — cheap enough to hand an owned
/// catalog to every closure the parallel runtime ([`crate::pool`])
/// dispatches, without copying signature data.
#[derive(Debug, Clone)]
pub struct SchemaSignatures {
    inner: Arc<Inner>,
}

impl SchemaSignatures {
    /// Builds from pre-computed per-schema matrices.
    ///
    /// # Panics
    /// If matrices disagree on dimensionality.
    pub fn from_matrices(per_schema: Vec<Matrix>, schema_names: Vec<String>) -> Self {
        assert_eq!(
            per_schema.len(),
            schema_names.len(),
            "name/matrix count mismatch"
        );
        let dim = per_schema
            .iter()
            .map(Matrix::cols)
            .find(|&c| c > 0)
            .unwrap_or(0);
        for m in &per_schema {
            assert!(
                m.cols() == dim || m.rows() == 0,
                "inconsistent signature dimensionality"
            );
        }
        Self {
            inner: Arc::new(Inner {
                per_schema,
                schema_names,
                dim,
            }),
        }
    }

    /// Number of schemas.
    pub fn schema_count(&self) -> usize {
        self.inner.per_schema.len()
    }

    /// Signature dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Schema display names.
    pub fn schema_names(&self) -> &[String] {
        &self.inner.schema_names
    }

    /// Signature matrix of one schema (`|S_k| × dim`).
    pub fn schema(&self, k: usize) -> &Matrix {
        &self.inner.per_schema[k]
    }

    /// Number of elements in schema `k`.
    pub fn schema_len(&self, k: usize) -> usize {
        self.inner.per_schema[k].rows()
    }

    /// Total elements across schemas — `|S|`.
    pub fn total_len(&self) -> usize {
        self.inner.per_schema.iter().map(Matrix::rows).sum()
    }

    /// All signatures stacked into one matrix, schema by schema — the
    /// unified set `S^v⃗` global scoping operates on.
    pub fn unified(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        for m in &self.inner.per_schema {
            out = out.vstack(m);
        }
        if out.is_empty() && out.cols() == 0 {
            Matrix::zeros(0, self.inner.dim)
        } else {
            out
        }
    }

    /// Element ids in unified (stacked) row order.
    pub fn element_ids(&self) -> Vec<ElementId> {
        let mut out = Vec::with_capacity(self.total_len());
        for (k, m) in self.inner.per_schema.iter().enumerate() {
            for e in 0..m.rows() {
                out.push(ElementId::new(k, e));
            }
        }
        out
    }

    /// Unified row index of an element id.
    pub fn row_of(&self, id: ElementId) -> usize {
        let offset: usize = self.inner.per_schema[..id.schema]
            .iter()
            .map(Matrix::rows)
            .sum();
        offset + id.element
    }
}

/// Encodes every element of a catalog with the paper's default
/// serialization (phase I end-to-end).
pub fn encode_catalog(encoder: &SignatureEncoder, catalog: &Catalog) -> SchemaSignatures {
    encode_catalog_with(encoder, catalog, &SerializeOptions::default())
}

/// Encodes with explicit serialization options (signature ablation).
pub fn encode_catalog_with(
    encoder: &SignatureEncoder,
    catalog: &Catalog,
    opts: &SerializeOptions,
) -> SchemaSignatures {
    let mut per_schema = Vec::with_capacity(catalog.schema_count());
    let mut names = Vec::with_capacity(catalog.schema_count());
    for k in 0..catalog.schema_count() {
        let texts = serialize_schema_elements(catalog, k, opts);
        let m = encoder.encode_batch(&texts);
        // encode_batch returns encoder-dim columns even for zero rows.
        per_schema.push(m);
        names.push(catalog.schema(k).name.clone());
    }
    SchemaSignatures::from_matrices(per_schema, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_schema::{Attribute, DataType, Schema, Table};

    fn catalog() -> Catalog {
        Catalog::from_schemas(vec![
            Schema::new(
                "S1",
                vec![Table::new(
                    "CLIENT",
                    vec![
                        Attribute::plain("CID", DataType::Integer),
                        Attribute::plain("NAME", DataType::Varchar(None)),
                    ],
                )],
            ),
            Schema::new(
                "S2",
                vec![Table::new(
                    "CUSTOMER",
                    vec![Attribute::plain("ID", DataType::Integer)],
                )],
            ),
        ])
    }

    #[test]
    fn encode_catalog_shapes() {
        let enc = SignatureEncoder::default();
        let sigs = encode_catalog(&enc, &catalog());
        assert_eq!(sigs.schema_count(), 2);
        assert_eq!(sigs.dim(), 768);
        assert_eq!(sigs.schema_len(0), 3); // 2 attrs + 1 table
        assert_eq!(sigs.schema_len(1), 2);
        assert_eq!(sigs.total_len(), 5);
        assert_eq!(sigs.unified().shape(), (5, 768));
        assert_eq!(sigs.schema_names(), &["S1".to_string(), "S2".to_string()]);
    }

    #[test]
    fn element_ids_align_with_unified_rows() {
        let enc = SignatureEncoder::default();
        let c = catalog();
        let sigs = encode_catalog(&enc, &c);
        let ids = sigs.element_ids();
        assert_eq!(ids.len(), 5);
        let unified = sigs.unified();
        for (row, id) in ids.iter().enumerate() {
            assert_eq!(sigs.row_of(*id), row);
            assert_eq!(unified.row(row), sigs.schema(id.schema).row(id.element));
        }
    }

    #[test]
    fn signatures_match_direct_encoding() {
        let enc = SignatureEncoder::default();
        let c = catalog();
        let sigs = encode_catalog(&enc, &c);
        let expected = enc.encode("NAME CLIENT VARCHAR");
        let id = c.attribute_id("S1", "CLIENT", "NAME").unwrap();
        assert_eq!(sigs.schema(0).row(id.element), expected.as_slice());
    }

    #[test]
    fn empty_catalog() {
        let enc = SignatureEncoder::default();
        let sigs = encode_catalog(&enc, &Catalog::new());
        assert_eq!(sigs.schema_count(), 0);
        assert_eq!(sigs.total_len(), 0);
    }

    #[test]
    fn clone_shares_signature_data() {
        let enc = SignatureEncoder::default();
        let sigs = encode_catalog(&enc, &catalog());
        let cloned = sigs.clone();
        assert!(Arc::ptr_eq(&sigs.inner, &cloned.inner));
    }

    #[test]
    #[should_panic(expected = "name/matrix count mismatch")]
    fn mismatched_names_panics() {
        SchemaSignatures::from_matrices(vec![Matrix::zeros(1, 4)], vec![]);
    }
}
