//! The *global scoping* baseline (Section 2.4): rank → sort → filter.
//!
//! One outlier detector scores the **unified** signature set of all
//! schemas; the `p ∈ (0..1)` fraction with the lowest scores is kept as
//! linkable. `p = 1` keeps everything, `p = 0` keeps nothing.

use crate::error::ScopingError;
use crate::outcome::ScopingOutcome;
use crate::signatures::SchemaSignatures;
use cs_oda::OutlierDetector;

/// Global scoping with a pluggable outlier detector.
pub struct GlobalScoper<D: OutlierDetector> {
    detector: D,
    keep_fraction: f64,
}

impl<D: OutlierDetector> GlobalScoper<D> {
    /// Wraps a detector. The default keep fraction (used by the
    /// [`crate::Scoper`] trait) is the paper's `p = 0.5`; override with
    /// [`Self::with_keep_fraction`] or pass `p` explicitly to
    /// [`Self::scope_at`].
    pub fn new(detector: D) -> Self {
        Self {
            detector,
            keep_fraction: 0.5,
        }
    }

    /// Sets the keep fraction `p ∈ [0, 1]` used when scoping through the
    /// [`crate::Scoper`] trait.
    pub fn with_keep_fraction(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "p must lie in [0, 1]"
        );
        self.keep_fraction = p;
        self
    }

    /// The configured keep fraction.
    pub fn keep_fraction(&self) -> f64 {
        self.keep_fraction
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Outlier scores over the unified signature set, in unified row order.
    pub fn scores(&self, signatures: &SchemaSignatures) -> Result<Vec<f64>, ScopingError> {
        if signatures.total_len() == 0 {
            return Ok(Vec::new());
        }
        Ok(self.detector.score(&signatures.unified()))
    }

    /// Scopes streamlined schemas at threshold `p` (step 1–3 of Section 2.4).
    ///
    /// # Errors
    /// [`ScopingError::InvalidParameter`] when `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn scope_at(
        &self,
        signatures: &SchemaSignatures,
        p: f64,
    ) -> Result<ScopingOutcome, ScopingError> {
        if !((0.0..=1.0).contains(&p) && p.is_finite()) {
            return Err(ScopingError::InvalidParameter {
                name: "p",
                value: p,
            });
        }
        let scores = self.scores(signatures)?;
        Ok(scope_from_scores(
            format!("Scoping[{}] p={p}", self.detector.name()),
            signatures,
            &scores,
            p,
        ))
    }
}

/// Filters pre-computed outlier scores at threshold `p`: keeps the
/// `⌊p · n⌉` elements with the lowest scores. Exposed separately so one
/// scoring pass can serve a whole `p` sweep (the AUC metrics need every
/// threshold).
pub fn scope_from_scores(
    method: impl Into<String>,
    signatures: &SchemaSignatures,
    scores: &[f64],
    p: f64,
) -> ScopingOutcome {
    assert!(
        (0.0..=1.0).contains(&p) && p.is_finite(),
        "p must lie in [0, 1]"
    );
    let n = scores.len();
    assert_eq!(n, signatures.total_len(), "score/signature count mismatch");
    let keep_count = ((p * n as f64).round() as usize).min(n);

    // Sort indices ascending by outlier score (stable for ties by index).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut decisions = vec![false; n];
    for &i in order.iter().take(keep_count) {
        decisions[i] = true;
    }
    ScopingOutcome::new(method, signatures.element_ids(), decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Matrix;
    use cs_oda::ZScoreDetector;

    /// Two "schemas": a tight cluster and one containing an outlier row.
    fn sigs() -> SchemaSignatures {
        let s1 = Matrix::from_rows(&[vec![0.0, 0.1], vec![0.1, 0.0], vec![0.05, 0.05]]);
        let s2 = Matrix::from_rows(&[vec![0.02, 0.03], vec![6.0, 6.0]]);
        SchemaSignatures::from_matrices(vec![s1, s2], vec!["A".into(), "B".into()])
    }

    #[test]
    fn p_one_keeps_everything_p_zero_keeps_nothing() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        let all = scoper.scope_at(&s, 1.0).unwrap();
        assert_eq!(all.kept_count(), 5);
        let none = scoper.scope_at(&s, 0.0).unwrap();
        assert_eq!(none.kept_count(), 0);
    }

    #[test]
    fn outlier_is_pruned_first() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        let outcome = scoper.scope_at(&s, 0.8).unwrap(); // keep 4 of 5
        assert_eq!(outcome.kept_count(), 4);
        // The outlier row is schema 1, element 1.
        assert_eq!(
            outcome.decision_for(cs_schema::ElementId::new(1, 1)),
            Some(false)
        );
    }

    #[test]
    fn keep_count_rounds() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        // 0.5 of 5 = 2.5 → rounds to 2 (banker-free f64 round: 2.5 → 3).
        let outcome = scoper.scope_at(&s, 0.5).unwrap();
        assert_eq!(outcome.kept_count(), 3);
        let outcome = scoper.scope_at(&s, 0.4).unwrap(); // 2.0 → 2
        assert_eq!(outcome.kept_count(), 2);
    }

    #[test]
    fn monotone_in_p() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        let mut last = 0;
        for p in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let kept = scoper.scope_at(&s, p).unwrap().kept_count();
            assert!(kept >= last, "kept count must grow with p");
            last = kept;
        }
    }

    #[test]
    fn nested_keeps_in_p() {
        // The kept set at lower p is a subset of the kept set at higher p.
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        let small = scoper.scope_at(&s, 0.4).unwrap().kept();
        let large = scoper.scope_at(&s, 0.8).unwrap().kept();
        assert!(small.is_subset(&large));
    }

    #[test]
    fn empty_signatures_give_empty_outcome() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = SchemaSignatures::from_matrices(vec![], vec![]);
        let outcome = scoper.scope_at(&s, 0.5).unwrap();
        assert!(outcome.is_empty());
    }

    #[test]
    #[should_panic(expected = "p must lie in")]
    fn out_of_range_p_panics() {
        let s = sigs();
        scope_from_scores("x", &s, &[0.0; 5], 1.5);
    }

    #[test]
    fn scope_at_rejects_bad_p_as_typed_error() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let s = sigs();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = scoper.scope_at(&s, bad).unwrap_err();
            assert!(
                matches!(err, ScopingError::InvalidParameter { name: "p", .. }),
                "p={bad}: {err:?}"
            );
        }
    }

    #[test]
    fn method_name_mentions_detector() {
        let scoper = GlobalScoper::new(ZScoreDetector);
        let outcome = scoper.scope_at(&sigs(), 0.5).unwrap();
        assert!(outcome.method.contains("Z-Score"));
    }
}
