//! Phase II: local self-supervised models (Algorithm 1).
//!
//! A [`LocalModel`] is the triple the paper distributes between schemas:
//! `M_k = {μ_k, PC_k, l_k}` — the local signature mean, the principal
//! components retained at the global explained variance `v`, and the
//! **local linkability range** `l_k` = the largest reconstruction error
//! among the model's own training signatures (Definition 3).

use crate::error::ScopingError;
use cs_linalg::pca::ExplainedVariance;
use cs_linalg::{Matrix, Pca, PcaConfig, PcaSolver};

/// Pre-fit input guards, shared with the sweep (`crate::sweep`) so the
/// strict and graceful paths classify degenerate schemas identically:
/// empty → [`ScopingError::EmptySchema`], NaN/inf →
/// [`ScopingError::NonFiniteSignature`], a single element →
/// [`ScopingError::DegenerateSchema`].
pub(crate) fn check_trainable(
    schema_index: usize,
    signatures: &Matrix,
) -> Result<(), ScopingError> {
    if signatures.rows() == 0 {
        return Err(ScopingError::EmptySchema {
            schema: schema_index,
        });
    }
    if let Some((element, _)) = signatures.first_non_finite() {
        return Err(ScopingError::NonFiniteSignature {
            schema: schema_index,
            element,
        });
    }
    if signatures.rows() == 1 {
        return Err(ScopingError::DegenerateSchema {
            schema: schema_index,
            elements: 1,
        });
    }
    Ok(())
}

/// Post-fit spectrum guard: zero total variance (all signatures
/// identical up to rounding) collapses `l_k` to 0, so the model would
/// link only exact copies — [`ScopingError::RankDeficient`]. The
/// threshold is relative to the raw signal energy because centering
/// identical rows leaves ~1-ulp residue, never an exact zero.
pub(crate) fn check_spectrum(
    schema_index: usize,
    signatures: &Matrix,
    pca: &Pca,
) -> Result<(), ScopingError> {
    let total: f64 = pca.singular_values().iter().map(|s| s * s).sum();
    let energy: f64 = signatures
        .rows_iter()
        .map(|r| r.iter().map(|x| x * x).sum::<f64>())
        .sum();
    if total <= energy.max(1.0) * 1e-24 {
        return Err(ScopingError::RankDeficient {
            schema: schema_index,
        });
    }
    Ok(())
}

/// A trained local encoder–decoder for one schema.
#[derive(Debug, Clone)]
pub struct LocalModel {
    schema_index: usize,
    pca: Pca,
    linkability_range: f64,
}

impl LocalModel {
    /// Trains on one schema's signatures at explained variance `v`
    /// (Algorithm 1, lines 3–15).
    ///
    /// # Errors
    /// Degenerate inputs yield typed errors, never panics:
    /// [`ScopingError::EmptySchema`] (no elements),
    /// [`ScopingError::NonFiniteSignature`] (NaN/inf entries),
    /// [`ScopingError::DegenerateSchema`] (a single element),
    /// [`ScopingError::RankDeficient`] (zero signature variance).
    pub fn train(
        schema_index: usize,
        signatures: &Matrix,
        v: ExplainedVariance,
    ) -> Result<Self, ScopingError> {
        Self::train_with(schema_index, signatures, v, PcaSolver::Auto)
    }

    /// [`Self::train`] with the PCA eigensolver pinned — the hook
    /// `CollaborativeScoper::builder().pca_solver(..)` threads through.
    /// Every solver honors the same determinism contract, so this only
    /// trades fitting speed against which numerical path runs.
    ///
    /// # Errors
    /// As [`Self::train`].
    pub fn train_with(
        schema_index: usize,
        signatures: &Matrix,
        v: ExplainedVariance,
        solver: PcaSolver,
    ) -> Result<Self, ScopingError> {
        check_trainable(schema_index, signatures)?;
        let config = PcaConfig::new().with_variance(v).with_solver(solver);
        let pca = Pca::fit_with(signatures, config)?;
        check_spectrum(schema_index, signatures, &pca)?;
        let own_errors = pca.reconstruction_errors(signatures);
        let linkability_range = own_errors.iter().copied().fold(0.0, f64::max);
        Ok(Self {
            schema_index,
            pca,
            linkability_range,
        })
    }

    /// Index of the schema this model was trained on.
    pub fn schema_index(&self) -> usize {
        self.schema_index
    }

    /// The local linkability range `l_k`.
    pub fn linkability_range(&self) -> f64 {
        self.linkability_range
    }

    /// Number of principal components retained for the requested variance.
    pub fn n_components(&self) -> usize {
        self.pca.n_components()
    }

    /// The underlying PCA encoder–decoder (`μ_k`, `PC_k`).
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Reconstruction MSE of foreign signatures under this model
    /// (the score of Definition 4).
    pub fn reconstruction_errors(&self, foreign: &Matrix) -> Vec<f64> {
        self.pca.reconstruction_errors(foreign)
    }

    /// Definition 4: which foreign signatures this model recognizes as
    /// linkable (`MSE ≤ l_k`).
    pub fn assess(&self, foreign: &Matrix) -> Vec<bool> {
        self.reconstruction_errors(foreign)
            .into_iter()
            .map(|e| e <= self.linkability_range)
            .collect()
    }

    /// Like [`Self::assess`] with a relaxed range `l_k + ε` — the variant
    /// the paper discusses (and rejects) after Definition 3; kept for the
    /// ablation bench.
    pub fn assess_relaxed(&self, foreign: &Matrix, epsilon: f64) -> Vec<bool> {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        self.reconstruction_errors(foreign)
            .into_iter()
            .map(|e| e <= self.linkability_range + epsilon)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    fn v(x: f64) -> ExplainedVariance {
        ExplainedVariance::new(x).unwrap()
    }

    /// Signatures concentrated on a low-dimensional subspace.
    fn subspace_data(n: usize, dim: usize, rank: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        let basis: Vec<Vec<f64>> = (0..rank)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = vec![0.0; dim];
            for b in &basis {
                let c = rng.next_gaussian();
                cs_linalg::vecops::axpy(&mut row, c, b);
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn own_elements_always_pass_at_any_variance() {
        let data = subspace_data(30, 20, 5, 1);
        for variance in [0.99, 0.7, 0.4, 0.1] {
            let model = LocalModel::train(0, &data, v(variance)).unwrap();
            let own = model.assess(&data);
            assert!(
                own.iter().all(|&b| b),
                "v={variance}: an own element failed"
            );
        }
    }

    #[test]
    fn linkability_range_is_max_own_error() {
        let data = subspace_data(25, 15, 6, 2);
        let model = LocalModel::train(3, &data, v(0.5)).unwrap();
        let max_err = model
            .reconstruction_errors(&data)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!((model.linkability_range() - max_err).abs() < 1e-15);
        assert_eq!(model.schema_index(), 3);
    }

    #[test]
    fn foreign_on_manifold_accepted_off_manifold_rejected() {
        let data = subspace_data(40, 24, 3, 3);
        let model = LocalModel::train(0, &data, v(0.95)).unwrap();
        // On-manifold foreign point: a combination of training rows.
        let mut on = vec![0.0; 24];
        cs_linalg::vecops::axpy(&mut on, 0.5, data.row(0));
        cs_linalg::vecops::axpy(&mut on, 0.5, data.row(1));
        // Off-manifold: orthogonal-ish random direction, large.
        let mut rng = Xoshiro256::seed_from(99);
        let off: Vec<f64> = (0..24).map(|_| rng.next_gaussian() * 5.0).collect();
        let foreign = Matrix::from_rows(&[on, off]);
        let verdicts = model.assess(&foreign);
        assert!(verdicts[0], "on-manifold point should be recognized");
        assert!(!verdicts[1], "off-manifold point should be rejected");
    }

    #[test]
    fn lower_variance_widens_linkability_range() {
        // Fewer components → larger own reconstruction errors → larger l_k.
        let data = subspace_data(30, 20, 10, 4);
        let strict = LocalModel::train(0, &data, v(0.95)).unwrap();
        let loose = LocalModel::train(0, &data, v(0.3)).unwrap();
        assert!(loose.linkability_range() >= strict.linkability_range());
        assert!(loose.n_components() <= strict.n_components());
    }

    #[test]
    fn relaxed_assessment_is_superset() {
        let data = subspace_data(20, 12, 4, 5);
        let model = LocalModel::train(0, &data, v(0.6)).unwrap();
        let mut rng = Xoshiro256::seed_from(7);
        let foreign = Matrix::from_fn(10, 12, |_, _| rng.next_gaussian());
        let strict = model.assess(&foreign);
        let relaxed = model.assess_relaxed(&foreign, 0.05);
        for (s, r) in strict.iter().zip(relaxed.iter()) {
            assert!(!s || *r, "strict-accepted must stay accepted when relaxed");
        }
    }

    #[test]
    fn empty_schema_is_typed_error() {
        let err = LocalModel::train(4, &Matrix::zeros(0, 8), v(0.5)).unwrap_err();
        assert_eq!(err, ScopingError::EmptySchema { schema: 4 });
    }

    #[test]
    fn singleton_schema_is_typed_error() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let err = LocalModel::train(2, &data, v(0.5)).unwrap_err();
        assert_eq!(
            err,
            ScopingError::DegenerateSchema {
                schema: 2,
                elements: 1
            }
        );
    }

    #[test]
    fn non_finite_signature_is_typed_error_with_offender() {
        let mut data = subspace_data(6, 5, 2, 9);
        data[(3, 1)] = f64::NAN;
        let err = LocalModel::train(1, &data, v(0.5)).unwrap_err();
        assert_eq!(
            err,
            ScopingError::NonFiniteSignature {
                schema: 1,
                element: 3
            }
        );
        data[(3, 1)] = f64::NEG_INFINITY;
        let err = LocalModel::train(1, &data, v(0.5)).unwrap_err();
        assert!(matches!(err, ScopingError::NonFiniteSignature { .. }));
    }

    #[test]
    fn zero_variance_schema_is_rank_deficient() {
        // All-duplicate signatures: a real catalog condition (identical
        // serialized metadata), not just adversarial input.
        let data = Matrix::from_rows(&vec![vec![0.25, -0.5, 0.75, 0.1]; 6]);
        let err = LocalModel::train(3, &data, v(0.8)).unwrap_err();
        assert_eq!(err, ScopingError::RankDeficient { schema: 3 });
    }

    #[test]
    fn near_degenerate_but_real_variance_still_trains() {
        // Tiny-but-genuine variance must NOT be misclassified as
        // rank-deficient by the relative threshold.
        let mut rng = Xoshiro256::seed_from(13);
        let base: Vec<f64> = (0..6).map(|_| rng.next_gaussian()).collect();
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|_| {
                base.iter()
                    .map(|&x| x + rng.next_gaussian() * 1e-6)
                    .collect()
            })
            .collect();
        let model = LocalModel::train(0, &Matrix::from_rows(&rows), v(0.9)).unwrap();
        assert!(model.linkability_range() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_panics() {
        let data = subspace_data(5, 6, 2, 8);
        let model = LocalModel::train(0, &data, v(0.5)).unwrap();
        model.assess_relaxed(&data, -0.1);
    }
}
