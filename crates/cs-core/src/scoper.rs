//! The unified [`Scoper`] interface.
//!
//! Every scoping strategy in the workspace — the paper's collaborative
//! scoper (linear and neural), the global-scoping baseline, and the
//! two-schema source-to-target mode — answers the same question: *which
//! catalog elements are worth handing to a matcher?* This trait captures
//! that question once, so experiment drivers and downstream pipelines can
//! hold a `&dyn Scoper` and swap strategies without caring how the
//! decisions are produced.

use crate::collaborative::CollaborativeScoper;
use crate::error::ScopingError;
use crate::nonlinear::NeuralCollaborativeScoper;
use crate::outcome::ScopingOutcome;
use crate::pairwise::SourceToTargetScoper;
use crate::scoping::GlobalScoper;
use crate::signatures::SchemaSignatures;
use cs_oda::OutlierDetector;

/// Anything that can turn a signature catalog into keep/prune decisions.
///
/// ```
/// use cs_core::{CollaborativeScoper, Scoper, SchemaSignatures};
/// use cs_linalg::{Matrix, Xoshiro256};
///
/// let mut rng = Xoshiro256::seed_from(5);
/// let mats: Vec<Matrix> =
///     (0..2).map(|_| Matrix::from_fn(8, 6, |_, _| rng.next_gaussian())).collect();
/// let sigs = SchemaSignatures::from_matrices(mats, vec!["A".into(), "B".into()]);
///
/// let scoper: &dyn Scoper = &CollaborativeScoper::new(0.8);
/// let outcome = scoper.scope(&sigs).unwrap();
/// assert_eq!(outcome.len(), 16);
/// ```
pub trait Scoper {
    /// Assesses every element of the catalog, producing keep/prune
    /// decisions in unified element order.
    fn scope(&self, catalog: &SchemaSignatures) -> Result<ScopingOutcome, ScopingError>;
}

impl Scoper for CollaborativeScoper {
    fn scope(&self, catalog: &SchemaSignatures) -> Result<ScopingOutcome, ScopingError> {
        Ok(self.run(catalog)?.outcome)
    }
}

impl Scoper for NeuralCollaborativeScoper {
    fn scope(&self, catalog: &SchemaSignatures) -> Result<ScopingOutcome, ScopingError> {
        Ok(self.run(catalog)?.outcome)
    }
}

impl<D: OutlierDetector> Scoper for GlobalScoper<D> {
    fn scope(&self, catalog: &SchemaSignatures) -> Result<ScopingOutcome, ScopingError> {
        self.scope_at(catalog, self.keep_fraction())
    }
}

impl Scoper for SourceToTargetScoper {
    /// Interprets the catalog as a source/target pair (exactly two
    /// schemas) and prunes both sides against each other's model.
    fn scope(&self, catalog: &SchemaSignatures) -> Result<ScopingOutcome, ScopingError> {
        let k = catalog.schema_count();
        if k < 2 {
            return Err(ScopingError::TooFewSchemas { found: k });
        }
        if k != 2 {
            return Err(ScopingError::InvalidParameter {
                name: "schema_count",
                value: k as f64,
            });
        }
        let (src, tgt) = self.prune_both(catalog.schema(0), catalog.schema(1))?;
        let decisions: Vec<bool> = src.keep_source.into_iter().chain(tgt.keep_source).collect();
        Ok(ScopingOutcome::new(
            "SourceToTarget[PCA]".to_string(),
            catalog.element_ids(),
            decisions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::{Matrix, Xoshiro256};
    use cs_oda::ZScoreDetector;

    fn two_schemas() -> SchemaSignatures {
        let dim = 10;
        let mut rng = Xoshiro256::seed_from(21);
        let basis: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let make = |n: usize, rng: &mut Xoshiro256| {
            Matrix::from_rows(
                &(0..n)
                    .map(|_| {
                        let mut row = vec![0.0; dim];
                        for b in &basis {
                            cs_linalg::vecops::axpy(&mut row, rng.next_gaussian(), b);
                        }
                        row
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let a = make(12, &mut rng);
        let b = make(15, &mut rng);
        SchemaSignatures::from_matrices(vec![a, b], vec!["A".into(), "B".into()])
    }

    #[test]
    fn trait_objects_cover_every_strategy() {
        let sigs = two_schemas();
        let collaborative = CollaborativeScoper::new(0.8);
        let global = GlobalScoper::new(ZScoreDetector).with_keep_fraction(0.5);
        let pairwise = SourceToTargetScoper::new(0.8);
        let scopers: Vec<&dyn Scoper> = vec![&collaborative, &global, &pairwise];
        for scoper in scopers {
            let outcome = scoper.scope(&sigs).unwrap();
            assert_eq!(outcome.len(), 27);
        }
    }

    #[test]
    fn trait_scope_matches_inherent_run() {
        let sigs = two_schemas();
        let scoper = CollaborativeScoper::new(0.8);
        let via_trait = Scoper::scope(&scoper, &sigs).unwrap();
        let via_run = scoper.run(&sigs).unwrap().outcome;
        assert_eq!(via_trait, via_run);
    }

    #[test]
    fn global_scoper_uses_configured_keep_fraction() {
        let sigs = two_schemas();
        let scoper = GlobalScoper::new(ZScoreDetector).with_keep_fraction(1.0);
        assert_eq!(Scoper::scope(&scoper, &sigs).unwrap().kept_count(), 27);
        let scoper = GlobalScoper::new(ZScoreDetector).with_keep_fraction(0.0);
        assert_eq!(Scoper::scope(&scoper, &sigs).unwrap().kept_count(), 0);
    }

    #[test]
    fn pairwise_matches_collaborative_two_schema_case() {
        let sigs = two_schemas();
        let pairwise = SourceToTargetScoper::new(0.8).scope(&sigs).unwrap();
        let collab = CollaborativeScoper::new(0.8).scope(&sigs).unwrap();
        assert_eq!(pairwise.decisions, collab.decisions);
    }

    #[test]
    fn pairwise_rejects_wrong_schema_counts() {
        let one = SchemaSignatures::from_matrices(
            vec![Matrix::from_rows(&[vec![1.0, 2.0]])],
            vec!["only".into()],
        );
        assert!(matches!(
            SourceToTargetScoper::new(0.8).scope(&one),
            Err(ScopingError::TooFewSchemas { found: 1 })
        ));
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let three = SchemaSignatures::from_matrices(
            vec![m.clone(), m.clone(), m],
            vec!["a".into(), "b".into(), "c".into()],
        );
        assert!(matches!(
            SourceToTargetScoper::new(0.8).scope(&three),
            Err(ScopingError::InvalidParameter {
                name: "schema_count",
                ..
            })
        ));
    }
}
