//! Typed errors for the scoping pipeline.

use cs_linalg::{PcaRehydrateError, SvdError};

/// Errors surfaced by scoping and collaborative scoping.
#[derive(Debug, Clone, PartialEq)]
pub enum ScopingError {
    /// A schema has no elements — a local model cannot be trained on it.
    EmptySchema {
        /// Index of the offending schema in the catalog.
        schema: usize,
    },
    /// A schema has too few elements to train a meaningful local model:
    /// a single signature centers to the zero vector, its PCA carries no
    /// variance, and the linkability range `l_k` collapses to 0.
    DegenerateSchema {
        /// Index of the offending schema in the catalog.
        schema: usize,
        /// How many elements it has.
        elements: usize,
    },
    /// A signature contains a NaN or infinite entry; reconstruction
    /// errors computed from it would silently poison every decision.
    NonFiniteSignature {
        /// Index of the offending schema in the catalog.
        schema: usize,
        /// Row (element index within the schema) of the first offender.
        element: usize,
    },
    /// A schema's signatures carry no variance at all (e.g. every
    /// signature is identical), so its local model would accept only
    /// exact copies — a garbage linkability range, not a model.
    RankDeficient {
        /// Index of the offending schema in the catalog.
        schema: usize,
    },
    /// Collaborative scoping needs at least two schemas (there is no
    /// "other" model to assess against otherwise).
    TooFewSchemas {
        /// Number of schemas found.
        found: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The explained-variance knob `v` was outside `(0, 1]`.
    InvalidVariance {
        /// Offending value.
        value: f64,
    },
    /// Numerical decomposition failed.
    Svd(SvdError),
    /// A PCA received over the wire failed shape validation on
    /// rehydration (`Pca::from_parts`).
    PcaRehydrate(PcaRehydrateError),
    /// A closure dispatched to the parallel runtime panicked; the panic
    /// was caught inside the worker and surfaced here instead of
    /// poisoning or hanging the pool.
    WorkerPanicked {
        /// The panic payload, stringified.
        detail: String,
    },
}

impl std::fmt::Display for ScopingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScopingError::EmptySchema { schema } => {
                write!(
                    f,
                    "schema #{schema} has no elements to train a local model on"
                )
            }
            ScopingError::DegenerateSchema { schema, elements } => {
                write!(
                    f,
                    "schema #{schema} has only {elements} element(s) — too few to train a local model"
                )
            }
            ScopingError::NonFiniteSignature { schema, element } => {
                write!(
                    f,
                    "schema #{schema}, element #{element}: signature contains a NaN/inf entry"
                )
            }
            ScopingError::RankDeficient { schema } => {
                write!(
                    f,
                    "schema #{schema} is rank-deficient: its signatures carry no variance"
                )
            }
            ScopingError::TooFewSchemas { found } => {
                write!(f, "collaborative scoping needs ≥ 2 schemas, found {found}")
            }
            ScopingError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
            ScopingError::InvalidVariance { value } => {
                write!(f, "explained variance v = {value} must lie in (0, 1]")
            }
            ScopingError::Svd(e) => write!(f, "decomposition failed: {e}"),
            ScopingError::PcaRehydrate(e) => write!(f, "malformed PCA model: {e}"),
            ScopingError::WorkerPanicked { detail } => {
                write!(f, "a parallel worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ScopingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScopingError::Svd(e) => Some(e),
            ScopingError::PcaRehydrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SvdError> for ScopingError {
    fn from(e: SvdError) -> Self {
        ScopingError::Svd(e)
    }
}

impl From<PcaRehydrateError> for ScopingError {
    fn from(e: PcaRehydrateError) -> Self {
        ScopingError::PcaRehydrate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ScopingError::EmptySchema { schema: 2 }
            .to_string()
            .contains("#2"));
        assert!(ScopingError::TooFewSchemas { found: 1 }
            .to_string()
            .contains("found 1"));
        assert!(ScopingError::InvalidParameter {
            name: "p",
            value: 1.5
        }
        .to_string()
        .contains("p = 1.5"));
        assert!(ScopingError::InvalidVariance { value: 1.5 }
            .to_string()
            .contains("v = 1.5"));
        assert!(ScopingError::DegenerateSchema {
            schema: 3,
            elements: 1
        }
        .to_string()
        .contains("only 1 element"));
        assert!(ScopingError::NonFiniteSignature {
            schema: 1,
            element: 7
        }
        .to_string()
        .contains("element #7"));
        assert!(ScopingError::RankDeficient { schema: 5 }
            .to_string()
            .contains("rank-deficient"));
        let svd: ScopingError = SvdError::EmptyMatrix.into();
        assert!(svd.to_string().contains("decomposition"));
        let rehydrate: ScopingError = PcaRehydrateError::EmptyComponents.into();
        assert_eq!(
            rehydrate.to_string(),
            "malformed PCA model: a PCA needs at least one component"
        );
        assert!(ScopingError::WorkerPanicked {
            detail: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn source_chains_for_svd() {
        use std::error::Error;
        let e: ScopingError = SvdError::NonFiniteInput.into();
        assert!(e.source().is_some());
        let e: ScopingError = PcaRehydrateError::EmptyComponents.into();
        assert!(e.source().is_some());
        assert!(ScopingError::EmptySchema { schema: 0 }.source().is_none());
    }
}
