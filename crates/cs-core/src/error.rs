//! Typed errors for the scoping pipeline.

use cs_linalg::SvdError;

/// Errors surfaced by scoping and collaborative scoping.
#[derive(Debug, Clone, PartialEq)]
pub enum ScopingError {
    /// A schema has no elements — a local model cannot be trained on it.
    EmptySchema {
        /// Index of the offending schema in the catalog.
        schema: usize,
    },
    /// Collaborative scoping needs at least two schemas (there is no
    /// "other" model to assess against otherwise).
    TooFewSchemas {
        /// Number of schemas found.
        found: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The explained-variance knob `v` was outside `(0, 1]`.
    InvalidVariance {
        /// Offending value.
        value: f64,
    },
    /// Numerical decomposition failed.
    Svd(SvdError),
    /// A closure dispatched to the parallel runtime panicked; the panic
    /// was caught inside the worker and surfaced here instead of
    /// poisoning or hanging the pool.
    WorkerPanicked {
        /// The panic payload, stringified.
        detail: String,
    },
}

impl std::fmt::Display for ScopingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScopingError::EmptySchema { schema } => {
                write!(
                    f,
                    "schema #{schema} has no elements to train a local model on"
                )
            }
            ScopingError::TooFewSchemas { found } => {
                write!(f, "collaborative scoping needs ≥ 2 schemas, found {found}")
            }
            ScopingError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
            ScopingError::InvalidVariance { value } => {
                write!(f, "explained variance v = {value} must lie in (0, 1]")
            }
            ScopingError::Svd(e) => write!(f, "decomposition failed: {e}"),
            ScopingError::WorkerPanicked { detail } => {
                write!(f, "a parallel worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ScopingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScopingError::Svd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SvdError> for ScopingError {
    fn from(e: SvdError) -> Self {
        ScopingError::Svd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ScopingError::EmptySchema { schema: 2 }
            .to_string()
            .contains("#2"));
        assert!(ScopingError::TooFewSchemas { found: 1 }
            .to_string()
            .contains("found 1"));
        assert!(ScopingError::InvalidParameter {
            name: "p",
            value: 1.5
        }
        .to_string()
        .contains("p = 1.5"));
        assert!(ScopingError::InvalidVariance { value: 1.5 }
            .to_string()
            .contains("v = 1.5"));
        let svd: ScopingError = SvdError::EmptyMatrix.into();
        assert!(svd.to_string().contains("decomposition"));
        assert!(ScopingError::WorkerPanicked {
            detail: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn source_chains_for_svd() {
        use std::error::Error;
        let e: ScopingError = SvdError::NonFiniteInput.into();
        assert!(e.source().is_some());
        assert!(ScopingError::EmptySchema { schema: 0 }.source().is_none());
    }
}
