//! The result of a scoping run: per-element keep/prune decisions.

use crate::error::ScopingError;
use cs_schema::{Catalog, ElementId};
use std::collections::HashSet;

/// A schema the sweep could not train a local model for, plus why. The
/// run carried on without it: its elements are pruned (`decisions` =
/// `false`) and it never acts as a foreign assessor for other schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSchema {
    /// Index of the schema in the catalog.
    pub schema: usize,
    /// The typed reason training failed.
    pub error: ScopingError,
}

/// Outcome of a (global or collaborative) scoping run.
///
/// `decisions[i]` says whether element `element_ids[i]` was assessed as
/// linkable; the two vectors share the unified (stacked) row order of the
/// signatures the run consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopingOutcome {
    /// Method display name (for reports).
    pub method: String,
    /// Element ids in unified row order.
    pub element_ids: Vec<ElementId>,
    /// Keep (true = linkable) per element.
    pub decisions: Vec<bool>,
    /// Schemas skipped by a gracefully-degrading run (sorted by schema
    /// index; empty for strict runs, which error out instead).
    pub degraded: Vec<DegradedSchema>,
}

impl ScopingOutcome {
    /// Creates an outcome; the vectors must be aligned.
    pub fn new(
        method: impl Into<String>,
        element_ids: Vec<ElementId>,
        decisions: Vec<bool>,
    ) -> Self {
        assert_eq!(
            element_ids.len(),
            decisions.len(),
            "misaligned outcome vectors"
        );
        Self {
            method: method.into(),
            element_ids,
            decisions,
            degraded: Vec::new(),
        }
    }

    /// Attaches the degraded-schema record of a graceful run.
    pub fn with_degraded(mut self, degraded: Vec<DegradedSchema>) -> Self {
        self.degraded = degraded;
        self
    }

    /// True when at least one schema was skipped rather than assessed.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Number of elements assessed.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when nothing was assessed.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of elements kept.
    pub fn kept_count(&self) -> usize {
        self.decisions.iter().filter(|&&d| d).count()
    }

    /// Number of elements pruned.
    pub fn pruned_count(&self) -> usize {
        self.len() - self.kept_count()
    }

    /// The kept element ids as a set.
    pub fn kept(&self) -> HashSet<ElementId> {
        self.element_ids
            .iter()
            .zip(self.decisions.iter())
            .filter(|(_, &d)| d)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Kept elements belonging to one schema.
    pub fn kept_in_schema(&self, schema: usize) -> usize {
        self.element_ids
            .iter()
            .zip(self.decisions.iter())
            .filter(|(id, &d)| d && id.schema == schema)
            .count()
    }

    /// Projects the catalog to the streamlined schemas `S'`.
    pub fn streamlined(&self, catalog: &Catalog) -> Catalog {
        catalog.project(&self.kept())
    }

    /// The decision for a specific element, if it was assessed.
    pub fn decision_for(&self, id: ElementId) -> Option<bool> {
        self.element_ids
            .iter()
            .position(|&e| e == id)
            .map(|i| self.decisions[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> Vec<ElementId> {
        vec![
            ElementId::new(0, 0),
            ElementId::new(0, 1),
            ElementId::new(1, 0),
            ElementId::new(1, 1),
        ]
    }

    #[test]
    fn counting() {
        let o = ScopingOutcome::new("test", ids(), vec![true, false, true, true]);
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
        assert_eq!(o.kept_count(), 3);
        assert_eq!(o.pruned_count(), 1);
        assert_eq!(o.kept_in_schema(0), 1);
        assert_eq!(o.kept_in_schema(1), 2);
    }

    #[test]
    fn kept_set_and_lookup() {
        let o = ScopingOutcome::new("test", ids(), vec![true, false, false, true]);
        let kept = o.kept();
        assert!(kept.contains(&ElementId::new(0, 0)));
        assert!(!kept.contains(&ElementId::new(0, 1)));
        assert_eq!(o.decision_for(ElementId::new(0, 1)), Some(false));
        assert_eq!(o.decision_for(ElementId::new(9, 9)), None);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_vectors_panic() {
        ScopingOutcome::new("test", ids(), vec![true]);
    }

    #[test]
    fn degraded_record_round_trips() {
        let o = ScopingOutcome::new("test", ids(), vec![true, false, true, true]);
        assert!(!o.is_degraded());
        assert!(o.degraded.is_empty());
        let o = o.with_degraded(vec![DegradedSchema {
            schema: 1,
            error: ScopingError::RankDeficient { schema: 1 },
        }]);
        assert!(o.is_degraded());
        assert_eq!(o.degraded.len(), 1);
        assert_eq!(o.degraded[0].schema, 1);
        assert_eq!(
            o.degraded[0].error,
            ScopingError::RankDeficient { schema: 1 }
        );
    }
}
