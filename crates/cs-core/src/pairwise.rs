//! Source-to-target scoping.
//!
//! The paper notes (end of Section 1) that although collaborative scoping
//! targets multi-source scenarios, "it also works well for pruning
//! unlinkable elements for source-to-target matching". This module is the
//! two-schema convenience: train the target's local model, prune the
//! source's elements against it (and optionally vice versa), without
//! building a full catalog.

use crate::error::ScopingError;
use crate::local_model::LocalModel;
use cs_linalg::pca::ExplainedVariance;
use cs_linalg::Matrix;

/// Directional source-to-target scoper at explained variance `v`.
#[derive(Debug, Clone, Copy)]
pub struct SourceToTargetScoper {
    v: f64,
}

/// Result of a directional pruning pass.
#[derive(Debug, Clone)]
pub struct DirectionalOutcome {
    /// Keep/prune per source element (true = recognized by the target).
    pub keep_source: Vec<bool>,
    /// Reconstruction error per source element under the target's model.
    pub source_errors: Vec<f64>,
    /// The target's local linkability range.
    pub target_range: f64,
    /// Components the target's model retained.
    pub target_components: usize,
}

impl SourceToTargetScoper {
    /// Creates a scoper; `v` is validated at run time.
    pub fn new(v: f64) -> Self {
        Self { v }
    }

    /// Prunes `source` elements against a model trained on `target`
    /// (the asymmetric direction the paper's matching pipelines consume:
    /// which source elements are worth offering to the target matcher).
    pub fn prune_source(
        &self,
        source: &Matrix,
        target: &Matrix,
    ) -> Result<DirectionalOutcome, ScopingError> {
        let v = ExplainedVariance::new(self.v)
            .ok_or(ScopingError::InvalidVariance { value: self.v })?;
        if target.rows() == 0 {
            return Err(ScopingError::EmptySchema { schema: 1 });
        }
        let model = LocalModel::train(1, target, v)?;
        let source_errors = model.reconstruction_errors(source);
        let keep_source = source_errors
            .iter()
            .map(|&e| e <= model.linkability_range())
            .collect();
        Ok(DirectionalOutcome {
            keep_source,
            source_errors,
            target_range: model.linkability_range(),
            target_components: model.n_components(),
        })
    }

    /// Symmetric pruning: each side assessed by the other's model — the
    /// two-schema special case of Algorithm 2.
    pub fn prune_both(
        &self,
        source: &Matrix,
        target: &Matrix,
    ) -> Result<(DirectionalOutcome, DirectionalOutcome), ScopingError> {
        Ok((
            self.prune_source(source, target)?,
            self.prune_source(target, source)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    fn subspace(n: usize, dim: usize, basis: &[Vec<f64>], rng: &mut Xoshiro256) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|_| {
                    let mut row = vec![0.0; dim];
                    for b in basis {
                        cs_linalg::vecops::axpy(&mut row, rng.next_gaussian(), b);
                    }
                    row
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn on_manifold_source_kept_off_manifold_pruned() {
        let dim = 14;
        let mut rng = Xoshiro256::seed_from(3);
        let shared: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let alien: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let target = subspace(30, dim, &shared, &mut rng);
        // Source: first 10 on the shared subspace, last 10 alien.
        let on = subspace(10, dim, &shared, &mut rng);
        let off = subspace(10, dim, &alien, &mut rng);
        let source = on.vstack(&off);

        let outcome = SourceToTargetScoper::new(0.9)
            .prune_source(&source, &target)
            .unwrap();
        let kept_on = outcome.keep_source[..10].iter().filter(|&&b| b).count();
        let kept_off = outcome.keep_source[10..].iter().filter(|&&b| b).count();
        assert!(kept_on >= 8, "on-manifold kept {kept_on}/10");
        assert!(kept_off <= 2, "alien kept {kept_off}/10");
        assert_eq!(outcome.source_errors.len(), 20);
        assert!(outcome.target_range >= 0.0);
        assert!(outcome.target_components >= 1);
    }

    #[test]
    fn symmetric_pruning_matches_collaborative_two_schema_case() {
        let dim = 10;
        let mut rng = Xoshiro256::seed_from(7);
        let shared: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let a = subspace(12, dim, &shared, &mut rng);
        let b = subspace(15, dim, &shared, &mut rng);

        let (src, tgt) = SourceToTargetScoper::new(0.8).prune_both(&a, &b).unwrap();
        let sigs = crate::signatures::SchemaSignatures::from_matrices(
            vec![a, b],
            vec!["A".into(), "B".into()],
        );
        let run = crate::CollaborativeScoper::new(0.8).run(&sigs).unwrap();
        let expected_a: Vec<bool> = run.outcome.decisions[..12].to_vec();
        let expected_b: Vec<bool> = run.outcome.decisions[12..].to_vec();
        assert_eq!(src.keep_source, expected_a);
        assert_eq!(tgt.keep_source, expected_b);
    }

    #[test]
    fn errors_are_typed() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0]]);
        assert!(matches!(
            SourceToTargetScoper::new(0.0).prune_source(&m, &m),
            Err(ScopingError::InvalidVariance { .. })
        ));
        assert!(matches!(
            SourceToTargetScoper::new(0.5).prune_source(&m, &Matrix::zeros(0, 2)),
            Err(ScopingError::EmptySchema { .. })
        ));
    }
}
