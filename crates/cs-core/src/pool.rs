//! The deterministic parallel runtime: a persistent, work-stealing-free
//! **chunk-deal thread pool**.
//!
//! The collaborative pipeline's hot paths — per-schema training
//! (Algorithm 1), per-schema assessment (Algorithm 2), and the `v`-grid
//! sweep — are embarrassingly parallel over an index range `0..k`. The
//! previous implementation re-spawned `std::thread::scope` threads on
//! every call; this module replaces that with one pool of long-lived
//! workers (sized by the `CS_THREADS` env knob or the machine's available
//! parallelism) that is shared by every invocation.
//!
//! # Determinism contract (DESIGN.md §8)
//!
//! Parallel results must be **bit-identical** to the sequential path:
//!
//! 1. Work is *dealt*, never *stolen*: the index range `0..k` is split
//!    into at most `workers` contiguous chunks up front, so the mapping
//!    from item to chunk is a pure function of `(k, workers)`.
//! 2. Every chunk writes into a pre-sized slot addressed by its chunk
//!    index; the caller reassembles slots in chunk order. Results are
//!    never reduced in arrival order.
//! 3. The per-item closure must be pure (no shared mutable state, no
//!    RNG shared across items). Under that contract the assembled output
//!    is byte-for-byte the same for every worker count, including the
//!    inline sequential path.
//!
//! A panicking closure is caught inside the worker ([`std::panic::catch_unwind`])
//! and surfaced to the caller as [`ScopingError::WorkerPanicked`] — the
//! pool never hangs and the worker survives for the next job.
//!
//! # Runtime sanitizer (DESIGN.md §12)
//!
//! The pool's lock sites are instrumented with the determinism sanitizer
//! re-exported here as [`sanitize`]: when enabled (the `sanitize` cargo
//! feature or the `CS_SANITIZE` env knob), every acquisition of the
//! worker receiver lock and the fault-arming gate/slot locks records
//! into a process-global lock-order graph, and every worker thread
//! records a float-environment probe. `cs-fault`'s `fault_smoke` binary
//! prints the resulting digest so `scripts/verify.sh` can compare
//! sanitized runs across `CS_THREADS` settings. Off (the default), each
//! instrumented site costs one relaxed atomic load.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::error::ScopingError;

/// The runtime determinism sanitizer (lock-order graph + float probe),
/// re-exported from `cs_linalg` so pool users have it at hand.
pub use cs_linalg::sanitize;

/// Deterministic fault injection for the pool — a **test-only** hook used
/// by the `cs-fault` harness to prove that worker panics surface as
/// [`ScopingError::WorkerPanicked`] from every entry point.
///
/// The hook fires at the start of every chunk (pooled and inline alike)
/// with a [`FaultSite`] describing where execution is; an armed closure
/// that panics is caught by the pool's normal `catch_unwind` machinery, so
/// `cs-core` itself stays panic-free. The hook is process-global but
/// gated: [`armed`] holds an exclusive lock for the guard's lifetime, so
/// concurrent armers serialize, and closures should filter on the
/// [`FaultSite`] (pool tag / caller thread) to avoid poisoning innocent
/// batches running on other pools. Production code never arms it; an
/// unarmed hook is a single mutex-protected `Option` read per *chunk*
/// (not per item).
pub mod fault {
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// Where a fault hook fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FaultSite {
        /// Tag ([`super::ThreadPool::tag`]) of the pool executing the
        /// chunk, or `None` for the poolless sequential path.
        pub pool: Option<usize>,
        /// Chunk index within the batch (0 for the inline path).
        pub chunk: usize,
    }

    type Hook = Arc<dyn Fn(FaultSite) + Send + Sync>;

    fn slot() -> &'static Mutex<Option<Hook>> {
        static SLOT: OnceLock<Mutex<Option<Hook>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    fn gate() -> &'static Mutex<()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
    }

    /// Swaps the slot contents under its own short-lived guard. The only
    /// place the slot and gate locks could nest is arming, and routing
    /// every slot write through here keeps each function single-lock:
    /// the order is always gate → slot, never the reverse (`fire` takes
    /// the slot alone), so the pair cannot deadlock. The sanitizer sees
    /// exactly that: a gate→slot edge when called from an armed section,
    /// never a slot→gate edge.
    fn store(hook: Option<Hook>) {
        let _t = super::sanitize::trace("pool.fault.slot");
        *slot().lock().unwrap_or_else(|p| p.into_inner()) = hook;
    }

    /// RAII guard for an armed fault hook; disarms on drop and holds the
    /// exclusive arming gate so armed sections never overlap.
    #[must_use = "the hook disarms when the guard drops"]
    pub struct Armed {
        // Field order is drop order: the gate guard releases before its
        // sanitizer trace pops, keeping the recorded lifetime a superset
        // of the real one.
        _gate: MutexGuard<'static, ()>,
        _trace: Option<super::sanitize::LockTrace>,
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            // Poison only means a previous armer panicked mid-section;
            // the slot itself stays valid.
            store(None);
        }
    }

    /// Arms `hook` until the returned guard drops. Blocks while another
    /// armed section is active. The closure may panic — that is the
    /// point — and the panic surfaces as
    /// [`crate::ScopingError::WorkerPanicked`].
    pub fn armed(hook: impl Fn(FaultSite) + Send + Sync + 'static) -> Armed {
        let trace = super::sanitize::trace("pool.fault.gate");
        let gate = gate().lock().unwrap_or_else(|p| p.into_inner());
        store(Some(Arc::new(hook)));
        Armed {
            _gate: gate,
            _trace: trace,
        }
    }

    /// Fires the hook (if armed) at a chunk boundary. Called inside the
    /// pool's `catch_unwind`, so a panicking hook is a simulated worker
    /// panic, not an escape.
    pub(super) fn fire(site: FaultSite) {
        // Clone out of the lock before calling: a panicking hook must
        // not poison the slot for the chunks that follow.
        let hook = {
            let _t = super::sanitize::trace("pool.fault.slot");
            slot().lock().unwrap_or_else(|p| p.into_inner()).clone()
        };
        if let Some(h) = hook {
            h(site);
        }
    }
}

/// Upper clamp for `CS_THREADS`; protects against absurd requests like
/// `CS_THREADS=100000` exhausting process resources.
pub const MAX_THREADS: usize = 256;

/// The env knob that sizes [`global()`] (also `cs_linalg::config::THREADS`).
pub const THREADS_ENV: &str = cs_linalg::config::THREADS;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads with deterministic
/// chunk-deal scheduling.
///
/// ```
/// use cs_core::pool::ThreadPool;
///
/// let pool = ThreadPool::with_threads(3);
/// let squares = pool.run_slots(10, |i| i * i).unwrap();
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Generation counter for in-flight batches (diagnostics only).
    batches: AtomicUsize,
    /// Process-unique identity, so fault hooks ([`fault`]) can target one
    /// pool without touching batches on any other.
    tag: usize,
}

impl ThreadPool {
    /// A pool with exactly `threads` workers (clamped to
    /// [`MAX_THREADS`]). `threads == 0` yields a pool that runs every
    /// batch inline on the caller thread — useful as an explicit
    /// sequential executor.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.min(MAX_THREADS);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("cs-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a pool worker")
            })
            .collect();
        static NEXT_TAG: AtomicUsize = AtomicUsize::new(0);
        Self {
            sender: Some(sender),
            workers,
            batches: AtomicUsize::new(0),
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A pool sized from the environment: `CS_THREADS` when set and
    /// parseable, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let spec = cs_linalg::config::env_knob(THREADS_ENV);
        Self::with_threads(resolve_threads(spec.as_deref(), available_parallelism()))
    }

    /// Number of worker threads (0 = inline execution).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Process-unique pool identity, used by [`fault`] hooks to target a
    /// specific pool's batches.
    pub fn tag(&self) -> usize {
        self.tag
    }

    /// Number of batches dispatched so far (diagnostics).
    pub fn batches_dispatched(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }

    /// Runs `work(i)` for every `i in 0..k`, dealing contiguous chunks to
    /// the workers and assembling the results **in index order** into a
    /// pre-sized slot vector.
    ///
    /// Determinism: chunk boundaries depend only on `(k, workers)`, each
    /// chunk evaluates its indices in ascending order, and slots are
    /// reassembled by chunk index — never in completion order. A pure
    /// `work` therefore produces bit-identical output for every worker
    /// count.
    ///
    /// # Errors
    /// [`ScopingError::WorkerPanicked`] if any invocation of `work`
    /// panicked; remaining chunks still run to completion and the pool
    /// stays usable.
    pub fn run_slots<T, F>(&self, k: usize, work: F) -> Result<Vec<T>, ScopingError>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if k == 0 {
            return Ok(Vec::new());
        }
        let chunks = self.workers().min(k);
        if chunks <= 1 {
            // Inline sequential path: same ascending index order, still
            // panic-safe so `CS_THREADS=0` matches pool semantics.
            return run_inline(k, &work, Some(self.tag));
        }
        self.batches.fetch_add(1, Ordering::Relaxed);

        let work = Arc::new(work);
        let pool_tag = self.tag;
        let (tx, rx) = channel::<(usize, ChunkResult<T>)>();
        for (chunk_idx, range) in chunk_ranges(k, chunks).into_iter().enumerate() {
            let work = Arc::clone(&work);
            let tx = tx.clone();
            let job: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    fault::fire(fault::FaultSite {
                        pool: Some(pool_tag),
                        chunk: chunk_idx,
                    });
                    range.clone().map(|i| work(i)).collect::<Vec<T>>()
                }))
                .map_err(|payload| panic_message(&*payload));
                // A worker that failed to send has lost its caller; the
                // value is simply dropped.
                let _ = tx.send((chunk_idx, result));
            });
            self.sender
                .as_ref()
                .expect("pool sender lives until drop")
                .send(job)
                .expect("pool workers live until drop");
        }
        drop(tx);

        let mut slots: Vec<Option<Vec<T>>> = Vec::new();
        slots.resize_with(chunks, || None);
        let mut first_panic: Option<String> = None;
        for _ in 0..chunks {
            match rx.recv() {
                Ok((idx, Ok(values))) => slots[idx] = Some(values),
                Ok((_, Err(detail))) => {
                    if first_panic.is_none() {
                        first_panic = Some(detail);
                    }
                }
                // All senders gone before every chunk reported: workers
                // were torn down mid-batch. Surface, do not hang.
                Err(_) => {
                    first_panic.get_or_insert_with(|| "worker channel closed".to_string());
                    break;
                }
            }
        }
        if let Some(detail) = first_panic {
            return Err(ScopingError::WorkerPanicked { detail });
        }
        let mut out = Vec::with_capacity(k);
        for slot in slots {
            out.extend(slot.expect("every chunk reported exactly once"));
        }
        Ok(out)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-chunk outcome: values in index order, or the panic message.
type ChunkResult<T> = Result<Vec<T>, String>;

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // A poisoned lock only means another worker panicked while
        // holding it; the receiver itself is still valid.
        let received = {
            let _t = sanitize::trace("pool.recv");
            receiver.lock().unwrap_or_else(|p| p.into_inner()).recv()
        };
        let job = match received {
            Ok(job) => job,
            Err(_) => return, // pool dropped
        };
        // Each worker asserts its float environment once per job — a
        // cheap enabled-check when the sanitizer is off, and with it on,
        // drift (e.g. flush-to-zero on one thread) lands in the report.
        sanitize::record_probe();
        // Executed outside the lock so other workers can pick up jobs.
        job();
    }
}

/// Runs the batch on the caller thread with the same panic surface as
/// the pooled path. `pool` carries the owning pool's tag when this is the
/// single-chunk fast path of [`ThreadPool::run_slots`], `None` when no
/// pool is involved ([`ExecPolicy::Sequential`]).
fn run_inline<T, F>(k: usize, work: &F, pool: Option<usize>) -> Result<Vec<T>, ScopingError>
where
    F: Fn(usize) -> T,
{
    sanitize::record_probe();
    catch_unwind(AssertUnwindSafe(|| {
        fault::fire(fault::FaultSite { pool, chunk: 0 });
        (0..k).map(work).collect::<Vec<T>>()
    }))
    .map_err(|payload| {
        ScopingError::WorkerPanicked {
            // `&*` matters: `&payload` would unsize the Box itself to
            // `&dyn Any` and every downcast would miss.
            detail: panic_message(&*payload),
        }
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Splits `0..k` into `chunks` contiguous ranges whose lengths differ by
/// at most one (earlier chunks take the remainder).
fn chunk_ranges(k: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let base = k / chunks;
    let rem = k % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Resolves a thread-count specification (the `CS_THREADS` value) against
/// the machine's available parallelism.
///
/// Unset, empty, unparsable, or `0` all fall back to `available`
/// (clamped to at least 1); explicit values clamp to [`MAX_THREADS`].
pub fn resolve_threads(spec: Option<&str>, available: usize) -> usize {
    let fallback = available.max(1);
    match spec.map(str::trim) {
        None | Some("") => fallback,
        Some(s) => match s.parse::<usize>() {
            Ok(0) | Err(_) => fallback,
            Ok(n) => n.min(MAX_THREADS),
        },
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool shared by every scoper that does not carry its
/// own executor. Sized once, on first use, from `CS_THREADS` /
/// available parallelism.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::from_env)
}

/// How a scoper executes its per-schema / per-grid-point fan-out.
#[derive(Debug, Clone, Default)]
pub enum ExecPolicy {
    /// The process-wide [`global()`] pool (default).
    #[default]
    Global,
    /// Inline on the caller thread, no pool involved.
    Sequential,
    /// A caller-owned pool (e.g. a test pinning a worker count).
    Pool(Arc<ThreadPool>),
}

impl ExecPolicy {
    /// Dispatches [`ThreadPool::run_slots`] under this policy. The
    /// sequential path evaluates inline in ascending index order —
    /// bit-identical to the pooled paths for pure `work`.
    pub fn run_slots<T, F>(&self, k: usize, work: F) -> Result<Vec<T>, ScopingError>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        match self {
            ExecPolicy::Sequential => run_inline(k, &work, None),
            ExecPolicy::Global => global().run_slots(k, work),
            ExecPolicy::Pool(pool) => pool.run_slots(k, work),
        }
    }

    /// True unless this policy is [`ExecPolicy::Sequential`].
    pub fn is_parallel(&self) -> bool {
        !matches!(self, ExecPolicy::Sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for k in [1usize, 2, 3, 7, 10, 64, 65] {
            for chunks in 1..=k.min(9) {
                let ranges = chunk_ranges(k, chunks);
                assert_eq!(ranges.len(), chunks);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, k);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                let (min, max) = ranges
                    .iter()
                    .map(ExactSizeIterator::len)
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "balanced: {ranges:?}");
            }
        }
    }

    #[test]
    fn run_slots_preserves_index_order() {
        for workers in [0usize, 1, 2, 3, 8] {
            let pool = ThreadPool::with_threads(workers);
            assert_eq!(pool.workers(), workers);
            let got = pool.run_slots(23, |i| i * 10).unwrap();
            assert_eq!(got, (0..23).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_slots_empty_batch() {
        let pool = ThreadPool::with_threads(2);
        assert_eq!(pool.run_slots(0, |i| i).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn more_workers_than_items_clamps() {
        let pool = ThreadPool::with_threads(8);
        let got = pool.run_slots(3, |i| i).unwrap();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn panicking_closure_is_error_not_hang() {
        for workers in [0usize, 1, 4] {
            let pool = ThreadPool::with_threads(workers);
            let err = pool
                .run_slots(10, |i| {
                    assert!(i != 7, "boom at {i}");
                    i
                })
                .unwrap_err();
            match err {
                ScopingError::WorkerPanicked { detail } => {
                    assert!(detail.contains("boom"), "detail: {detail}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // The pool survives a panicking batch.
            assert_eq!(pool.run_slots(4, |i| i).unwrap(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn resolve_threads_edge_cases() {
        assert_eq!(resolve_threads(None, 4), 4);
        assert_eq!(resolve_threads(None, 0), 1);
        assert_eq!(resolve_threads(Some(""), 4), 4);
        assert_eq!(resolve_threads(Some("  "), 4), 4);
        assert_eq!(resolve_threads(Some("0"), 4), 4);
        assert_eq!(resolve_threads(Some("3"), 4), 3);
        assert_eq!(resolve_threads(Some(" 12 "), 4), 12);
        assert_eq!(resolve_threads(Some("not-a-number"), 2), 2);
        assert_eq!(resolve_threads(Some("-1"), 2), 2);
        assert_eq!(resolve_threads(Some("99999"), 2), MAX_THREADS);
    }

    #[test]
    fn exec_policy_paths_agree() {
        let work = |i: usize| (i as f64).sqrt();
        let seq = ExecPolicy::Sequential.run_slots(17, work).unwrap();
        let global = ExecPolicy::Global.run_slots(17, work).unwrap();
        let pinned = ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(3)))
            .run_slots(17, work)
            .unwrap();
        assert_eq!(seq, global);
        assert_eq!(seq, pinned);
        assert!(ExecPolicy::Global.is_parallel());
        assert!(!ExecPolicy::Sequential.is_parallel());
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().workers() <= MAX_THREADS);
    }

    #[test]
    fn armed_fault_hook_surfaces_as_worker_panicked_then_disarms() {
        let pool = ThreadPool::with_threads(4);
        let target = pool.tag();
        {
            let _guard = fault::armed(move |site| {
                // Filter on the pool tag so concurrent batches on other
                // pools (parallel test threads) are untouched.
                if site.pool == Some(target) && site.chunk == 0 {
                    panic!("injected fault: worker panic");
                }
            });
            let err = pool.run_slots(16, |i| i).unwrap_err();
            match err {
                ScopingError::WorkerPanicked { detail } => {
                    assert!(detail.contains("injected fault"), "detail: {detail}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
        // Guard dropped → hook disarmed → pool healthy again.
        assert_eq!(pool.run_slots(4, |i| i).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn armed_fault_hook_reaches_sequential_and_inline_paths() {
        let me = std::thread::current().id();
        {
            let _guard = fault::armed(move |site| {
                // Sequential runs on the caller thread with no pool tag.
                if site.pool.is_none() && std::thread::current().id() == me {
                    panic!("injected fault: inline panic");
                }
            });
            let err = ExecPolicy::Sequential
                .run_slots(5, |i: usize| i)
                .unwrap_err();
            assert!(matches!(err, ScopingError::WorkerPanicked { ref detail }
                if detail.contains("inline panic")));
        }
        // Single-chunk pooled fast path carries the pool's tag.
        let pool = ThreadPool::with_threads(1);
        let target = pool.tag();
        {
            let _guard = fault::armed(move |site| {
                if site.pool == Some(target) {
                    panic!("injected fault: single-chunk panic");
                }
            });
            let err = pool.run_slots(3, |i| i).unwrap_err();
            assert!(matches!(err, ScopingError::WorkerPanicked { ref detail }
                if detail.contains("single-chunk panic")));
        }
        assert_eq!(
            ExecPolicy::Sequential.run_slots(2, |i| i).unwrap(),
            vec![0, 1]
        );
    }

    #[test]
    fn batches_counter_ticks_only_for_pooled_batches() {
        let pool = ThreadPool::with_threads(2);
        let before = pool.batches_dispatched();
        pool.run_slots(8, |i| i).unwrap();
        assert_eq!(pool.batches_dispatched(), before + 1);
        pool.run_slots(1, |i| i).unwrap(); // single chunk → inline
        assert_eq!(pool.batches_dispatched(), before + 1);
    }
}
