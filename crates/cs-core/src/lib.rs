//! # cs-core
//!
//! The paper's contribution: **collaborative scoping** — self-supervised
//! linkability assessment for multi-source schema matching — plus the
//! **global scoping** baseline it is evaluated against.
//!
//! Pipeline (Figure 4 of the paper):
//!
//! 1. **(I) Local signatures** — [`encode_catalog`] serializes every table
//!    and attribute (`T^a` / `T^t`) and encodes them into per-schema
//!    signature matrices ([`SchemaSignatures`]).
//! 2. **(II) Local self-supervised models** — [`LocalModel::train`]
//!    (Algorithm 1) fits a PCA encoder–decoder per schema at a global
//!    explained variance `v` and derives the **local linkability range**
//!    `l_k` (Definition 3).
//! 3. **(III) Local linkability assessment** — [`CollaborativeScoper::run`]
//!    (Algorithm 2) reconstructs each schema's signatures through every
//!    *other* schema's model; elements recognized by at least one foreign
//!    model (Definition 4) survive into the streamlined schemas `S'`.
//!
//! The baseline [`GlobalScoper`] ranks the unified signature set with a
//! single outlier detector and keeps the lowest-scoring `p` fraction
//! (Section 2.4). [`CollaborativeSweep`] evaluates the whole `v ∈ (1..0)`
//! grid efficiently by caching full-rank latent projections.

pub mod collaborative;
pub mod error;
pub mod exchange;
pub mod json;
pub mod local_model;
pub mod nonlinear;
pub mod outcome;
pub mod pairwise;
pub mod pool;
pub mod scoper;
pub mod scoping;
pub mod signatures;
pub mod sweep;

pub use collaborative::{
    CollaborativeScoper, CollaborativeScoperBuilder, CombinationRule, CostReport,
};
pub use error::ScopingError;
pub use exchange::{ExchangeError, ModelEnvelope};
pub use local_model::LocalModel;
pub use nonlinear::{NeuralCollaborativeScoper, NeuralLocalModel};
pub use outcome::{DegradedSchema, ScopingOutcome};
pub use pairwise::SourceToTargetScoper;
pub use pool::{ExecPolicy, ThreadPool};
pub use scoper::Scoper;
pub use scoping::GlobalScoper;
pub use signatures::{encode_catalog, encode_catalog_with, SchemaSignatures};
pub use sweep::CollaborativeSweep;

/// The catalog of per-schema signature matrices a [`Scoper`] consumes.
/// Alias of [`SchemaSignatures`] under the name the unified API uses.
pub type SignatureCatalog = SchemaSignatures;

/// The explained-variance sweep grid. Alias of [`CollaborativeSweep`]
/// under the name the unified API uses.
pub type SweepGrid = CollaborativeSweep;
