//! Phase II + III end-to-end: **collaborative scoping** (Algorithm 2).
//!
//! Each schema trains its own [`LocalModel`]; models — not data — are
//! exchanged. A schema's element is kept when at least one *foreign* model
//! reconstructs it within that model's local linkability range
//! (Definition 4). Training and assessment are embarrassingly parallel per
//! schema, mirroring the paper's distributed deployment; the
//! implementation fans out on the deterministic chunk-deal pool of
//! [`crate::pool`], whose slot assembly keeps parallel output
//! bit-identical to the sequential path.

use std::sync::Arc;

use crate::error::ScopingError;
use crate::local_model::LocalModel;
use crate::outcome::ScopingOutcome;
use crate::pool::{ExecPolicy, ThreadPool};
use crate::signatures::SchemaSignatures;
use cs_linalg::pca::ExplainedVariance;
use cs_linalg::PcaSolver;

/// How the verdicts of the foreign models are combined. The paper uses
/// [`CombinationRule::Any`]; the others exist for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinationRule {
    /// Linkable if ANY foreign model accepts (the paper's rule).
    Any,
    /// Linkable only if EVERY foreign model accepts.
    All,
    /// Linkable if at least `k` foreign models accept.
    AtLeast(usize),
}

impl CombinationRule {
    /// Applies the rule given `accepts` votes out of `total` foreign models.
    pub fn decide(self, accepts: usize, total: usize) -> bool {
        match self {
            CombinationRule::Any => accepts >= 1,
            CombinationRule::All => accepts == total && total > 0,
            CombinationRule::AtLeast(k) => accepts >= k,
        }
    }
}

/// Cost accounting for the pre-processing trade-off discussion (§4.4):
/// how many encoder–decoder pass operations collaborative scoping spends,
/// compared against the Cartesian pair count a matcher would face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Total `(element, foreign model)` reconstruction passes — `|S|·|M|`.
    pub pass_operations: usize,
    /// Number of local models trained (= number of schemas).
    pub models_trained: usize,
}

impl CostReport {
    /// Pass operations as a fraction of a pairwise comparison count
    /// (e.g. the catalog's Cartesian element pairs).
    pub fn fraction_of(&self, pair_comparisons: usize) -> f64 {
        if pair_comparisons == 0 {
            return 0.0;
        }
        self.pass_operations as f64 / pair_comparisons as f64
    }
}

/// Result of one collaborative run: the outcome plus diagnostics.
#[derive(Debug, Clone)]
pub struct CollaborativeRun {
    /// Keep/prune decisions.
    pub outcome: ScopingOutcome,
    /// Per element (unified order): how many foreign models accepted it.
    pub accept_votes: Vec<usize>,
    /// Per element: the minimum reconstruction error over foreign models
    /// relative to that model's range (`err − l_m`); negative = accepted by
    /// that model. Useful for diagnosing near-misses.
    pub best_margin: Vec<f64>,
    /// The trained local models (`M_1 … M_k`).
    pub models: Vec<LocalModel>,
    /// Cost accounting.
    pub cost: CostReport,
}

/// Configures a [`CollaborativeScoper`], validating up front.
///
/// ```
/// use cs_core::collaborative::{CollaborativeScoper, CombinationRule};
///
/// let scoper = CollaborativeScoper::builder()
///     .explained_variance(0.85)
///     .combination(CombinationRule::Any)
///     .parallel(true)
///     .build()
///     .unwrap();
/// assert_eq!(scoper.variance(), 0.85);
/// ```
#[derive(Debug, Clone)]
pub struct CollaborativeScoperBuilder {
    v: f64,
    rule: CombinationRule,
    exec: ExecPolicy,
    solver: PcaSolver,
}

impl CollaborativeScoperBuilder {
    /// Sets the global explained-variance knob `v ∈ (0, 1]`.
    pub fn explained_variance(mut self, v: f64) -> Self {
        self.v = v;
        self
    }

    /// Sets how foreign-model verdicts are combined.
    pub fn combination(mut self, rule: CombinationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Pins the PCA eigensolver used when training local models
    /// ([`PcaSolver::Auto`] by default, which picks by matrix shape).
    pub fn pca_solver(mut self, solver: PcaSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Whether training/assessment fan out on the shared pool (on by
    /// default; off gives bit-identical results on the caller thread).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.exec = if parallel {
            ExecPolicy::Global
        } else {
            ExecPolicy::Sequential
        };
        self
    }

    /// Forces inline execution on the caller thread.
    pub fn sequential(self) -> Self {
        self.parallel(false)
    }

    /// Uses a caller-owned pool instead of the process-wide one (e.g. to
    /// pin an exact worker count in a determinism test).
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.exec = ExecPolicy::Pool(pool);
        self
    }

    /// Sets the execution policy directly.
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Validates the configuration; an out-of-range `v` is
    /// [`ScopingError::InvalidVariance`], never a panic.
    pub fn build(self) -> Result<CollaborativeScoper, ScopingError> {
        if ExplainedVariance::new(self.v).is_none() {
            return Err(ScopingError::InvalidVariance { value: self.v });
        }
        Ok(CollaborativeScoper {
            v: self.v,
            rule: self.rule,
            exec: self.exec,
            solver: self.solver,
        })
    }
}

/// The collaborative scoper: one global explained-variance knob.
#[derive(Debug, Clone)]
pub struct CollaborativeScoper {
    v: f64,
    rule: CombinationRule,
    exec: ExecPolicy,
    solver: PcaSolver,
}

impl CollaborativeScoper {
    /// Creates a scoper at explained variance `v ∈ (0, 1]` with the paper's
    /// ANY-model combination rule. Validation happens in [`Self::run`];
    /// use [`Self::builder`] to validate up front.
    pub fn new(v: f64) -> Self {
        Self {
            v,
            rule: CombinationRule::Any,
            exec: ExecPolicy::Global,
            solver: PcaSolver::Auto,
        }
    }

    /// Starts building a scoper with validated configuration.
    pub fn builder() -> CollaborativeScoperBuilder {
        CollaborativeScoperBuilder {
            v: 0.8,
            rule: CombinationRule::Any,
            exec: ExecPolicy::Global,
            solver: PcaSolver::Auto,
        }
    }

    /// Overrides the combination rule (ablation).
    pub fn with_rule(mut self, rule: CombinationRule) -> Self {
        self.rule = rule;
        self
    }

    /// The configured explained variance.
    pub fn variance(&self) -> f64 {
        self.v
    }

    /// Whether per-schema work fans out across threads.
    pub fn is_parallel(&self) -> bool {
        self.exec.is_parallel()
    }

    /// The configured execution policy.
    pub fn exec_policy(&self) -> &ExecPolicy {
        &self.exec
    }

    /// The PCA eigensolver local models train with.
    pub fn pca_solver(&self) -> PcaSolver {
        self.solver
    }

    /// Trains one local model per schema, in parallel (phase II for the
    /// whole catalog).
    pub fn train_models(
        &self,
        signatures: &SchemaSignatures,
    ) -> Result<Vec<LocalModel>, ScopingError> {
        let v = ExplainedVariance::new(self.v)
            .ok_or(ScopingError::InvalidVariance { value: self.v })?;
        let k = signatures.schema_count();
        if k < 2 {
            return Err(ScopingError::TooFewSchemas { found: k });
        }
        let sigs = signatures.clone(); // Arc bump, not a data copy
        let solver = self.solver;
        self.exec
            .run_slots(k, move |idx| {
                LocalModel::train_with(idx, sigs.schema(idx), v, solver)
            })?
            .into_iter()
            .collect()
    }

    /// Runs the full collaborative assessment (Algorithm 2 per schema).
    pub fn run(&self, signatures: &SchemaSignatures) -> Result<CollaborativeRun, ScopingError> {
        let models = Arc::new(self.train_models(signatures)?);
        let k = signatures.schema_count();

        // Per schema: assess against every foreign model (parallel per schema).
        let sigs = signatures.clone();
        let shared_models = Arc::clone(&models);
        let per_schema = self.exec.run_slots(k, move |idx| {
            let sigs = sigs.schema(idx);
            let n = sigs.rows();
            let mut votes = vec![0usize; n];
            let mut margin = vec![f64::INFINITY; n];
            for model in shared_models.iter().filter(|m| m.schema_index() != idx) {
                let errors = model.reconstruction_errors(sigs);
                for (i, e) in errors.into_iter().enumerate() {
                    let m = e - model.linkability_range();
                    if m <= 0.0 {
                        votes[i] += 1;
                    }
                    if m < margin[i] {
                        margin[i] = m;
                    }
                }
            }
            (votes, margin)
        })?;

        let mut accept_votes = Vec::with_capacity(signatures.total_len());
        let mut best_margin = Vec::with_capacity(signatures.total_len());
        for (votes, margin) in per_schema {
            accept_votes.extend(votes);
            best_margin.extend(margin);
        }
        let foreign_count = k - 1;
        let decisions: Vec<bool> = accept_votes
            .iter()
            .map(|&a| self.rule.decide(a, foreign_count))
            .collect();
        let outcome = ScopingOutcome::new(
            format!("Collaborative[PCA] v={}", self.v),
            signatures.element_ids(),
            decisions,
        );
        let cost = CostReport {
            pass_operations: signatures.total_len() * foreign_count,
            models_trained: k,
        };
        // Workers may still be dropping their Arc clones for an instant
        // after the last result lands; fall back to a clone in that case.
        let models = Arc::try_unwrap(models).unwrap_or_else(|shared| (*shared).clone());
        Ok(CollaborativeRun {
            outcome,
            accept_votes,
            best_margin,
            models,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::{Matrix, Xoshiro256};

    /// Builds schemas living on a shared subspace plus one schema on a
    /// disjoint subspace — a miniature OC3-FO.
    fn shared_and_disjoint() -> SchemaSignatures {
        let dim = 16;
        let mut rng = Xoshiro256::seed_from(42);
        let shared: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let alien: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let make = |basis: &[Vec<f64>], n: usize, rng: &mut Xoshiro256| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    let mut row = vec![0.0; dim];
                    for b in basis {
                        cs_linalg::vecops::axpy(&mut row, rng.next_gaussian(), b);
                    }
                    row
                })
                .collect();
            Matrix::from_rows(&rows)
        };
        let s1 = make(&shared, 12, &mut rng);
        let s2 = make(&shared, 15, &mut rng);
        let s3 = make(&alien, 20, &mut rng);
        SchemaSignatures::from_matrices(
            vec![s1, s2, s3],
            vec!["A".into(), "B".into(), "ALIEN".into()],
        )
    }

    #[test]
    fn shared_subspace_schemas_accept_each_other_alien_is_pruned() {
        let sigs = shared_and_disjoint();
        let run = CollaborativeScoper::new(0.9).run(&sigs).unwrap();
        let kept_a = run.outcome.kept_in_schema(0);
        let kept_b = run.outcome.kept_in_schema(1);
        let kept_alien = run.outcome.kept_in_schema(2);
        assert!(kept_a >= 10, "A kept {kept_a}/12");
        assert!(kept_b >= 12, "B kept {kept_b}/15");
        assert!(kept_alien <= 4, "alien kept {kept_alien}/20");
    }

    #[test]
    fn cost_report_counts_passes() {
        let sigs = shared_and_disjoint();
        let run = CollaborativeScoper::new(0.8).run(&sigs).unwrap();
        // 47 elements × 2 foreign models.
        assert_eq!(run.cost.pass_operations, 47 * 2);
        assert_eq!(run.cost.models_trained, 3);
        assert!((run.cost.fraction_of(470) - 0.2).abs() < 1e-12);
        assert_eq!(run.cost.fraction_of(0), 0.0);
    }

    #[test]
    fn votes_and_margins_are_consistent_with_decisions() {
        let sigs = shared_and_disjoint();
        let run = CollaborativeScoper::new(0.7).run(&sigs).unwrap();
        for i in 0..run.outcome.len() {
            let accepted = run.outcome.decisions[i];
            assert_eq!(accepted, run.accept_votes[i] >= 1);
            if accepted {
                assert!(run.best_margin[i] <= 0.0);
            } else {
                assert!(run.best_margin[i] > 0.0);
            }
        }
    }

    #[test]
    fn combination_rules() {
        assert!(CombinationRule::Any.decide(1, 3));
        assert!(!CombinationRule::Any.decide(0, 3));
        assert!(CombinationRule::All.decide(3, 3));
        assert!(!CombinationRule::All.decide(2, 3));
        assert!(!CombinationRule::All.decide(0, 0));
        assert!(CombinationRule::AtLeast(2).decide(2, 3));
        assert!(!CombinationRule::AtLeast(2).decide(1, 3));
    }

    #[test]
    fn all_rule_is_stricter_than_any() {
        let sigs = shared_and_disjoint();
        let any = CollaborativeScoper::new(0.8).run(&sigs).unwrap();
        let all = CollaborativeScoper::new(0.8)
            .with_rule(CombinationRule::All)
            .run(&sigs)
            .unwrap();
        assert!(all.outcome.kept_count() <= any.outcome.kept_count());
        assert!(all.outcome.kept().is_subset(&any.outcome.kept()));
    }

    #[test]
    fn invalid_variance_is_typed_error() {
        let sigs = shared_and_disjoint();
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = CollaborativeScoper::new(bad).run(&sigs).unwrap_err();
            assert!(matches!(err, ScopingError::InvalidVariance { .. }), "{bad}");
        }
    }

    #[test]
    fn builder_validates_variance_up_front() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = CollaborativeScoper::builder()
                .explained_variance(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, ScopingError::InvalidVariance { .. }), "{bad}");
        }
        let built = CollaborativeScoper::builder()
            .explained_variance(0.9)
            .combination(CombinationRule::AtLeast(2))
            .parallel(false)
            .build()
            .unwrap();
        assert_eq!(built.variance(), 0.9);
        assert!(!built.is_parallel());
    }

    #[test]
    fn sequential_mode_matches_parallel_exactly() {
        let sigs = shared_and_disjoint();
        let par = CollaborativeScoper::builder()
            .explained_variance(0.8)
            .build()
            .unwrap()
            .run(&sigs)
            .unwrap();
        let seq = CollaborativeScoper::builder()
            .explained_variance(0.8)
            .parallel(false)
            .build()
            .unwrap()
            .run(&sigs)
            .unwrap();
        assert_eq!(par.outcome, seq.outcome);
        assert_eq!(par.accept_votes, seq.accept_votes);
        assert_eq!(par.best_margin, seq.best_margin);
    }

    #[test]
    fn single_schema_is_typed_error() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let sigs = SchemaSignatures::from_matrices(vec![m], vec!["only".into()]);
        let err = CollaborativeScoper::new(0.8).run(&sigs).unwrap_err();
        assert_eq!(err, ScopingError::TooFewSchemas { found: 1 });
    }

    #[test]
    fn empty_schema_is_typed_error() {
        let m1 = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.5, 0.5]]);
        let m2 = Matrix::zeros(0, 2);
        let sigs = SchemaSignatures::from_matrices(vec![m1, m2], vec!["a".into(), "b".into()]);
        let err = CollaborativeScoper::new(0.8).run(&sigs).unwrap_err();
        assert_eq!(err, ScopingError::EmptySchema { schema: 1 });
    }

    #[test]
    fn singleton_schema_is_typed_error() {
        let m1 = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.5, 0.5]]);
        let m2 = Matrix::from_rows(&[vec![3.0, 3.0]]);
        let sigs = SchemaSignatures::from_matrices(vec![m1, m2], vec!["a".into(), "b".into()]);
        let err = CollaborativeScoper::new(0.8).run(&sigs).unwrap_err();
        assert_eq!(
            err,
            ScopingError::DegenerateSchema {
                schema: 1,
                elements: 1
            }
        );
    }

    #[test]
    fn nan_signature_is_typed_error_through_run() {
        let mut sigs_base = shared_and_disjoint();
        let mut poisoned = sigs_base.schema(1).clone();
        poisoned[(4, 2)] = f64::NAN;
        let mats: Vec<Matrix> = (0..sigs_base.schema_count())
            .map(|m| {
                if m == 1 {
                    poisoned.clone()
                } else {
                    sigs_base.schema(m).clone()
                }
            })
            .collect();
        sigs_base = SchemaSignatures::from_matrices(mats, sigs_base.schema_names().to_vec());
        let err = CollaborativeScoper::new(0.8).run(&sigs_base).unwrap_err();
        assert_eq!(
            err,
            ScopingError::NonFiniteSignature {
                schema: 1,
                element: 4
            }
        );
    }

    #[test]
    fn constant_schema_is_rank_deficient_through_run() {
        let m1 = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.5, 0.5]]);
        let m2 = Matrix::from_rows(&vec![vec![7.0, 7.0]; 5]);
        let sigs = SchemaSignatures::from_matrices(vec![m1, m2], vec!["a".into(), "b".into()]);
        let err = CollaborativeScoper::new(0.8).run(&sigs).unwrap_err();
        assert_eq!(err, ScopingError::RankDeficient { schema: 1 });
    }

    #[test]
    fn builder_accepts_exact_boundary_v() {
        // v = 1.0 is the inclusive upper bound of (0, 1] and must stay
        // valid; v = 0.0 is excluded and must stay a typed error.
        let full = CollaborativeScoper::builder()
            .explained_variance(1.0)
            .build()
            .unwrap();
        assert_eq!(full.variance(), 1.0);
        let run = full.run(&shared_and_disjoint()).unwrap();
        assert!(!run.outcome.is_empty());
        let err = CollaborativeScoper::builder()
            .explained_variance(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScopingError::InvalidVariance { value: 0.0 });
    }

    #[test]
    fn two_element_schemas_survive_full_variance() {
        // A 2-element schema retains at most 1 effective component after
        // centering; even at v = 1.0 that must train (or fail typed),
        // never panic or demand more components than elements.
        let m1 = Matrix::from_rows(&[vec![1.0, 0.0, 0.5], vec![0.0, 1.0, -0.5]]);
        let m2 = Matrix::from_rows(&[vec![0.9, 0.1, 0.4], vec![0.1, 0.9, -0.4]]);
        let sigs = SchemaSignatures::from_matrices(vec![m1, m2], vec!["a".into(), "b".into()]);
        let run = CollaborativeScoper::new(1.0).run(&sigs).unwrap();
        assert_eq!(run.outcome.len(), 4);
        for model in &run.models {
            assert!(model.n_components() <= 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sigs = shared_and_disjoint();
        let a = CollaborativeScoper::new(0.75).run(&sigs).unwrap();
        let b = CollaborativeScoper::new(0.75).run(&sigs).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.accept_votes, b.accept_votes);
    }
}
