//! Minimal JSON reader/writer for model exchange.
//!
//! The workspace's hermetic dependency policy (DESIGN.md §6) forbids
//! registry crates, so the JSON side of the exchange format is implemented
//! here: a document model ([`JsonValue`]), a writer with full string
//! escaping, and a recursive-descent parser. Scope is deliberately narrow —
//! exactly what [`crate::exchange`] and the repro CLI need:
//!
//! - numbers are `f64` (Rust's `Display` for `f64` is the shortest decimal
//!   representation that round-trips, so `write → parse` is lossless for
//!   every finite value),
//! - non-finite numbers serialize as `null` (matching serde_json's
//!   behaviour), which then fails numeric extraction on ingest — a NaN can
//!   never smuggle itself through a round-trip,
//! - objects preserve insertion order so emitted documents are
//!   byte-deterministic across runs.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

/// Error raised by [`parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Convenience constructor for an object literal.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for an array of numbers.
    pub fn numbers(values: &[f64]) -> Self {
        JsonValue::Array(values.iter().map(|&x| JsonValue::Number(x)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// A number that is a non-negative integer (exactly representable).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
            Some(x as usize)
        } else {
            None
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Extracts an array of numbers.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(JsonValue::as_f64).collect()
    }

    /// Serializes compactly (no whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Serializes with newlines and two-space indentation.
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write_into(out, indent, depth + 1);
                });
            }
            JsonValue::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_into(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // f64 Display is the shortest decimal form that parses back to the
        // same bits, so round-trips are exact.
        let _ = write!(out, "{x}");
    } else {
        // JSON has no NaN/Infinity literal; mirror serde_json and emit null
        // (ingest then rejects it during numeric extraction).
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (trailing content is an error).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

/// Maximum nesting depth accepted by [`parse`] — the recursive-descent
/// parser would otherwise overflow the stack on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing on these boundaries is valid
            // UTF-8 (escapes and quotes are ASCII).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a str"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("high surrogate not followed by \\u"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(scalar).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part (JSON forbids leading zeros, but accepting them is a
        // harmless superset; we only emit canonical numbers).
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number '{text}'")))?;
        Ok(JsonValue::Number(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for doc in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = parse(doc).unwrap();
            assert_eq!(v.write(), doc);
        }
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        let mut rng = cs_linalg::Xoshiro256::seed_from(7);
        for _ in 0..2000 {
            let x = rng.next_gaussian() * 10f64.powi((rng.next_below(60) as i32) - 30);
            let v = JsonValue::Number(x);
            let back = parse(&v.write()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote\" back\\slash \n\r\t \u{08}\u{0C} \u{1} emoji🦀 Köln 北京";
        let v = JsonValue::String(nasty.to_string());
        let back = parse(&v.write()).unwrap();
        assert_eq!(back.as_str().unwrap(), nasty);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_parse() {
        let v = parse(r#""\u0041\u00e9\ud83e\udd80""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé🦀");
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\udd80""#).is_err(), "unpaired low surrogate");
        assert!(parse(r#""\ud83e\u0041""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn objects_preserve_order_and_lookup() {
        let doc = r#"{"b": 1, "a": [1, 2, {"c": null}], "flag": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("b").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        match &v {
            JsonValue::Object(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["b", "a", "flag"]);
            }
            _ => unreachable!(),
        }
        assert_eq!(parse(&v.write()).unwrap(), v);
        assert_eq!(parse(&v.write_pretty()).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "[1 2]",
            "{\"a\":1,}",
            "[]]",
            "tru e",
            "\"\\q\"",
            "--1",
            "+1",
            "NaN",
            "Infinity",
        ] {
            assert!(parse(doc).is_err(), "accepted malformed {doc:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).write(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).write(), "null");
        // …and null refuses numeric extraction.
        assert_eq!(parse("null").unwrap().as_f64(), None);
    }

    #[test]
    fn as_usize_rejects_non_integers() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-2").unwrap().as_usize(), None);
        assert_eq!(parse("1e300").unwrap().as_usize(), None);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = JsonValue::object(vec![("xs", JsonValue::numbers(&[1.0, 2.0]))]);
        let pretty = v.write_pretty();
        assert!(pretty.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
    }
}
