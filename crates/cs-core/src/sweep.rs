//! Efficient evaluation of collaborative scoping over a whole `v` grid.
//!
//! The AUC metrics of the paper (Table 4) integrate performance over the
//! full explained-variance range `v ∈ (1..0)`. Re-running Algorithm 1 + 2
//! per grid point would redo the SVDs dozens of times. This module
//! exploits PCA structure instead: with orthonormal components, the
//! reconstruction error of a signature at `n` retained components is
//!
//! `MSE(n) = (‖x − μ‖² − Σ_{i≤n} z_i²) / dim`
//!
//! where `z = (x − μ)·PCᵀ` is the *full-rank* latent projection. So one
//! projection per `(element, model)` pair — cached as prefix sums — makes
//! every grid point an O(1)-per-element lookup. A property test pins the
//! sweep's decisions to [`CollaborativeScoper::run`]'s.

use std::sync::Arc;

use crate::collaborative::CombinationRule;
use crate::error::ScopingError;
use crate::local_model::{check_spectrum, check_trainable};
use crate::outcome::{DegradedSchema, ScopingOutcome};
use crate::pool::ExecPolicy;
use crate::signatures::SchemaSignatures;
use cs_linalg::{Matrix, Pca, PcaConfig, PcaSolver};
use cs_schema::ElementId;

/// Cached latent projections of one element set under one model.
#[derive(Debug, Clone)]
struct ProjTable {
    /// Per element: prefix sums of squared latent coordinates
    /// (`prefix[e][n] = Σ_{i<n} z_i²`, with `prefix[e][0] = 0`).
    prefix: Vec<Vec<f64>>,
    /// Per element: squared norm of the centered signature.
    total: Vec<f64>,
}

impl ProjTable {
    fn build(pca: &Pca, data: &Matrix) -> Self {
        let centered = data.sub_row_vector(pca.mean());
        let z = centered.matmul_transposed(pca.components());
        let mut prefix = Vec::with_capacity(data.rows());
        let mut total = Vec::with_capacity(data.rows());
        for (zrow, crow) in z.rows_iter().zip(centered.rows_iter()) {
            let mut p = Vec::with_capacity(zrow.len() + 1);
            let mut acc = 0.0;
            p.push(0.0);
            for &v in zrow {
                acc += v * v;
                p.push(acc);
            }
            prefix.push(p);
            total.push(crow.iter().map(|x| x * x).sum());
        }
        Self { prefix, total }
    }

    /// Reconstruction MSE of element `e` at `n` retained components.
    fn error_at(&self, e: usize, n: usize, dim: usize) -> f64 {
        let p = &self.prefix[e];
        let n = n.min(p.len() - 1);
        (self.total[e] - p[n]).max(0.0) / dim as f64
    }

    fn len(&self) -> usize {
        self.prefix.len()
    }
}

/// The immutable projection cache, shared by every clone of a sweep.
#[derive(Debug)]
struct SweepCache {
    element_ids: Vec<ElementId>,
    dim: usize,
    /// Element count per schema (degraded schemas included — their
    /// elements still occupy rows of the unified order).
    schema_lens: Vec<usize>,
    /// Full explained-variance ratios per schema model (empty for
    /// degraded schemas).
    ratios: Vec<Vec<f64>>,
    /// `own[m]` — schema `m`'s own elements under its own model
    /// (`None` when `m` is degraded).
    own: Vec<Option<ProjTable>>,
    /// `cross[k][m]` — schema `k`'s elements under model `m` (`None` on
    /// the diagonal and wherever `k` or `m` is degraded).
    cross: Vec<Vec<Option<ProjTable>>>,
    /// Schemas no local model could be trained for, in schema order.
    degraded: Vec<DegradedSchema>,
}

/// Prepared state for sweeping `v` over a catalog's signatures.
///
/// The cache is immutable once prepared and held behind an [`Arc`], so
/// `Clone` is a reference-count bump — each worker of
/// [`Self::assess_grid`] carries its own handle to the shared
/// projections.
#[derive(Debug, Clone)]
pub struct CollaborativeSweep {
    inner: Arc<SweepCache>,
}

impl CollaborativeSweep {
    /// Fits full-rank PCA per schema and caches all projections, fanning
    /// the per-schema work out on the shared pool.
    pub fn prepare(signatures: &SchemaSignatures) -> Result<Self, ScopingError> {
        Self::prepare_with(signatures, &ExecPolicy::Global)
    }

    /// [`Self::prepare`] under an explicit execution policy. Both the
    /// PCA fits and the projection tables are per-schema pure
    /// computations assembled in slot order, so every policy produces a
    /// bit-identical cache.
    ///
    /// # Graceful degradation
    ///
    /// A schema whose local model cannot be trained (empty, singleton,
    /// non-finite or zero-variance signatures) does **not** abort the
    /// sweep: it is recorded as a [`DegradedSchema`], excluded as a
    /// foreign assessor, and every outcome prunes its elements
    /// (`decisions = false`). Only when fewer than two schemas remain
    /// healthy does preparation fail — with the first degraded schema's
    /// typed error, since that schema is what made the catalog
    /// unassessable.
    pub fn prepare_with(
        signatures: &SchemaSignatures,
        exec: &ExecPolicy,
    ) -> Result<Self, ScopingError> {
        Self::prepare_with_solver(signatures, exec, PcaSolver::Auto)
    }

    /// [`Self::prepare_with`] with the PCA eigensolver pinned. The sweep
    /// needs *full-rank* spectra for its prefix-sum trick, so a
    /// [`PcaSolver::Truncated`] choice degrades to the exact Gram path
    /// here (truncation has nothing to skip at full rank) — the pin still
    /// controls which exact decomposition runs.
    pub fn prepare_with_solver(
        signatures: &SchemaSignatures,
        exec: &ExecPolicy,
        solver: PcaSolver,
    ) -> Result<Self, ScopingError> {
        let k = signatures.schema_count();
        if k < 2 {
            return Err(ScopingError::TooFewSchemas { found: k });
        }
        // Classify every schema with the same guards the strict path
        // (`LocalModel::train`) applies, so both paths agree on what is
        // degenerate.
        let sigs = signatures.clone();
        let config = PcaConfig::new().with_solver(solver);
        let fits: Vec<Result<Pca, ScopingError>> = exec.run_slots(k, move |m| {
            let data = sigs.schema(m);
            check_trainable(m, data)?;
            let pca = Pca::fit_with(data, config)?;
            check_spectrum(m, data, &pca)?;
            Ok(pca)
        })?;
        let mut pcas: Vec<Option<Pca>> = Vec::with_capacity(k);
        let mut degraded = Vec::new();
        for (m, fit) in fits.into_iter().enumerate() {
            match fit {
                Ok(pca) => pcas.push(Some(pca)),
                Err(error) => {
                    pcas.push(None);
                    degraded.push(DegradedSchema { schema: m, error });
                }
            }
        }
        let healthy = k - degraded.len();
        if healthy < 2 {
            // Not enough schemas left to collaborate; surface the first
            // failure as the reason.
            return Err(degraded
                .into_iter()
                .next()
                .map(|d| d.error)
                .unwrap_or(ScopingError::TooFewSchemas { found: k }));
        }
        let ratios = pcas
            .iter()
            .map(|p| {
                p.as_ref()
                    .map(|p| p.explained_variance_ratio().to_vec())
                    .unwrap_or_default()
            })
            .collect();
        // One slot per schema: its own-model table plus its row of
        // cross-model tables. Degraded schemas get no tables at all —
        // their signatures may be non-finite and must never be projected.
        let sigs = signatures.clone();
        let shared_pcas: Arc<Vec<Option<Pca>>> = Arc::new(pcas);
        let per_schema = exec.run_slots(k, move |sk| {
            let own = shared_pcas[sk]
                .as_ref()
                .map(|pca| ProjTable::build(pca, sigs.schema(sk)));
            let cross: Vec<Option<ProjTable>> = (0..k)
                .map(|m| {
                    if m == sk || own.is_none() {
                        return None;
                    }
                    shared_pcas[m]
                        .as_ref()
                        .map(|pca| ProjTable::build(pca, sigs.schema(sk)))
                })
                .collect();
            (own, cross)
        })?;
        let mut own = Vec::with_capacity(k);
        let mut cross = Vec::with_capacity(k);
        for (o, c) in per_schema {
            own.push(o);
            cross.push(c);
        }
        Ok(Self {
            inner: Arc::new(SweepCache {
                element_ids: signatures.element_ids(),
                dim: signatures.dim(),
                schema_lens: (0..k).map(|m| signatures.schema_len(m)).collect(),
                ratios,
                own,
                cross,
                degraded,
            }),
        })
    }

    /// Schemas the sweep skipped (empty for a fully healthy catalog).
    pub fn degraded(&self) -> &[DegradedSchema] {
        &self.inner.degraded
    }

    /// Number of schemas with a trained local model.
    pub fn healthy_count(&self) -> usize {
        self.schema_count() - self.inner.degraded.len()
    }

    /// Number of schemas.
    pub fn schema_count(&self) -> usize {
        self.inner.own.len()
    }

    /// Components each model retains at explained variance `v`
    /// (0 for degraded schemas, which have no model).
    pub fn components_at(&self, v: f64) -> Vec<usize> {
        self.inner
            .ratios
            .iter()
            .map(|r| {
                if r.is_empty() {
                    0
                } else {
                    Pca::components_for_variance(r, v)
                }
            })
            .collect()
    }

    /// Local linkability ranges `l_m` at explained variance `v`
    /// (0.0 for degraded schemas, which accept nothing).
    pub fn ranges_at(&self, v: f64) -> Vec<f64> {
        let comps = self.components_at(v);
        self.inner
            .own
            .iter()
            .zip(comps.iter())
            .map(|(table, &n)| {
                table
                    .as_ref()
                    .map(|t| {
                        (0..t.len())
                            .map(|e| t.error_at(e, n, self.inner.dim))
                            .fold(0.0, f64::max)
                    })
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Collaborative assessment at one grid point (equivalent to
    /// [`crate::CollaborativeScoper::run`] at the same `v`).
    ///
    /// # Errors
    /// [`ScopingError::InvalidVariance`] when `v` lies outside `(0, 1]`.
    pub fn assess_at(&self, v: f64) -> Result<ScopingOutcome, ScopingError> {
        self.assess_with_rule(v, CombinationRule::Any)
    }

    /// Assessment with an explicit combination rule.
    ///
    /// # Errors
    /// [`ScopingError::InvalidVariance`] when `v` lies outside `(0, 1]`.
    pub fn assess_with_rule(
        &self,
        v: f64,
        rule: CombinationRule,
    ) -> Result<ScopingOutcome, ScopingError> {
        if !(v.is_finite() && v > 0.0 && v <= 1.0) {
            return Err(ScopingError::InvalidVariance { value: v });
        }
        Ok(self.assess_with_rule_unchecked(v, rule))
    }

    /// The grid-point kernel, for callers that already validated `v`
    /// (the grid path validates once on the caller thread, then fans
    /// out).
    fn assess_with_rule_unchecked(&self, v: f64, rule: CombinationRule) -> ScopingOutcome {
        let cache = &*self.inner;
        let k = self.schema_count();
        // A degraded schema is no assessor: foreign votes are counted
        // out of the healthy models only.
        let total_foreign = self.healthy_count().saturating_sub(1);
        let comps = self.components_at(v);
        let ranges = self.ranges_at(v);
        let mut decisions = Vec::with_capacity(cache.element_ids.len());
        for sk in 0..k {
            if cache.own[sk].is_none() {
                // Degraded schema: its elements are pruned wholesale.
                decisions.extend(std::iter::repeat(false).take(cache.schema_lens[sk]));
                continue;
            }
            for e in 0..cache.schema_lens[sk] {
                let mut accepts = 0usize;
                for m in 0..k {
                    if let Some(table) = &cache.cross[sk][m] {
                        if table.error_at(e, comps[m], cache.dim) <= ranges[m] {
                            accepts += 1;
                        }
                    }
                }
                decisions.push(rule.decide(accepts, total_foreign));
            }
        }
        ScopingOutcome::new(
            format!("Collaborative[PCA] v={v}"),
            cache.element_ids.clone(),
            decisions,
        )
        .with_degraded(cache.degraded.clone())
    }

    /// Assesses every grid point of `vs`, dealing contiguous `v`-slices
    /// to the shared pool's workers. Each grid point reads the cached
    /// projections independently, so the output vector (in `vs` order)
    /// is bit-identical to calling [`Self::assess_with_rule`] in a loop.
    pub fn assess_grid(
        &self,
        vs: &[f64],
        rule: CombinationRule,
    ) -> Result<Vec<ScopingOutcome>, ScopingError> {
        self.assess_grid_with(vs, rule, &ExecPolicy::Global)
    }

    /// [`Self::assess_grid`] under an explicit execution policy.
    pub fn assess_grid_with(
        &self,
        vs: &[f64],
        rule: CombinationRule,
        exec: &ExecPolicy,
    ) -> Result<Vec<ScopingOutcome>, ScopingError> {
        // Validate up front: a bad grid point should be a typed error on
        // the caller thread, not a worker panic.
        for &v in vs {
            if !(v.is_finite() && v > 0.0 && v <= 1.0) {
                return Err(ScopingError::InvalidVariance { value: v });
            }
        }
        let sweep = self.clone();
        let vs: Arc<[f64]> = vs.into();
        exec.run_slots(vs.len(), move |i| {
            sweep.assess_with_rule_unchecked(vs[i], rule)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collaborative::CollaborativeScoper;
    use cs_linalg::Xoshiro256;

    fn random_sigs(seed: u64) -> SchemaSignatures {
        let mut rng = Xoshiro256::seed_from(seed);
        let dim = 12;
        // Shared basis + per-schema private directions to create structure.
        let shared: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let mats: Vec<Matrix> = [10usize, 14, 8]
            .iter()
            .map(|&n| {
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| {
                        let mut row: Vec<f64> =
                            (0..dim).map(|_| rng.next_gaussian() * 0.3).collect();
                        for b in &shared {
                            cs_linalg::vecops::axpy(&mut row, rng.next_gaussian(), b);
                        }
                        row
                    })
                    .collect();
                Matrix::from_rows(&rows)
            })
            .collect();
        SchemaSignatures::from_matrices(mats, vec!["A".into(), "B".into(), "C".into()])
    }

    #[test]
    fn sweep_matches_direct_run_across_grid() {
        let sigs = random_sigs(5);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        for &v in &[0.99, 0.9, 0.75, 0.5, 0.3, 0.1, 0.01] {
            let fast = sweep.assess_at(v).unwrap();
            let slow = CollaborativeScoper::new(v).run(&sigs).unwrap().outcome;
            assert_eq!(fast.decisions, slow.decisions, "divergence at v={v}");
        }
    }

    #[test]
    fn ranges_grow_as_v_shrinks() {
        let sigs = random_sigs(6);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        let strict = sweep.ranges_at(0.95);
        let loose = sweep.ranges_at(0.2);
        for (s, l) in strict.iter().zip(loose.iter()) {
            assert!(l >= s, "range must widen: {s} vs {l}");
        }
    }

    #[test]
    fn components_monotone_in_v() {
        let sigs = random_sigs(7);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        let many = sweep.components_at(0.99);
        let few = sweep.components_at(0.2);
        for (m, f) in many.iter().zip(few.iter()) {
            assert!(m >= f);
        }
    }

    #[test]
    fn errors_match_explicit_reconstruction() {
        let sigs = random_sigs(8);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        // Compare the cached error of schema 1's elements under model 0
        // against the explicit PCA reconstruction at v = 0.6.
        let v = 0.6;
        let n0 = sweep.components_at(v)[0];
        let pca = Pca::fit_full(sigs.schema(0)).unwrap().with_components(n0);
        let explicit = pca.reconstruction_errors(sigs.schema(1));
        let table = sweep.inner.cross[1][0].as_ref().unwrap();
        for (e, expected) in explicit.iter().enumerate() {
            let got = table.error_at(e, n0, sigs.dim());
            assert!(
                (got - expected).abs() < 1e-9,
                "elem {e}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let one = SchemaSignatures::from_matrices(
            vec![Matrix::from_rows(&[vec![1.0, 0.0]])],
            vec!["only".into()],
        );
        assert!(matches!(
            CollaborativeSweep::prepare(&one),
            Err(ScopingError::TooFewSchemas { found: 1 })
        ));
        // One healthy schema + one empty: not enough left to collaborate,
        // so the first degraded schema's typed error surfaces.
        let with_empty = SchemaSignatures::from_matrices(
            vec![
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.2]]),
                Matrix::zeros(0, 2),
            ],
            vec!["a".into(), "b".into()],
        );
        assert!(matches!(
            CollaborativeSweep::prepare(&with_empty),
            Err(ScopingError::EmptySchema { schema: 1 })
        ));
    }

    #[test]
    fn out_of_range_v_is_typed_error() {
        let sigs = random_sigs(9);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        for bad in [0.0, -0.5, 1.0001, f64::NAN, f64::INFINITY] {
            let err = sweep.assess_at(bad).unwrap_err();
            assert!(
                matches!(err, ScopingError::InvalidVariance { .. }),
                "v={bad}: {err:?}"
            );
        }
        // The boundaries of (0, 1] themselves stay valid.
        assert!(sweep.assess_at(1.0).is_ok());
        assert!(sweep.assess_at(1e-9).is_ok());
    }

    /// Replaces schema `target` of `sigs` with `mat`, keeping names.
    fn with_schema_replaced(
        sigs: &SchemaSignatures,
        target: usize,
        mat: Matrix,
    ) -> SchemaSignatures {
        let mats: Vec<Matrix> = (0..sigs.schema_count())
            .map(|m| {
                if m == target {
                    mat.clone()
                } else {
                    sigs.schema(m).clone()
                }
            })
            .collect();
        SchemaSignatures::from_matrices(mats, sigs.schema_names().to_vec())
    }

    #[test]
    fn degraded_schema_is_skipped_not_fatal() {
        let sigs = random_sigs(20);
        let dim = sigs.dim();
        // Schema 1 becomes all-duplicate rows → rank-deficient.
        let flat = Matrix::from_rows(&vec![vec![0.5; dim]; sigs.schema_len(1)]);
        let hostile = with_schema_replaced(&sigs, 1, flat);
        let sweep = CollaborativeSweep::prepare(&hostile).unwrap();
        assert_eq!(sweep.healthy_count(), 2);
        assert_eq!(sweep.degraded().len(), 1);
        assert_eq!(sweep.degraded()[0].schema, 1);
        assert_eq!(
            sweep.degraded()[0].error,
            ScopingError::RankDeficient { schema: 1 }
        );
        let outcome = sweep.assess_at(0.6).unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(outcome.degraded, sweep.degraded().to_vec());
        // Every element of the degraded schema is pruned; the healthy
        // schemas are still assessed normally.
        assert_eq!(outcome.kept_in_schema(1), 0);
        assert_eq!(outcome.len(), hostile.total_len());
        let healthy_only =
            CollaborativeSweep::prepare(&with_schema_replaced(&sigs, 1, sigs.schema(1).clone()))
                .unwrap();
        assert!(!healthy_only.assess_at(0.6).unwrap().is_degraded());
    }

    #[test]
    fn non_finite_schema_degrades_without_poisoning_others() {
        let sigs = random_sigs(21);
        let mut bad = sigs.schema(2).clone();
        bad[(0, 0)] = f64::NAN;
        let hostile = with_schema_replaced(&sigs, 2, bad);
        let sweep = CollaborativeSweep::prepare(&hostile).unwrap();
        assert_eq!(
            sweep.degraded()[0].error,
            ScopingError::NonFiniteSignature {
                schema: 2,
                element: 0
            }
        );
        let outcome = sweep.assess_at(0.5).unwrap();
        // No NaN leaks into decisions: every healthy element got a real
        // verdict and at least one survives on this seed.
        assert_eq!(outcome.kept_in_schema(2), 0);
        assert!(outcome.kept_count() > 0);
    }

    #[test]
    fn degraded_sweep_is_policy_invariant() {
        let sigs = random_sigs(22);
        let flat = Matrix::from_rows(&vec![vec![-1.0; sigs.dim()]; sigs.schema_len(0)]);
        let hostile = with_schema_replaced(&sigs, 0, flat);
        let seq = CollaborativeSweep::prepare_with(&hostile, &ExecPolicy::Sequential).unwrap();
        let par = CollaborativeSweep::prepare_with(
            &hostile,
            &ExecPolicy::Pool(Arc::new(crate::pool::ThreadPool::with_threads(3))),
        )
        .unwrap();
        for &v in &[0.9, 0.5, 0.2] {
            let a = seq.assess_at(v).unwrap();
            let b = par.assess_at(v).unwrap();
            assert_eq!(a, b, "v={v}");
        }
    }

    #[test]
    fn assess_grid_matches_pointwise_loop() {
        let sigs = random_sigs(10);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        let vs = [0.95, 0.8, 0.6, 0.4, 0.25, 0.1, 0.05];
        let batch = sweep.assess_grid(&vs, CombinationRule::Any).unwrap();
        assert_eq!(batch.len(), vs.len());
        for (outcome, &v) in batch.iter().zip(vs.iter()) {
            assert_eq!(
                outcome.decisions,
                sweep.assess_at(v).unwrap().decisions,
                "v={v}"
            );
        }
    }

    #[test]
    fn assess_grid_rejects_bad_points_as_typed_error() {
        let sigs = random_sigs(11);
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            let err = sweep
                .assess_grid(&[0.5, bad], CombinationRule::Any)
                .unwrap_err();
            assert!(matches!(err, ScopingError::InvalidVariance { .. }), "{bad}");
        }
    }

    #[test]
    fn prepare_policies_build_identical_caches() {
        let sigs = random_sigs(12);
        let seq = CollaborativeSweep::prepare_with(&sigs, &ExecPolicy::Sequential).unwrap();
        let par = CollaborativeSweep::prepare(&sigs).unwrap();
        for &v in &[0.9, 0.5, 0.2] {
            assert_eq!(seq.components_at(v), par.components_at(v));
            assert_eq!(seq.ranges_at(v), par.ranges_at(v));
            assert_eq!(
                seq.assess_at(v).unwrap().decisions,
                par.assess_at(v).unwrap().decisions
            );
        }
    }
}
