//! Non-linear local encoder–decoders — the paper's stated future work
//! ("we plan to extend encoder-decoders in order to recognize non-linear
//! signature patterns", Section 5).
//!
//! [`NeuralLocalModel`] swaps Algorithm 1's PCA for the dense autoencoder
//! of `cs-nn`, keeping everything else identical: the model trains
//! self-supervised on its own schema's signatures, the **local
//! linkability range** is still the maximum own reconstruction MSE
//! (Definition 3), and the collaborative assessment (Algorithm 2 /
//! Definition 4) is unchanged. The generalization knob is the bottleneck
//! width instead of the explained variance.

use crate::collaborative::{CombinationRule, CostReport};
use crate::error::ScopingError;
use crate::outcome::ScopingOutcome;
use crate::signatures::SchemaSignatures;
use cs_linalg::Matrix;
use cs_nn::{train_autoencoder, Mlp, TrainConfig};

/// A self-supervised neural local model: `{AE_k, l_k}`.
#[derive(Debug, Clone)]
pub struct NeuralLocalModel {
    schema_index: usize,
    network: Mlp,
    linkability_range: f64,
}

impl NeuralLocalModel {
    /// Trains an autoencoder on one schema's signatures and derives the
    /// local linkability range.
    pub fn train(
        schema_index: usize,
        signatures: &Matrix,
        config: &TrainConfig,
    ) -> Result<Self, ScopingError> {
        if signatures.rows() == 0 {
            return Err(ScopingError::EmptySchema {
                schema: schema_index,
            });
        }
        // Per-schema seed offset keeps runs independent yet deterministic.
        let cfg = TrainConfig {
            seed: config.seed.wrapping_add(schema_index as u64 * 0x9E37_79B9),
            ..config.clone()
        };
        let network = train_autoencoder(signatures, &cfg);
        let own = cs_nn::train::reconstruction_errors(&network, signatures);
        let linkability_range = own.into_iter().fold(0.0, f64::max);
        Ok(Self {
            schema_index,
            network,
            linkability_range,
        })
    }

    /// Index of the schema this model was trained on.
    pub fn schema_index(&self) -> usize {
        self.schema_index
    }

    /// The local linkability range `l_k`.
    pub fn linkability_range(&self) -> f64 {
        self.linkability_range
    }

    /// The trained network.
    pub fn network(&self) -> &Mlp {
        &self.network
    }

    /// Reconstruction MSE of foreign signatures.
    pub fn reconstruction_errors(&self, foreign: &Matrix) -> Vec<f64> {
        cs_nn::train::reconstruction_errors(&self.network, foreign)
    }

    /// Definition 4 with the neural reconstruction.
    pub fn assess(&self, foreign: &Matrix) -> Vec<bool> {
        self.reconstruction_errors(foreign)
            .into_iter()
            .map(|e| e <= self.linkability_range)
            .collect()
    }
}

/// Collaborative scoping with neural local models.
#[derive(Debug, Clone)]
pub struct NeuralCollaborativeScoper {
    config: TrainConfig,
    rule: CombinationRule,
}

/// Result of a neural collaborative run.
#[derive(Debug, Clone)]
pub struct NeuralCollaborativeRun {
    /// Keep/prune decisions.
    pub outcome: ScopingOutcome,
    /// Foreign-model acceptance votes per element.
    pub accept_votes: Vec<usize>,
    /// The trained local models.
    pub models: Vec<NeuralLocalModel>,
    /// Cost accounting.
    pub cost: CostReport,
}

impl NeuralCollaborativeScoper {
    /// Creates a scoper with the given training configuration and the
    /// paper's ANY combination rule.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            rule: CombinationRule::Any,
        }
    }

    /// Overrides the combination rule.
    pub fn with_rule(mut self, rule: CombinationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Trains per-schema autoencoders (in parallel) and assesses
    /// collaboratively.
    pub fn run(
        &self,
        signatures: &SchemaSignatures,
    ) -> Result<NeuralCollaborativeRun, ScopingError> {
        let k = signatures.schema_count();
        if k < 2 {
            return Err(ScopingError::TooFewSchemas { found: k });
        }
        let sigs = signatures.clone();
        let config = self.config.clone();
        let models: Vec<NeuralLocalModel> = crate::pool::ExecPolicy::Global
            .run_slots(k, move |idx| {
                NeuralLocalModel::train(idx, sigs.schema(idx), &config)
            })?
            .into_iter()
            .collect::<Result<_, _>>()?;

        let mut accept_votes = Vec::with_capacity(signatures.total_len());
        for sk in 0..k {
            let sigs = signatures.schema(sk);
            let mut votes = vec![0usize; sigs.rows()];
            for model in models.iter().filter(|m| m.schema_index() != sk) {
                for (i, ok) in model.assess(sigs).into_iter().enumerate() {
                    if ok {
                        votes[i] += 1;
                    }
                }
            }
            accept_votes.extend(votes);
        }
        let decisions: Vec<bool> = accept_votes
            .iter()
            .map(|&a| self.rule.decide(a, k - 1))
            .collect();
        let outcome = ScopingOutcome::new(
            format!("Collaborative[AE {:?}]", self.config.hidden),
            signatures.element_ids(),
            decisions,
        );
        let cost = CostReport {
            pass_operations: signatures.total_len() * (k - 1),
            models_trained: k,
        };
        Ok(NeuralCollaborativeRun {
            outcome,
            accept_votes,
            models,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            hidden: vec![8, 3, 8],
            epochs: 150,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 21,
        }
    }

    /// Two schemas on a shared subspace, one alien — dimensions kept small
    /// so the test trains in milliseconds.
    fn shared_and_disjoint() -> SchemaSignatures {
        let dim = 12;
        let mut rng = Xoshiro256::seed_from(5);
        let shared: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let alien: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        let make = |basis: &[Vec<f64>], n: usize, rng: &mut Xoshiro256| {
            Matrix::from_rows(
                &(0..n)
                    .map(|_| {
                        let mut row = vec![0.0; dim];
                        for b in basis {
                            cs_linalg::vecops::axpy(&mut row, rng.next_gaussian(), b);
                        }
                        row
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let s1 = make(&shared, 20, &mut rng);
        let s2 = make(&shared, 22, &mut rng);
        let s3 = make(&alien, 18, &mut rng);
        SchemaSignatures::from_matrices(
            vec![s1, s2, s3],
            vec!["A".into(), "B".into(), "ALIEN".into()],
        )
    }

    #[test]
    fn neural_models_separate_shared_from_alien() {
        let sigs = shared_and_disjoint();
        let run = NeuralCollaborativeScoper::new(quick_config())
            .run(&sigs)
            .unwrap();
        let kept_a = run.outcome.kept_in_schema(0);
        let kept_b = run.outcome.kept_in_schema(1);
        let kept_alien = run.outcome.kept_in_schema(2);
        // Neural reconstruction is fuzzier than PCA; require a clear gap,
        // not perfection.
        let related = (kept_a + kept_b) as f64 / 42.0;
        let alien = kept_alien as f64 / 18.0;
        assert!(
            related > alien + 0.3,
            "related {related:.2} vs alien {alien:.2}"
        );
    }

    #[test]
    fn own_elements_pass_their_own_range() {
        let sigs = shared_and_disjoint();
        let model = NeuralLocalModel::train(0, sigs.schema(0), &quick_config()).unwrap();
        // By construction of l_k every training element passes.
        assert!(model.assess(sigs.schema(0)).iter().all(|&b| b));
        assert!(model.linkability_range() >= 0.0);
        assert_eq!(model.schema_index(), 0);
    }

    #[test]
    fn deterministic_per_config() {
        let sigs = shared_and_disjoint();
        let cfg = TrainConfig {
            epochs: 10,
            ..quick_config()
        };
        let a = NeuralCollaborativeScoper::new(cfg.clone())
            .run(&sigs)
            .unwrap();
        let b = NeuralCollaborativeScoper::new(cfg).run(&sigs).unwrap();
        assert_eq!(a.outcome.decisions, b.outcome.decisions);
    }

    #[test]
    fn errors_propagate() {
        let one = SchemaSignatures::from_matrices(
            vec![Matrix::from_rows(&[vec![1.0, 2.0]])],
            vec!["only".into()],
        );
        assert!(matches!(
            NeuralCollaborativeScoper::new(quick_config()).run(&one),
            Err(ScopingError::TooFewSchemas { found: 1 })
        ));
        let with_empty = SchemaSignatures::from_matrices(
            vec![Matrix::from_rows(&[vec![1.0, 2.0]]), Matrix::zeros(0, 2)],
            vec!["a".into(), "b".into()],
        );
        assert!(matches!(
            NeuralCollaborativeScoper::new(quick_config()).run(&with_empty),
            Err(ScopingError::EmptySchema { schema: 1 })
        ));
    }

    #[test]
    fn cost_report_counts() {
        let sigs = shared_and_disjoint();
        let cfg = TrainConfig {
            epochs: 5,
            ..quick_config()
        };
        let run = NeuralCollaborativeScoper::new(cfg).run(&sigs).unwrap();
        assert_eq!(run.cost.pass_operations, 60 * 2);
        assert_eq!(run.cost.models_trained, 3);
    }
}
