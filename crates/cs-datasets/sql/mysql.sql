-- OC-MySQL: the classicmodels sample database
-- (https://www.mysqltutorial.org/mysql-sample-database.aspx).
-- 8 tables, 59 attributes (Table 2 of the paper). Identifier casing is
-- flattened to lowercase, as the MySQL information schema reports it on
-- case-folding platforms — this is what creates the paper's
-- `ORDERDATE` vs `ORDER_DATETIME` serialization nuance.

CREATE TABLE customers (
    customernumber        INT PRIMARY KEY,
    customername          VARCHAR(50),
    contactlastname       VARCHAR(50),
    contactfirstname      VARCHAR(50),
    phone                 VARCHAR(50),
    addressline1          VARCHAR(50),
    addressline2          VARCHAR(50),
    city                  VARCHAR(50),
    state                 VARCHAR(50),
    postalcode            VARCHAR(15),
    country               VARCHAR(50),
    salesrepemployeenumber INT REFERENCES employees(employeenumber),
    creditlimit           DECIMAL(10,2)
);

CREATE TABLE employees (
    employeenumber INT PRIMARY KEY,
    lastname       VARCHAR(50),
    firstname      VARCHAR(50),
    extension      VARCHAR(10),
    email          VARCHAR(100),
    officecode     VARCHAR(10) REFERENCES offices(officecode),
    reportsto      INT REFERENCES employees(employeenumber),
    jobtitle       VARCHAR(50)
);

CREATE TABLE offices (
    officecode   VARCHAR(10) PRIMARY KEY,
    city         VARCHAR(50),
    phone        VARCHAR(50),
    addressline1 VARCHAR(50),
    addressline2 VARCHAR(50),
    state        VARCHAR(50),
    country      VARCHAR(50),
    postalcode   VARCHAR(15),
    territory    VARCHAR(10)
);

CREATE TABLE orderdetails (
    ordernumber     INT REFERENCES orders(ordernumber),
    productcode     VARCHAR(15) REFERENCES products(productcode),
    quantityordered INT,
    priceeach       DECIMAL(10,2),
    orderlinenumber SMALLINT,
    PRIMARY KEY (ordernumber, productcode)
);

CREATE TABLE orders (
    ordernumber    INT PRIMARY KEY,
    orderdate      DATE,
    requireddate   DATE,
    shippeddate    DATE,
    status         VARCHAR(15),
    comments       TEXT,
    customernumber INT REFERENCES customers(customernumber)
);

CREATE TABLE payments (
    customernumber INT REFERENCES customers(customernumber),
    checknumber    VARCHAR(50),
    paymentdate    DATE,
    amount         DECIMAL(10,2),
    PRIMARY KEY (customernumber, checknumber)
);

CREATE TABLE productlines (
    productline     VARCHAR(50) PRIMARY KEY,
    textdescription VARCHAR(4000),
    htmldescription TEXT,
    image           BLOB
);

CREATE TABLE products (
    productcode        VARCHAR(15) PRIMARY KEY,
    productname        VARCHAR(70),
    productline        VARCHAR(50) REFERENCES productlines(productline),
    productscale       VARCHAR(10),
    productvendor      VARCHAR(50),
    productdescription TEXT,
    quantityinstock    SMALLINT,
    buyprice           DECIMAL(10,2),
    msrp               DECIMAL(10,2)
);
