-- Formula One: race-data schema in the style of the JOLPICA-F1 / Ergast
-- database (https://github.com/jolpica/jolpica-f1). 16 tables,
-- 111 attributes (Table 2 of the paper). Entirely unrelated to the
-- order-customer domain: every element is unlinkable ground truth.

CREATE TABLE circuits (
    circuit_id   INT PRIMARY KEY,
    circuit_ref  VARCHAR(255),
    circuit_name VARCHAR(255),
    location     VARCHAR(255),
    country      VARCHAR(255),
    latitude     FLOAT,
    longitude    FLOAT,
    altitude     INT,
    url          VARCHAR(255)
);

CREATE TABLE constructors (
    constructor_id   INT PRIMARY KEY,
    constructor_ref  VARCHAR(255),
    constructor_name VARCHAR(255),
    nationality      VARCHAR(255),
    url              VARCHAR(255)
);

CREATE TABLE constructor_results (
    constructor_results_id INT PRIMARY KEY,
    race_id                INT REFERENCES races(race_id),
    constructor_id         INT REFERENCES constructors(constructor_id),
    points                 FLOAT,
    status_note            VARCHAR(255)
);

CREATE TABLE constructor_standings (
    constructor_standings_id INT PRIMARY KEY,
    race_id                  INT REFERENCES races(race_id),
    constructor_id           INT REFERENCES constructors(constructor_id),
    points                   FLOAT,
    position                 INT,
    position_text            VARCHAR(255),
    wins                     INT
);

CREATE TABLE drivers (
    driver_id   INT PRIMARY KEY,
    driver_ref  VARCHAR(255),
    car_number  INT,
    driver_code VARCHAR(3),
    forename    VARCHAR(255),
    surname     VARCHAR(255),
    dob         DATE,
    nationality VARCHAR(255),
    url         VARCHAR(255)
);

CREATE TABLE driver_standings (
    driver_standings_id INT PRIMARY KEY,
    race_id             INT REFERENCES races(race_id),
    driver_id           INT REFERENCES drivers(driver_id),
    points              FLOAT,
    position            INT,
    position_text       VARCHAR(255),
    wins                INT
);

CREATE TABLE lap_times (
    race_id      INT REFERENCES races(race_id),
    driver_id    INT REFERENCES drivers(driver_id),
    lap          INT,
    position     INT,
    lap_time     VARCHAR(255),
    milliseconds INT,
    PRIMARY KEY (race_id, driver_id, lap)
);

CREATE TABLE pit_stops (
    race_id      INT REFERENCES races(race_id),
    driver_id    INT REFERENCES drivers(driver_id),
    stop_number  INT,
    lap          INT,
    pit_time     VARCHAR(255),
    duration     VARCHAR(255),
    milliseconds INT,
    PRIMARY KEY (race_id, driver_id, stop_number)
);

CREATE TABLE qualifying (
    qualify_id     INT PRIMARY KEY,
    race_id        INT REFERENCES races(race_id),
    driver_id      INT REFERENCES drivers(driver_id),
    constructor_id INT REFERENCES constructors(constructor_id),
    car_number     INT,
    position       INT,
    q1_time        VARCHAR(255),
    q2_time        VARCHAR(255),
    q3_time        VARCHAR(255)
);

CREATE TABLE races (
    race_id     INT PRIMARY KEY,
    season_year INT REFERENCES seasons(season_year),
    round       INT,
    circuit_id  INT REFERENCES circuits(circuit_id),
    race_name   VARCHAR(255),
    race_date   DATE,
    race_time   TIME,
    url         VARCHAR(255),
    sprint_date DATE
);

CREATE TABLE results (
    result_id        INT PRIMARY KEY,
    race_id          INT REFERENCES races(race_id),
    driver_id        INT REFERENCES drivers(driver_id),
    constructor_id   INT REFERENCES constructors(constructor_id),
    grid             INT,
    position         INT,
    position_order   INT,
    points           FLOAT,
    laps             INT,
    race_duration    VARCHAR(255),
    fastest_lap      INT,
    fastest_lap_speed VARCHAR(255),
    status_id        INT REFERENCES status(status_id)
);

CREATE TABLE seasons (
    season_year INT PRIMARY KEY,
    season_url  VARCHAR(255),
    round_count INT
);

CREATE TABLE sprint_results (
    sprint_result_id INT PRIMARY KEY,
    race_id          INT REFERENCES races(race_id),
    driver_id        INT REFERENCES drivers(driver_id),
    constructor_id   INT REFERENCES constructors(constructor_id),
    grid             INT,
    position         INT,
    points           FLOAT,
    laps             INT,
    status_id        INT REFERENCES status(status_id)
);

CREATE TABLE status (
    status_id   INT PRIMARY KEY,
    status_text VARCHAR(255)
);

CREATE TABLE sessions (
    session_id   INT PRIMARY KEY,
    race_id      INT REFERENCES races(race_id),
    session_type VARCHAR(32),
    session_date DATE,
    session_time TIME,
    weather_note VARCHAR(255)
);

CREATE TABLE penalties (
    penalty_id    INT PRIMARY KEY,
    race_id       INT REFERENCES races(race_id),
    driver_id     INT REFERENCES drivers(driver_id),
    penalty_type  VARCHAR(64),
    seconds_added INT
);
