//! Parameterized synthetic multi-source matching scenarios with exact
//! ground truth.
//!
//! Used by property tests (scoping invariants must hold on arbitrary
//! scenarios, not just OC3), by the scaling benchmarks (complexity claims
//! of Section 3 need catalogs of controllable size), and by the
//! generator-driven fuzz layer in `cs-fault`.
//!
//! The generator draws from a pool of shared "concept" words: each schema
//! materializes a subset of the shared concepts (these become linkable
//! attributes, annotated across every schema pair that shares them) plus
//! private noise attributes (unlinkable). On top of that base model,
//! [`SyntheticConfig`] exposes workload knobs — linkable ratio, lexicon
//! overlap between schemas, naming-convention noise, subtype depth, and
//! per-schema size distributions — whose semantics are documented per
//! field and in DESIGN.md §13. Every knob preserves the **exact**
//! ground-truth [`LinkageSet`]: linkages are annotated by element
//! position during construction, never recovered by name, so even heavy
//! naming noise cannot desynchronize the truth from the catalog.
//!
//! Configurations are validated up front: [`try_generate`] rejects
//! impossible combinations (zero schemas, zero table width, more concept
//! picks than the accessible pool region) with a typed
//! [`SyntheticError`] instead of panicking mid-build.
//!
//! The `with_*` / [`all_unlinkable`] constructors build **adversarial**
//! variants (empty schema, singleton schema, all-duplicate signatures,
//! zero linkable elements) for the fault-injection harness. NaN/inf
//! signature corruption is *not* expressible here — catalogs are purely
//! textual — so that injector lives in `cs-fault`, which poisons the
//! encoded signature matrices directly.

use cs_linalg::Xoshiro256;
use cs_schema::{
    Attribute, Catalog, Constraint, DataType, ElementId, LinkageKind, LinkagePair, LinkageSet,
    Schema, Table,
};

use crate::Dataset;

/// Salt XORed into the seed for the naming-noise stream, so noise draws
/// never perturb the structural stream (level 0 must be byte-identical to
/// the un-noised output).
const NOISE_STREAM_SALT: u64 = 0x9E37_79B9_97F4_A7C5;

/// How many base attributes each schema materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDistribution {
    /// Every schema holds exactly `concepts_per_schema +
    /// private_per_schema` base attributes (the legacy behaviour).
    Fixed,
    /// Per-schema totals drawn uniformly from `[min, max]`, seeded.
    Uniform {
        /// Smallest allowed base-attribute count (≥ 1).
        min: usize,
        /// Largest allowed base-attribute count.
        max: usize,
    },
    /// A deterministic linear ramp from `min` (first schema) to `max`
    /// (last schema).
    Ramp {
        /// Base-attribute count of schema 0 (≥ 1).
        min: usize,
        /// Base-attribute count of the last schema.
        max: usize,
    },
}

/// Typed configuration error: [`try_generate`] refuses impossible knob
/// combinations up front instead of clamping silently or panicking
/// mid-build. Display strings are pinned in `tests/error_paths.rs`.
#[derive(Debug, Clone, PartialEq)]
pub enum SyntheticError {
    /// `schemas == 0`: a catalog needs at least one schema.
    ZeroSchemas,
    /// `table_width == 0`: tables are filled greedily and need room for
    /// at least one attribute.
    ZeroTableWidth,
    /// `concepts_per_schema > shared_concepts` under the fixed size
    /// model: a schema cannot materialize more concepts than the pool
    /// holds.
    ConceptsExceedPool {
        /// Requested concept picks per schema.
        concepts: usize,
        /// Size of the shared concept pool.
        pool: usize,
    },
    /// `linkable_ratio` outside `[0, 1]` or non-finite.
    InvalidRatio(f64),
    /// `lexicon_overlap` outside `[0, 1]` or non-finite.
    InvalidOverlap(f64),
    /// `naming_noise` outside `[0, 1]` or non-finite.
    InvalidNoise(f64),
    /// A [`SizeDistribution`] range with `min == 0` or `min > max`.
    InvalidSizeRange {
        /// Lower bound of the rejected range.
        min: usize,
        /// Upper bound of the rejected range.
        max: usize,
    },
    /// A schema's derived concept picks exceed its accessible pool
    /// region (the overlap-shared slice plus its private slice).
    RegionTooSmall {
        /// The schema whose picks could not be satisfied.
        schema: usize,
        /// Concept picks the knobs demand.
        need: usize,
        /// Concepts the schema's accessible region holds.
        have: usize,
    },
}

impl std::fmt::Display for SyntheticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyntheticError::ZeroSchemas => {
                write!(f, "synthetic config needs at least one schema")
            }
            SyntheticError::ZeroTableWidth => {
                write!(f, "synthetic tables need room for at least one attribute")
            }
            SyntheticError::ConceptsExceedPool { concepts, pool } => write!(
                f,
                "cannot materialize more concepts than the pool holds \
                 ({concepts} per schema > pool of {pool})"
            ),
            SyntheticError::InvalidRatio(v) => {
                write!(f, "linkable_ratio {v} is outside [0, 1]")
            }
            SyntheticError::InvalidOverlap(v) => {
                write!(f, "lexicon_overlap {v} is outside [0, 1]")
            }
            SyntheticError::InvalidNoise(v) => {
                write!(f, "naming_noise {v} is outside [0, 1]")
            }
            SyntheticError::InvalidSizeRange { min, max } => write!(
                f,
                "size distribution range [{min}, {max}] is empty or starts at zero"
            ),
            SyntheticError::RegionTooSmall { schema, need, have } => write!(
                f,
                "schema #{schema} needs {need} concept picks but its accessible \
                 pool region holds only {have}"
            ),
        }
    }
}

impl std::error::Error for SyntheticError {}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of related schemas.
    pub schemas: usize,
    /// Size of the shared concept pool.
    pub shared_concepts: usize,
    /// Shared concepts each schema actually materializes (used when
    /// `sizes` is [`SizeDistribution::Fixed`] and `linkable_ratio` is
    /// `None`; otherwise only its ratio to `private_per_schema` seeds
    /// the default linkable fraction).
    pub concepts_per_schema: usize,
    /// Private (unlinkable) attributes per schema.
    pub private_per_schema: usize,
    /// Attributes per table (tables are filled greedily).
    pub table_width: usize,
    /// Append one alien schema with this many elements (0 = none).
    pub alien_elements: usize,
    /// Target fraction of each schema's base attributes drawn from the
    /// shared concept pool. `None` keeps the explicit
    /// `concepts_per_schema` / `private_per_schema` counts; `Some(r)`
    /// derives `round(r · n_s)` concept picks per schema of size `n_s`.
    pub linkable_ratio: Option<f64>,
    /// Fraction of the concept pool shared by every schema. The
    /// remainder is split into disjoint per-schema regions, so `1.0`
    /// (default) lets any pair of schemas share any concept and `0.0`
    /// guarantees an empty ground-truth linkage set.
    pub lexicon_overlap: f64,
    /// Per-attribute probability of rewriting the attribute name in a
    /// seeded naming convention (lower-casing, camelCase, vowel-stripped
    /// abbreviation, separator removal). `0.0` (default) is byte-
    /// identical to the un-noised generator; ground truth is positional
    /// and survives any level.
    pub naming_noise: f64,
    /// Maximum subtype-chain depth: concept `c` additionally spawns
    /// `c mod (depth + 1)` foreign-key child attributes (`…_SUB1`, …)
    /// annotated inter-sub-typed against the concept's base attribute in
    /// every other schema sharing it. `0` (default) disables chains.
    pub subtype_depth: usize,
    /// Per-schema base-attribute count model.
    pub sizes: SizeDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            schemas: 3,
            shared_concepts: 30,
            concepts_per_schema: 20,
            private_per_schema: 15,
            table_width: 8,
            alien_elements: 0,
            linkable_ratio: None,
            lexicon_overlap: 1.0,
            naming_noise: 0.0,
            subtype_depth: 0,
            sizes: SizeDistribution::Fixed,
            seed: 0x5F_EE_D5,
        }
    }
}

impl SyntheticConfig {
    /// Validates every statically checkable knob combination. Size- and
    /// overlap-derived constraints that depend on seeded draws are
    /// checked by [`try_generate`] as [`SyntheticError::RegionTooSmall`].
    ///
    /// # Errors
    /// The first violated constraint, as a typed [`SyntheticError`].
    pub fn validate(&self) -> Result<(), SyntheticError> {
        if self.schemas == 0 {
            return Err(SyntheticError::ZeroSchemas);
        }
        if self.table_width == 0 {
            return Err(SyntheticError::ZeroTableWidth);
        }
        if let Some(r) = self.linkable_ratio {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(SyntheticError::InvalidRatio(r));
            }
        }
        if !self.lexicon_overlap.is_finite() || !(0.0..=1.0).contains(&self.lexicon_overlap) {
            return Err(SyntheticError::InvalidOverlap(self.lexicon_overlap));
        }
        if !self.naming_noise.is_finite() || !(0.0..=1.0).contains(&self.naming_noise) {
            return Err(SyntheticError::InvalidNoise(self.naming_noise));
        }
        match self.sizes {
            SizeDistribution::Fixed => {
                if self.linkable_ratio.is_none() && self.concepts_per_schema > self.shared_concepts
                {
                    return Err(SyntheticError::ConceptsExceedPool {
                        concepts: self.concepts_per_schema,
                        pool: self.shared_concepts,
                    });
                }
            }
            SizeDistribution::Uniform { min, max } | SizeDistribution::Ramp { min, max } => {
                if min == 0 || min > max {
                    return Err(SyntheticError::InvalidSizeRange { min, max });
                }
            }
        }
        Ok(())
    }
}

/// Vocabulary the shared concepts are drawn from — words the default
/// lexicon knows, so synthetic scenarios exercise the same encoder paths
/// as the real datasets.
const SHARED_WORDS: &[&str] = &[
    "CUSTOMER",
    "ORDER",
    "PRODUCT",
    "PAYMENT",
    "SHIPMENT",
    "INVOICE",
    "EMPLOYEE",
    "OFFICE",
    "STORE",
    "INVENTORY",
    "ADDRESS",
    "CITY",
    "COUNTRY",
    "PHONE",
    "EMAIL",
    "NAME",
    "PRICE",
    "AMOUNT",
    "QUANTITY",
    "STATUS",
    "DATE",
    "CODE",
    "CREDIT",
    "DISCOUNT",
    "TAX",
    "WAREHOUSE",
    "VENDOR",
    "CATEGORY",
    "DESCRIPTION",
    "ACCOUNT",
    "CONTACT",
    "REGION",
    "STREET",
    "POSTAL",
    "TITLE",
    "MANAGER",
    "SALES",
    "UNIT",
    "TOTAL",
    "CHECK",
];

/// Vocabulary for the alien schema (motorsport domain).
const ALIEN_WORDS: &[&str] = &[
    "RACE",
    "CIRCUIT",
    "DRIVER",
    "CONSTRUCTOR",
    "SEASON",
    "LAP",
    "PIT",
    "QUALIFYING",
    "SPRINT",
    "GRID",
    "POINTS",
    "STANDINGS",
    "RESULT",
    "CAR",
    "ENGINE",
    "NATIONALITY",
    "WIN",
    "POSITION",
    "SPEED",
    "ROUND",
];

/// Concept names: reuse lexicon words, suffix extras deterministically.
fn concept_name(i: usize) -> String {
    let base = SHARED_WORDS[i % SHARED_WORDS.len()];
    if i < SHARED_WORDS.len() {
        base.to_string()
    } else {
        format!("{base}_{}", i / SHARED_WORDS.len())
    }
}

/// One attribute slot of a schema under construction: what it is decided
/// before where it lands, so linkage annotation can use final positions.
enum AttrSpec {
    /// A shared-concept attribute (linkable when the concept is shared).
    Concept(usize),
    /// A subtype child of a concept at the given chain level.
    Sub(usize, usize),
    /// A private attribute with a pre-drawn name suffix.
    Private(usize, usize),
}

/// Contiguous split of the non-shared pool remainder: schema `s` owns a
/// private slice of `rem / schemas` concepts (+1 for the first
/// `rem % schemas` schemas) starting after the common region.
fn private_region(common: usize, rem: usize, schemas: usize, s: usize) -> (usize, usize) {
    let base = rem / schemas;
    let extra = rem % schemas;
    let start = common + s * base + s.min(extra);
    let len = base + usize::from(s < extra);
    (start, len)
}

/// Subtype-chain depth of concept `c`: deterministic in the concept id so
/// every schema sharing `c` grows the same chain.
fn subtype_chain_len(c: usize, depth: usize) -> usize {
    if depth == 0 {
        0
    } else {
        c % (depth + 1)
    }
}

/// Applies one naming-convention style to an attribute name.
fn apply_style(name: &str, style: usize) -> String {
    match style {
        0 => name.to_ascii_lowercase(),
        1 => {
            // lowerCamelCase over '_'-separated segments.
            let mut out = String::with_capacity(name.len());
            for (i, seg) in name.split('_').filter(|s| !s.is_empty()).enumerate() {
                if i == 0 {
                    out.push_str(&seg.to_ascii_lowercase());
                } else {
                    let mut chars = seg.chars();
                    if let Some(first) = chars.next() {
                        out.extend(first.to_uppercase());
                        out.push_str(chars.as_str().to_ascii_lowercase().as_str());
                    }
                }
            }
            if out.is_empty() {
                name.to_string()
            } else {
                out
            }
        }
        2 => {
            // Abbreviation: keep each segment's first char, drop later
            // vowels (digits and consonants survive).
            let abbrev_seg = |seg: &str| -> String {
                let mut out = String::new();
                for (i, ch) in seg.chars().enumerate() {
                    if i == 0 || !matches!(ch.to_ascii_uppercase(), 'A' | 'E' | 'I' | 'O' | 'U') {
                        out.push(ch);
                    }
                }
                out
            };
            name.split('_')
                .map(abbrev_seg)
                .collect::<Vec<_>>()
                .join("_")
        }
        _ => name.replace('_', ""),
    }
}

/// Generates a synthetic [`Dataset`], validating the configuration first.
///
/// # Errors
/// A typed [`SyntheticError`] describing the first impossible knob
/// combination (see [`SyntheticConfig::validate`]); size/overlap-derived
/// pick counts that exceed a schema's accessible pool region surface as
/// [`SyntheticError::RegionTooSmall`].
pub fn try_generate(config: &SyntheticConfig) -> Result<Dataset, SyntheticError> {
    config.validate()?;
    let mut rng = Xoshiro256::seed_from(config.seed);
    let pool = config.shared_concepts;
    // `round` on a value in [0, pool]: overlap is validated finite in [0, 1].
    let common = ((config.lexicon_overlap * pool as f64).round() as usize).min(pool);
    let rem = pool - common;

    let fixed_total = config.concepts_per_schema + config.private_per_schema;
    let default_ratio = if fixed_total == 0 {
        0.0
    } else {
        config.concepts_per_schema as f64 / fixed_total as f64
    };

    let mut schemas = Vec::new();
    // Per schema: concept → final attribute position (base attrs), plus
    // (concept, level, position) for subtype children.
    let mut base_pos: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut sub_pos: Vec<Vec<(usize, usize, usize)>> = Vec::new();
    for s in 0..config.schemas {
        // Base size n_s under the configured distribution.
        let n = match config.sizes {
            SizeDistribution::Fixed => fixed_total,
            SizeDistribution::Uniform { min, max } => min + rng.next_below(max - min + 1),
            SizeDistribution::Ramp { min, max } => {
                if config.schemas <= 1 {
                    min
                } else {
                    min + s * (max - min) / (config.schemas - 1)
                }
            }
        };
        // Concept picks k_s: explicit count under the legacy model,
        // ratio-derived otherwise.
        let k = match (config.sizes, config.linkable_ratio) {
            (SizeDistribution::Fixed, None) => config.concepts_per_schema,
            (_, Some(r)) => ((r * n as f64).round() as usize).min(n),
            (_, None) => ((default_ratio * n as f64).round() as usize).min(n),
        };
        let (priv_start, priv_len) = private_region(common, rem, config.schemas, s);
        let accessible = common + priv_len;
        if k > accessible {
            return Err(SyntheticError::RegionTooSmall {
                schema: s,
                need: k,
                have: accessible,
            });
        }

        // Sample k distinct concepts from the accessible region: indices
        // below `common` are the shared slice, the rest map into this
        // schema's private slice.
        let mut chosen: Vec<usize> = rng
            .sample_indices(accessible, k)
            .into_iter()
            .map(|j| {
                if j < common {
                    j
                } else {
                    priv_start + (j - common)
                }
            })
            .collect();
        chosen.sort_unstable();

        let mut specs: Vec<AttrSpec> = Vec::new();
        for &c in &chosen {
            specs.push(AttrSpec::Concept(c));
            for level in 1..=subtype_chain_len(c, config.subtype_depth) {
                specs.push(AttrSpec::Sub(c, level));
            }
        }
        for p in 0..n - k {
            specs.push(AttrSpec::Private(p, rng.next_below(1_000_000)));
        }
        rng.shuffle(&mut specs);

        let mut attrs: Vec<Attribute> = Vec::with_capacity(specs.len());
        let mut bases = Vec::new();
        let mut subs = Vec::new();
        for (pos, spec) in specs.iter().enumerate() {
            match *spec {
                AttrSpec::Concept(c) => {
                    bases.push((c, pos));
                    attrs.push(Attribute::plain(
                        concept_name(c),
                        DataType::Varchar(Some(64)),
                    ));
                }
                AttrSpec::Sub(c, level) => {
                    subs.push((c, level, pos));
                    attrs.push(Attribute::new(
                        format!("{}_SUB{level}", concept_name(c)),
                        DataType::Varchar(Some(32)),
                        Constraint::ForeignKey,
                    ));
                }
                AttrSpec::Private(p, suffix) => {
                    attrs.push(Attribute::plain(
                        format!("X{s}_PRIVATE_{p}_{suffix}"),
                        DataType::Integer,
                    ));
                }
            }
        }
        let tables = chunk_into_tables(&format!("S{s}"), attrs, config.table_width);
        schemas.push(Schema::new(format!("SYN-{s}"), tables));
        base_pos.push(bases);
        sub_pos.push(subs);
    }

    // Naming-convention noise: a separate seeded stream rewrites related-
    // schema attribute names in place. Positions — and therefore the
    // ground truth below — are untouched. Level 0 skips the pass
    // entirely, so it is byte-identical to the un-noised output.
    if config.naming_noise > 0.0 {
        let mut noise_rng = Xoshiro256::seed_from(config.seed ^ NOISE_STREAM_SALT);
        for schema in &mut schemas {
            for table in &mut schema.tables {
                for attr in &mut table.attributes {
                    let u = noise_rng.next_f64();
                    let style = noise_rng.next_below(4);
                    if u < config.naming_noise {
                        attr.name = apply_style(&attr.name, style);
                    }
                }
            }
        }
    }

    if config.alien_elements > 0 {
        let attrs: Vec<Attribute> = (0..config.alien_elements)
            .map(|i| {
                Attribute::plain(
                    format!(
                        "{}_{}",
                        ALIEN_WORDS[i % ALIEN_WORDS.len()],
                        i / ALIEN_WORDS.len()
                    ),
                    DataType::Integer,
                )
            })
            .collect();
        let tables = chunk_into_tables("ALIEN", attrs, config.table_width);
        schemas.push(Schema::new("SYN-ALIEN", tables));
    }

    let catalog = Catalog::from_schemas(schemas);

    // Annotate by position: the same concept in two schemas is an
    // inter-identical pair; a subtype child links inter-sub-typed to the
    // concept's base attribute in every other schema sharing it.
    let mut linkages = LinkageSet::new();
    for a in 0..config.schemas {
        for b in (a + 1)..config.schemas {
            for &(c, pa) in &base_pos[a] {
                if let Some(&(_, pb)) = base_pos[b].iter().find(|&&(cb, _)| cb == c) {
                    linkages.insert(LinkagePair::new(
                        ElementId::new(a, pa),
                        ElementId::new(b, pb),
                        LinkageKind::InterIdentical,
                    ));
                    for &(cs, _, ps) in &sub_pos[a] {
                        if cs == c {
                            linkages.insert(LinkagePair::new(
                                ElementId::new(a, ps),
                                ElementId::new(b, pb),
                                LinkageKind::InterSubTyped,
                            ));
                        }
                    }
                    for &(cs, _, ps) in &sub_pos[b] {
                        if cs == c {
                            linkages.insert(LinkagePair::new(
                                ElementId::new(a, pa),
                                ElementId::new(b, ps),
                                LinkageKind::InterSubTyped,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(Dataset {
        name: format!("SYN(seed={})", config.seed),
        catalog,
        linkages,
    })
}

/// Generates a synthetic [`Dataset`].
///
/// # Panics
/// With the [`SyntheticError`] display if the configuration is invalid;
/// use [`try_generate`] to handle that as a value.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    try_generate(config).unwrap_or_else(|e| panic!("invalid synthetic config: {e}"))
}

/// Appends `extra` to `base`'s catalog as a final schema, keeping the
/// name, linkages, and (crucially) every existing [`cs_schema::ElementId`]
/// valid — schema indices only ever grow at the end.
fn with_appended_schema(base: Dataset, extra: Schema, suffix: &str) -> Dataset {
    let mut schemas: Vec<Schema> = base.catalog.schemas().to_vec();
    schemas.push(extra);
    Dataset {
        name: format!("{}+{suffix}", base.name),
        catalog: Catalog::from_schemas(schemas),
        linkages: base.linkages,
    }
}

/// Adversarial variant: a healthy synthetic scenario plus one **empty**
/// schema (zero tables, zero elements) appended at the end. Strict
/// training on it must fail with `EmptySchema`; a graceful sweep must
/// skip it and still assess the healthy schemas.
pub fn with_empty_schema(config: &SyntheticConfig) -> Dataset {
    with_appended_schema(
        generate(config),
        Schema::new("SYN-EMPTY", Vec::new()),
        "empty",
    )
}

/// Adversarial variant: appends a **singleton** schema — one attributeless
/// table, hence exactly one element. A single signature centers to zero
/// and carries no variance (`DegenerateSchema`).
pub fn with_singleton_schema(config: &SyntheticConfig) -> Dataset {
    with_appended_schema(
        generate(config),
        Schema::new("SYN-LONELY", vec![Table::new("LONELY", Vec::new())]),
        "singleton",
    )
}

/// Adversarial variant: appends a schema of `copies` **identical**
/// attributeless tables. Identical serialized metadata → identical
/// signatures → a rank-deficient (zero-variance) local model.
///
/// # Panics
/// If `copies < 2` (one copy is the singleton case, zero the empty one).
pub fn with_duplicate_schema(config: &SyntheticConfig, copies: usize) -> Dataset {
    assert!(copies >= 2, "need at least two duplicate elements");
    let tables = (0..copies).map(|_| Table::new("DUP", Vec::new())).collect();
    with_appended_schema(
        generate(config),
        Schema::new("SYN-DUP", tables),
        "duplicates",
    )
}

/// Adversarial variant: forces `linkable_ratio = 0`, so every schema
/// materializes **zero** shared concepts and nothing is annotated
/// linkable — the all-unlinkable source. Scoping quality metrics must
/// handle an empty positive class. Equivalent by construction to
/// [`generate`] with `linkable_ratio: Some(0.0)`.
pub fn all_unlinkable(config: &SyntheticConfig) -> Dataset {
    let ds = generate(&SyntheticConfig {
        linkable_ratio: Some(0.0),
        ..config.clone()
    });
    debug_assert!(ds.linkages.is_empty());
    ds
}

fn chunk_into_tables(prefix: &str, attrs: Vec<Attribute>, width: usize) -> Vec<Table> {
    let mut tables = Vec::new();
    for (ti, chunk) in attrs.chunks(width).enumerate() {
        let mut cols = chunk.to_vec();
        if let Some(first) = cols.first_mut() {
            // Give each table a key so constraints vary.
            if first.constraint == Constraint::None && ti % 2 == 0 {
                first.constraint = Constraint::PrimaryKey;
            }
        }
        tables.push(Table::new(format!("{prefix}_T{ti}"), cols));
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_sizes() {
        let cfg = SyntheticConfig::default();
        let ds = generate(&cfg);
        assert_eq!(ds.catalog.schema_count(), 3);
        for s in ds.catalog.schemas() {
            assert_eq!(
                s.attribute_count(),
                cfg.concepts_per_schema + cfg.private_per_schema
            );
        }
    }

    #[test]
    fn linkages_connect_shared_concepts_only() {
        let ds = generate(&SyntheticConfig::default());
        assert!(!ds.linkages.is_empty());
        // Every linkable element is a shared-concept attribute (name in
        // the vocabulary), never a private one.
        for id in ds.linkages.linkable_elements() {
            let info = ds.catalog.info(id);
            assert!(
                !info.qualified_name.contains("PRIVATE"),
                "private attribute annotated linkable: {}",
                info.qualified_name
            );
        }
    }

    #[test]
    fn alien_schema_has_no_linkages() {
        let cfg = SyntheticConfig {
            alien_elements: 25,
            ..Default::default()
        };
        let ds = generate(&cfg);
        assert_eq!(ds.catalog.schema_count(), 4);
        let alien = 3;
        assert!(ds
            .linkages
            .iter()
            .all(|p| p.a.schema != alien && p.b.schema != alien));
        assert_eq!(ds.linkages.linkable_per_schema(&ds.catalog)[alien], 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SyntheticConfig::default());
        let b = generate(&SyntheticConfig::default());
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.linkages, b.linkages);
        let c = generate(&SyntheticConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a.catalog, c.catalog);
    }

    #[test]
    fn overhead_controllable_via_private_attrs() {
        let lean = generate(&SyntheticConfig {
            private_per_schema: 2,
            ..Default::default()
        });
        let heavy = generate(&SyntheticConfig {
            private_per_schema: 40,
            ..Default::default()
        });
        let lo = lean.unlinkable_overhead().unwrap();
        let hi = heavy.unlinkable_overhead().unwrap();
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    #[should_panic(expected = "more concepts than the pool")]
    fn invalid_config_panics() {
        generate(&SyntheticConfig {
            shared_concepts: 5,
            concepts_per_schema: 10,
            ..Default::default()
        });
    }

    #[test]
    fn try_generate_returns_typed_errors() {
        let err = |cfg: SyntheticConfig| try_generate(&cfg).unwrap_err();
        assert_eq!(
            err(SyntheticConfig {
                schemas: 0,
                ..Default::default()
            }),
            SyntheticError::ZeroSchemas
        );
        assert_eq!(
            err(SyntheticConfig {
                table_width: 0,
                ..Default::default()
            }),
            SyntheticError::ZeroTableWidth
        );
        assert_eq!(
            err(SyntheticConfig {
                shared_concepts: 5,
                concepts_per_schema: 10,
                ..Default::default()
            }),
            SyntheticError::ConceptsExceedPool {
                concepts: 10,
                pool: 5
            }
        );
        assert_eq!(
            err(SyntheticConfig {
                linkable_ratio: Some(1.5),
                ..Default::default()
            }),
            SyntheticError::InvalidRatio(1.5)
        );
        assert!(matches!(
            err(SyntheticConfig {
                lexicon_overlap: f64::NAN,
                ..Default::default()
            }),
            SyntheticError::InvalidOverlap(v) if v.is_nan()
        ));
        assert_eq!(
            err(SyntheticConfig {
                naming_noise: -0.1,
                ..Default::default()
            }),
            SyntheticError::InvalidNoise(-0.1)
        );
        assert_eq!(
            err(SyntheticConfig {
                sizes: SizeDistribution::Uniform { min: 9, max: 3 },
                ..Default::default()
            }),
            SyntheticError::InvalidSizeRange { min: 9, max: 3 }
        );
        // Ratio-derived picks can exceed the accessible region even when
        // the static pool check passes: 0 overlap splits a 30-concept
        // pool into 10-concept regions, but 0.9 · 35 = 32 picks.
        assert_eq!(
            err(SyntheticConfig {
                linkable_ratio: Some(0.9),
                lexicon_overlap: 0.0,
                ..Default::default()
            }),
            SyntheticError::RegionTooSmall {
                schema: 0,
                need: 32,
                have: 10
            }
        );
    }

    #[test]
    fn zero_overlap_yields_empty_linkage_set() {
        let ds = generate(&SyntheticConfig {
            lexicon_overlap: 0.0,
            linkable_ratio: Some(0.25),
            ..Default::default()
        });
        assert!(
            ds.linkages.is_empty(),
            "disjoint lexicon regions cannot share concepts"
        );
        assert!(ds.catalog.schema(0).element_count() > 0);
    }

    #[test]
    fn linkable_ratio_sets_exact_eligible_counts() {
        let cfg = SyntheticConfig {
            linkable_ratio: Some(0.4),
            ..Default::default()
        };
        let ds = generate(&cfg);
        for s in ds.catalog.schemas() {
            let n = s.attribute_count();
            let private = s
                .tables
                .iter()
                .flat_map(|t| t.attributes.iter())
                .filter(|a| a.name.contains("PRIVATE"))
                .count();
            assert_eq!(n - private, (0.4f64 * n as f64).round() as usize);
        }
    }

    #[test]
    fn size_distributions_control_schema_sizes() {
        let uni = generate(&SyntheticConfig {
            sizes: SizeDistribution::Uniform { min: 6, max: 20 },
            linkable_ratio: Some(0.5),
            ..Default::default()
        });
        for s in uni.catalog.schemas() {
            assert!((6..=20).contains(&s.attribute_count()), "{}", s.name);
        }
        let ramp = generate(&SyntheticConfig {
            schemas: 4,
            sizes: SizeDistribution::Ramp { min: 5, max: 17 },
            linkable_ratio: Some(0.5),
            ..Default::default()
        });
        let sizes: Vec<usize> = ramp
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .collect();
        assert_eq!(sizes, vec![5, 9, 13, 17]);
    }

    #[test]
    fn naming_noise_rewrites_names_but_not_ground_truth() {
        let base = SyntheticConfig::default();
        let noisy = SyntheticConfig {
            naming_noise: 0.8,
            ..base.clone()
        };
        let a = generate(&base);
        let b = generate(&noisy);
        // Same structure and identical positional linkages…
        assert_eq!(a.linkages, b.linkages);
        assert_eq!(a.catalog.element_count(), b.catalog.element_count());
        // …but a substantial share of names changed.
        let names = |ds: &Dataset| -> Vec<String> {
            ds.catalog
                .schemas()
                .iter()
                .flat_map(|s| s.tables.iter())
                .flat_map(|t| t.attributes.iter())
                .map(|at| at.name.clone())
                .collect()
        };
        let (na, nb) = (names(&a), names(&b));
        let changed = na.iter().zip(nb.iter()).filter(|(x, y)| x != y).count();
        assert!(
            changed > na.len() / 4,
            "{changed}/{} names changed",
            na.len()
        );
    }

    #[test]
    fn naming_noise_zero_is_byte_identical_to_unnoised() {
        let base = SyntheticConfig::default();
        let zero = SyntheticConfig {
            naming_noise: 0.0,
            ..base.clone()
        };
        let a = generate(&base);
        let b = generate(&zero);
        assert_eq!(
            crate::codec::dataset_to_bytes(&a),
            crate::codec::dataset_to_bytes(&b)
        );
    }

    #[test]
    fn subtype_depth_adds_inter_sub_typed_pairs() {
        let ds = generate(&SyntheticConfig {
            subtype_depth: 2,
            ..Default::default()
        });
        assert!(ds.linkages.count_kind(LinkageKind::InterSubTyped) > 0);
        // Every sub-typed pair touches at least one _SUB attribute, and
        // all endpoints are real attributes.
        for p in ds.linkages.iter() {
            if p.kind == LinkageKind::InterSubTyped {
                let qa = ds.catalog.info(p.a).qualified_name;
                let qb = ds.catalog.info(p.b).qualified_name;
                assert!(qa.contains("_SUB") || qb.contains("_SUB"), "{qa} vs {qb}");
            }
        }
    }

    #[test]
    fn empty_schema_variant_appends_zero_elements() {
        let cfg = SyntheticConfig::default();
        let ds = with_empty_schema(&cfg);
        let last = ds.catalog.schema_count() - 1;
        assert_eq!(last, cfg.schemas);
        assert_eq!(ds.catalog.schema(last).element_count(), 0);
        // The healthy part is untouched: same linkages as the base run.
        assert_eq!(ds.linkages, generate(&cfg).linkages);
    }

    #[test]
    fn singleton_schema_variant_appends_one_element() {
        let ds = with_singleton_schema(&SyntheticConfig::default());
        let last = ds.catalog.schema_count() - 1;
        assert_eq!(ds.catalog.schema(last).element_count(), 1);
    }

    #[test]
    fn duplicate_schema_variant_has_identical_serializations() {
        let ds = with_duplicate_schema(&SyntheticConfig::default(), 5);
        let last = ds.catalog.schema_count() - 1;
        let schema = ds.catalog.schema(last);
        assert_eq!(schema.element_count(), 5);
        let opts = cs_schema::SerializeOptions::default();
        let texts: Vec<String> = schema
            .tables
            .iter()
            .map(|t| cs_schema::serialize_table(t, &opts))
            .collect();
        assert!(
            texts.windows(2).all(|w| w[0] == w[1]),
            "duplicate tables must serialize identically: {texts:?}"
        );
    }

    #[test]
    fn all_unlinkable_variant_has_empty_positive_class() {
        let ds = all_unlinkable(&SyntheticConfig::default());
        assert!(ds.linkages.is_empty());
        assert_eq!(ds.catalog.schema_count(), 3);
        // Elements still exist — they are merely all private.
        assert!(ds.catalog.schema(0).element_count() > 0);
    }

    #[test]
    fn all_unlinkable_equals_zero_linkable_ratio() {
        let cfg = SyntheticConfig {
            subtype_depth: 1,
            naming_noise: 0.3,
            ..Default::default()
        };
        let a = all_unlinkable(&cfg);
        let b = generate(&SyntheticConfig {
            linkable_ratio: Some(0.0),
            ..cfg
        });
        assert_eq!(
            crate::codec::dataset_to_bytes(&a),
            crate::codec::dataset_to_bytes(&b)
        );
    }

    #[test]
    #[should_panic(expected = "two duplicate")]
    fn duplicate_variant_rejects_degenerate_copy_count() {
        with_duplicate_schema(&SyntheticConfig::default(), 1);
    }
}
