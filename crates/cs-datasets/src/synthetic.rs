//! Synthetic multi-source matching scenarios with known ground truth.
//!
//! Used by property tests (scoping invariants must hold on arbitrary
//! scenarios, not just OC3) and by the scaling benchmarks (complexity
//! claims of Section 3 need schemas of controllable size).
//!
//! The generator draws from a pool of shared "concept" words: each schema
//! materializes a subset of the shared concepts (these become linkable
//! attributes, annotated across every schema pair that shares them) plus
//! private noise attributes (unlinkable). Optionally an entirely alien
//! schema with its own domain vocabulary is appended — the synthetic
//! analog of the Formula-One extension.
//!
//! The `with_*` / [`all_unlinkable`] constructors build **adversarial**
//! variants (empty schema, singleton schema, all-duplicate signatures,
//! zero linkable elements) for the fault-injection harness. NaN/inf
//! signature corruption is *not* expressible here — catalogs are purely
//! textual — so that injector lives in `cs-fault`, which poisons the
//! encoded signature matrices directly.

use cs_linalg::Xoshiro256;
use cs_schema::{
    Attribute, Catalog, Constraint, DataType, LinkageKind, LinkagePair, LinkageSet, Schema, Table,
};

use crate::Dataset;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of related schemas.
    pub schemas: usize,
    /// Size of the shared concept pool.
    pub shared_concepts: usize,
    /// Shared concepts each schema actually materializes.
    pub concepts_per_schema: usize,
    /// Private (unlinkable) attributes per schema.
    pub private_per_schema: usize,
    /// Attributes per table (tables are filled greedily).
    pub table_width: usize,
    /// Append one alien schema with this many elements (0 = none).
    pub alien_elements: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            schemas: 3,
            shared_concepts: 30,
            concepts_per_schema: 20,
            private_per_schema: 15,
            table_width: 8,
            alien_elements: 0,
            seed: 0x5F_EE_D5,
        }
    }
}

/// Vocabulary the shared concepts are drawn from — words the default
/// lexicon knows, so synthetic scenarios exercise the same encoder paths
/// as the real datasets.
const SHARED_WORDS: &[&str] = &[
    "CUSTOMER",
    "ORDER",
    "PRODUCT",
    "PAYMENT",
    "SHIPMENT",
    "INVOICE",
    "EMPLOYEE",
    "OFFICE",
    "STORE",
    "INVENTORY",
    "ADDRESS",
    "CITY",
    "COUNTRY",
    "PHONE",
    "EMAIL",
    "NAME",
    "PRICE",
    "AMOUNT",
    "QUANTITY",
    "STATUS",
    "DATE",
    "CODE",
    "CREDIT",
    "DISCOUNT",
    "TAX",
    "WAREHOUSE",
    "VENDOR",
    "CATEGORY",
    "DESCRIPTION",
    "ACCOUNT",
    "CONTACT",
    "REGION",
    "STREET",
    "POSTAL",
    "TITLE",
    "MANAGER",
    "SALES",
    "UNIT",
    "TOTAL",
    "CHECK",
];

/// Vocabulary for the alien schema (motorsport domain).
const ALIEN_WORDS: &[&str] = &[
    "RACE",
    "CIRCUIT",
    "DRIVER",
    "CONSTRUCTOR",
    "SEASON",
    "LAP",
    "PIT",
    "QUALIFYING",
    "SPRINT",
    "GRID",
    "POINTS",
    "STANDINGS",
    "RESULT",
    "CAR",
    "ENGINE",
    "NATIONALITY",
    "WIN",
    "POSITION",
    "SPEED",
    "ROUND",
];

/// Generates a synthetic [`Dataset`].
///
/// # Panics
/// If `concepts_per_schema > shared_concepts` or the configuration is
/// degenerate (zero schemas / zero table width).
pub fn generate(config: &SyntheticConfig) -> Dataset {
    assert!(config.schemas >= 1, "need at least one schema");
    assert!(
        config.table_width >= 1,
        "tables need at least one attribute"
    );
    assert!(
        config.concepts_per_schema <= config.shared_concepts,
        "cannot materialize more concepts than the pool holds"
    );
    let mut rng = Xoshiro256::seed_from(config.seed);

    // Concept names: reuse lexicon words, suffix extras deterministically.
    let concept_name = |i: usize| -> String {
        let base = SHARED_WORDS[i % SHARED_WORDS.len()];
        if i < SHARED_WORDS.len() {
            base.to_string()
        } else {
            format!("{base}_{}", i / SHARED_WORDS.len())
        }
    };

    let mut schemas = Vec::new();
    // Which schemas picked which concept, for linkage annotation:
    // picks[s] = sorted concept indices.
    let mut picks: Vec<Vec<usize>> = Vec::new();
    for s in 0..config.schemas {
        let mut chosen = rng.sample_indices(config.shared_concepts, config.concepts_per_schema);
        chosen.sort_unstable();
        let mut attrs: Vec<Attribute> = chosen
            .iter()
            .map(|&c| Attribute::plain(concept_name(c), DataType::Varchar(Some(64))))
            .collect();
        for p in 0..config.private_per_schema {
            attrs.push(Attribute::plain(
                format!("X{s}_PRIVATE_{p}_{}", rng.next_below(1_000_000)),
                DataType::Integer,
            ));
        }
        rng.shuffle(&mut attrs);
        let tables = chunk_into_tables(&format!("S{s}"), attrs, config.table_width);
        schemas.push(Schema::new(format!("SYN-{s}"), tables));
        picks.push(chosen);
    }
    if config.alien_elements > 0 {
        let attrs: Vec<Attribute> = (0..config.alien_elements)
            .map(|i| {
                Attribute::plain(
                    format!(
                        "{}_{}",
                        ALIEN_WORDS[i % ALIEN_WORDS.len()],
                        i / ALIEN_WORDS.len()
                    ),
                    DataType::Integer,
                )
            })
            .collect();
        let tables = chunk_into_tables("ALIEN", attrs, config.table_width);
        schemas.push(Schema::new("SYN-ALIEN", tables));
    }

    let catalog = Catalog::from_schemas(schemas);

    // Annotate: same concept in two schemas → inter-identical pair.
    let mut linkages = LinkageSet::new();
    for a in 0..config.schemas {
        for b in (a + 1)..config.schemas {
            for &c in &picks[a] {
                if picks[b].contains(&c) {
                    let name = concept_name(c);
                    let ida = find_attribute(&catalog, a, &name);
                    let idb = find_attribute(&catalog, b, &name);
                    linkages.insert(LinkagePair::new(ida, idb, LinkageKind::InterIdentical));
                }
            }
        }
    }
    Dataset {
        name: format!("SYN(seed={})", config.seed),
        catalog,
        linkages,
    }
}

/// Appends `extra` to `base`'s catalog as a final schema, keeping the
/// name, linkages, and (crucially) every existing [`cs_schema::ElementId`]
/// valid — schema indices only ever grow at the end.
fn with_appended_schema(base: Dataset, extra: Schema, suffix: &str) -> Dataset {
    let mut schemas: Vec<Schema> = base.catalog.schemas().to_vec();
    schemas.push(extra);
    Dataset {
        name: format!("{}+{suffix}", base.name),
        catalog: Catalog::from_schemas(schemas),
        linkages: base.linkages,
    }
}

/// Adversarial variant: a healthy synthetic scenario plus one **empty**
/// schema (zero tables, zero elements) appended at the end. Strict
/// training on it must fail with `EmptySchema`; a graceful sweep must
/// skip it and still assess the healthy schemas.
pub fn with_empty_schema(config: &SyntheticConfig) -> Dataset {
    with_appended_schema(
        generate(config),
        Schema::new("SYN-EMPTY", Vec::new()),
        "empty",
    )
}

/// Adversarial variant: appends a **singleton** schema — one attributeless
/// table, hence exactly one element. A single signature centers to zero
/// and carries no variance (`DegenerateSchema`).
pub fn with_singleton_schema(config: &SyntheticConfig) -> Dataset {
    with_appended_schema(
        generate(config),
        Schema::new("SYN-LONELY", vec![Table::new("LONELY", Vec::new())]),
        "singleton",
    )
}

/// Adversarial variant: appends a schema of `copies` **identical**
/// attributeless tables. Identical serialized metadata → identical
/// signatures → a rank-deficient (zero-variance) local model.
///
/// # Panics
/// If `copies < 2` (one copy is the singleton case, zero the empty one).
pub fn with_duplicate_schema(config: &SyntheticConfig, copies: usize) -> Dataset {
    assert!(copies >= 2, "need at least two duplicate elements");
    let tables = (0..copies).map(|_| Table::new("DUP", Vec::new())).collect();
    with_appended_schema(
        generate(config),
        Schema::new("SYN-DUP", tables),
        "duplicates",
    )
}

/// Adversarial variant: every schema materializes **zero** shared
/// concepts, so nothing is annotated linkable — the all-unlinkable
/// source. Scoping quality metrics must handle an empty positive class.
pub fn all_unlinkable(config: &SyntheticConfig) -> Dataset {
    let ds = generate(&SyntheticConfig {
        concepts_per_schema: 0,
        ..config.clone()
    });
    debug_assert!(ds.linkages.is_empty());
    ds
}

fn chunk_into_tables(prefix: &str, attrs: Vec<Attribute>, width: usize) -> Vec<Table> {
    let mut tables = Vec::new();
    for (ti, chunk) in attrs.chunks(width).enumerate() {
        let mut cols = chunk.to_vec();
        if let Some(first) = cols.first_mut() {
            // Give each table a key so constraints vary.
            if first.constraint == Constraint::None && ti % 2 == 0 {
                first.constraint = Constraint::PrimaryKey;
            }
        }
        tables.push(Table::new(format!("{prefix}_T{ti}"), cols));
    }
    tables
}

fn find_attribute(catalog: &Catalog, schema: usize, name: &str) -> cs_schema::ElementId {
    let s = catalog.schema(schema);
    for table in &s.tables {
        if table.attribute(name).is_some() {
            return catalog
                .attribute_id(&s.name, &table.name, name)
                .expect("attribute just found");
        }
    }
    panic!("generated attribute {name} missing from schema {schema}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_sizes() {
        let cfg = SyntheticConfig::default();
        let ds = generate(&cfg);
        assert_eq!(ds.catalog.schema_count(), 3);
        for s in ds.catalog.schemas() {
            assert_eq!(
                s.attribute_count(),
                cfg.concepts_per_schema + cfg.private_per_schema
            );
        }
    }

    #[test]
    fn linkages_connect_shared_concepts_only() {
        let ds = generate(&SyntheticConfig::default());
        assert!(!ds.linkages.is_empty());
        // Every linkable element is a shared-concept attribute (name in
        // the vocabulary), never a private one.
        for id in ds.linkages.linkable_elements() {
            let info = ds.catalog.info(id);
            assert!(
                !info.qualified_name.contains("PRIVATE"),
                "private attribute annotated linkable: {}",
                info.qualified_name
            );
        }
    }

    #[test]
    fn alien_schema_has_no_linkages() {
        let cfg = SyntheticConfig {
            alien_elements: 25,
            ..Default::default()
        };
        let ds = generate(&cfg);
        assert_eq!(ds.catalog.schema_count(), 4);
        let alien = 3;
        assert!(ds
            .linkages
            .iter()
            .all(|p| p.a.schema != alien && p.b.schema != alien));
        assert_eq!(ds.linkages.linkable_per_schema(&ds.catalog)[alien], 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SyntheticConfig::default());
        let b = generate(&SyntheticConfig::default());
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.linkages, b.linkages);
        let c = generate(&SyntheticConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a.catalog, c.catalog);
    }

    #[test]
    fn overhead_controllable_via_private_attrs() {
        let lean = generate(&SyntheticConfig {
            private_per_schema: 2,
            ..Default::default()
        });
        let heavy = generate(&SyntheticConfig {
            private_per_schema: 40,
            ..Default::default()
        });
        let lo = lean.unlinkable_overhead().unwrap();
        let hi = heavy.unlinkable_overhead().unwrap();
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    #[should_panic(expected = "more concepts than the pool")]
    fn invalid_config_panics() {
        generate(&SyntheticConfig {
            shared_concepts: 5,
            concepts_per_schema: 10,
            ..Default::default()
        });
    }

    #[test]
    fn empty_schema_variant_appends_zero_elements() {
        let cfg = SyntheticConfig::default();
        let ds = with_empty_schema(&cfg);
        let last = ds.catalog.schema_count() - 1;
        assert_eq!(last, cfg.schemas);
        assert_eq!(ds.catalog.schema(last).element_count(), 0);
        // The healthy part is untouched: same linkages as the base run.
        assert_eq!(ds.linkages, generate(&cfg).linkages);
    }

    #[test]
    fn singleton_schema_variant_appends_one_element() {
        let ds = with_singleton_schema(&SyntheticConfig::default());
        let last = ds.catalog.schema_count() - 1;
        assert_eq!(ds.catalog.schema(last).element_count(), 1);
    }

    #[test]
    fn duplicate_schema_variant_has_identical_serializations() {
        let ds = with_duplicate_schema(&SyntheticConfig::default(), 5);
        let last = ds.catalog.schema_count() - 1;
        let schema = ds.catalog.schema(last);
        assert_eq!(schema.element_count(), 5);
        let opts = cs_schema::SerializeOptions::default();
        let texts: Vec<String> = schema
            .tables
            .iter()
            .map(|t| cs_schema::serialize_table(t, &opts))
            .collect();
        assert!(
            texts.windows(2).all(|w| w[0] == w[1]),
            "duplicate tables must serialize identically: {texts:?}"
        );
    }

    #[test]
    fn all_unlinkable_variant_has_empty_positive_class() {
        let ds = all_unlinkable(&SyntheticConfig::default());
        assert!(ds.linkages.is_empty());
        assert_eq!(ds.catalog.schema_count(), 3);
        // Elements still exist — they are merely all private.
        assert!(ds.catalog.schema(0).element_count() > 0);
    }

    #[test]
    #[should_panic(expected = "two duplicate")]
    fn duplicate_variant_rejects_degenerate_copy_count() {
        with_duplicate_schema(&SyntheticConfig::default(), 1);
    }
}
