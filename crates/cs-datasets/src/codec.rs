//! Canonical binary encoding for a [`Dataset`] — the byte-identity
//! oracle behind the generator's determinism contract.
//!
//! Companion to the `cs_core::exchange` envelope codec (same LE
//! length-prefixed layout, different payload): where the exchange format
//! ships trained models between parties, this one flattens an entire
//! dataset — catalog structure, every attribute's name/type/constraint,
//! and the ground-truth linkage set — into one deterministic byte string.
//! Two datasets encode to the same bytes **iff** they are structurally
//! identical, so "same seed ⇒ byte-identical `Dataset`" becomes a plain
//! slice comparison, and [`dataset_digest`] folds the encoding into the
//! workspace-standard FNV-1a digest the fuzz driver compares across
//! thread counts.
//!
//! Encode-only by design: nothing in the workspace rehydrates a
//! `Dataset` from bytes, and an unused decoder would be dead weight the
//! API gate has to carry.

use cs_schema::LinkageKind;

use crate::Dataset;

/// Format magic, little-endian version tag follows.
pub const MAGIC: &[u8; 4] = b"CSDS";

/// Bump when the byte layout changes.
pub const VERSION: u32 = 1;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u64).to_le_bytes());
}

/// Serializes the dataset into the canonical byte layout: magic/version
/// header, name, schema → table → attribute tree (types and constraints
/// via their canonical `Debug` form), then the linkage set in its sorted
/// iteration order.
pub fn dataset_to_bytes(dataset: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    put_str(&mut buf, &dataset.name);
    put_usize(&mut buf, dataset.catalog.schema_count());
    for schema in dataset.catalog.schemas() {
        put_str(&mut buf, &schema.name);
        put_usize(&mut buf, schema.tables.len());
        for table in &schema.tables {
            put_str(&mut buf, &table.name);
            put_usize(&mut buf, table.attributes.len());
            for attr in &table.attributes {
                put_str(&mut buf, &attr.name);
                put_str(&mut buf, &format!("{:?}", attr.data_type));
                put_str(&mut buf, &format!("{:?}", attr.constraint));
            }
        }
    }
    put_usize(&mut buf, dataset.linkages.len());
    for pair in dataset.linkages.iter() {
        put_usize(&mut buf, pair.a.schema);
        put_usize(&mut buf, pair.a.element);
        put_usize(&mut buf, pair.b.schema);
        put_usize(&mut buf, pair.b.element);
        buf.push(match pair.kind {
            LinkageKind::InterIdentical => 0,
            LinkageKind::InterSubTyped => 1,
        });
    }
    buf
}

/// FNV-1a digest of [`dataset_to_bytes`] — the workspace-standard 64-bit
/// fold used by the fault matrix and the sanitizer reports.
pub fn dataset_digest(dataset: &Dataset) -> u64 {
    let mut hash = FNV_BASIS;
    for byte in dataset_to_bytes(dataset) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    #[test]
    fn encoding_is_deterministic_and_seed_sensitive() {
        let a = generate(&SyntheticConfig::default());
        let b = generate(&SyntheticConfig::default());
        assert_eq!(dataset_to_bytes(&a), dataset_to_bytes(&b));
        assert_eq!(dataset_digest(&a), dataset_digest(&b));
        let c = generate(&SyntheticConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(dataset_digest(&a), dataset_digest(&c));
    }

    #[test]
    fn encoding_distinguishes_names_types_and_linkages() {
        let base = generate(&SyntheticConfig::default());
        let mut renamed = base.clone();
        renamed.catalog = {
            let mut schemas = renamed.catalog.schemas().to_vec();
            schemas[0].tables[0].attributes[0].name.push('X');
            cs_schema::Catalog::from_schemas(schemas)
        };
        assert_ne!(dataset_digest(&base), dataset_digest(&renamed));

        let mut unlinked = base.clone();
        unlinked.linkages = cs_schema::LinkageSet::new();
        assert_ne!(dataset_digest(&base), dataset_digest(&unlinked));
    }

    #[test]
    fn header_is_pinned() {
        let bytes = dataset_to_bytes(&generate(&SyntheticConfig::default()));
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4..8], VERSION.to_le_bytes());
    }
}
