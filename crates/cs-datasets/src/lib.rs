//! # cs-datasets
//!
//! The paper's evaluation datasets, re-authored to the exact published
//! statistics (Tables 2 and 3):
//!
//! - **OC3** — three heterogeneous order-customer schemas: Oracle's CO
//!   sample schema, MySQL's classicmodels, and a SAP-HANA-tutorial-style
//!   denormalized schema. 18 tables, 142 attributes; 79 linkable /
//!   81 unlinkable elements (103% unlinkable overhead).
//! - **OC3-FO** — OC3 plus a JOLPICA-F1 / Ergast-style Formula-One schema
//!   with zero linkable elements (263% overhead).
//!
//! The schemas live as `CREATE TABLE` scripts under `sql/` and are loaded
//! through `cs-schema`'s DDL parser. The annotated linkage ground truth
//! (`L(S)`) is authored in [`ground_truth`]; a test module pins every
//! count from the paper's Tables 2 and 3. The per-schema-pair rows of
//! Table 3 are read as **attribute** pairs (14/22, 10/8, 15/1); the gap to
//! the totals row (II 39 / IS 36) is closed by five inter-sub-typed
//! **table** pairs, the reading documented in DESIGN.md.
//!
//! [`synthetic`] generates parameterized multi-source scenarios with known
//! ground truth for property tests and scaling benchmarks.

pub mod codec;
pub mod ground_truth;
pub mod synthetic;

use cs_schema::{parse_schema, Catalog, LinkageSet, Schema};

/// Embedded DDL of the OC-Oracle schema.
pub const ORACLE_DDL: &str = include_str!("../sql/oracle.sql");
/// Embedded DDL of the OC-MySQL (classicmodels) schema.
pub const MYSQL_DDL: &str = include_str!("../sql/mysql.sql");
/// Embedded DDL of the OC-HANA schema.
pub const HANA_DDL: &str = include_str!("../sql/hana.sql");
/// Embedded DDL of the Formula-One schema.
pub const FORMULA_ONE_DDL: &str = include_str!("../sql/formula_one.sql");

/// A matching scenario: a catalog of schemas plus annotated ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Scenario name (`OC3` or `OC3-FO`).
    pub name: String,
    /// The schemas to be matched.
    pub catalog: Catalog,
    /// The annotated inter-linkages `L(S)`.
    pub linkages: LinkageSet,
}

impl Dataset {
    /// Linkability labels in the catalog's global element order.
    pub fn labels(&self) -> Vec<bool> {
        self.linkages.labels(&self.catalog)
    }

    /// The unlinkable-overhead statistic of Section 2.1.
    pub fn unlinkable_overhead(&self) -> Option<f64> {
        self.linkages.unlinkable_overhead(&self.catalog)
    }
}

/// Loads the OC-Oracle schema.
pub fn oc_oracle() -> Schema {
    parse_schema("OC-Oracle", ORACLE_DDL).expect("embedded Oracle DDL parses")
}

/// Loads the OC-MySQL schema.
pub fn oc_mysql() -> Schema {
    parse_schema("OC-MySQL", MYSQL_DDL).expect("embedded MySQL DDL parses")
}

/// Loads the OC-HANA schema.
pub fn oc_hana() -> Schema {
    parse_schema("OC-HANA", HANA_DDL).expect("embedded HANA DDL parses")
}

/// Loads the Formula-One schema.
pub fn formula_one() -> Schema {
    parse_schema("Formula One", FORMULA_ONE_DDL).expect("embedded Formula-One DDL parses")
}

/// The domain-specific **OC3** scenario (Oracle, MySQL, HANA).
pub fn oc3() -> Dataset {
    let catalog = Catalog::from_schemas(vec![oc_oracle(), oc_mysql(), oc_hana()]);
    let linkages = ground_truth::oc3_linkages(&catalog);
    Dataset {
        name: "OC3".into(),
        catalog,
        linkages,
    }
}

/// The heterogeneous **OC3-FO** scenario (OC3 + Formula One).
///
/// The Formula-One schema is appended *after* the OC3 schemas, so OC3
/// element ids (and the linkage annotations) stay valid.
pub fn oc3_fo() -> Dataset {
    let catalog = Catalog::from_schemas(vec![oc_oracle(), oc_mysql(), oc_hana(), formula_one()]);
    let linkages = ground_truth::oc3_linkages(&catalog);
    Dataset {
        name: "OC3-FO".into(),
        catalog,
        linkages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_schema::LinkageKind;

    // ---- Table 2 of the paper, pinned exactly -------------------------

    #[test]
    fn table2_schema_sizes() {
        let oracle = oc_oracle();
        assert_eq!((oracle.table_count(), oracle.attribute_count()), (7, 43));
        let mysql = oc_mysql();
        assert_eq!((mysql.table_count(), mysql.attribute_count()), (8, 59));
        let hana = oc_hana();
        assert_eq!((hana.table_count(), hana.attribute_count()), (3, 40));
        let fo = formula_one();
        assert_eq!((fo.table_count(), fo.attribute_count()), (16, 111));
    }

    #[test]
    fn table2_oc3_totals() {
        let ds = oc3();
        let tables: usize = ds.catalog.schemas().iter().map(|s| s.table_count()).sum();
        let attrs: usize = ds
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .sum();
        assert_eq!((tables, attrs), (18, 142));
        let linkable = ds.linkages.linkable_elements().len();
        assert_eq!(linkable, 79);
        assert_eq!(ds.catalog.element_count() - linkable, 81);
    }

    #[test]
    fn table2_oc3_fo_totals() {
        let ds = oc3_fo();
        let tables: usize = ds.catalog.schemas().iter().map(|s| s.table_count()).sum();
        let attrs: usize = ds
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .sum();
        assert_eq!((tables, attrs), (34, 253));
        let linkable = ds.linkages.linkable_elements().len();
        assert_eq!(linkable, 79);
        assert_eq!(ds.catalog.element_count() - linkable, 208);
    }

    #[test]
    fn table2_per_schema_linkable_counts() {
        let ds = oc3_fo();
        assert_eq!(
            ds.linkages.linkable_per_schema(&ds.catalog),
            vec![27, 34, 18, 0]
        );
    }

    #[test]
    fn unlinkable_overheads_match_paper() {
        // OC3: (160-79)/79 ≈ 103%; OC3-FO: (287-79)/79 ≈ 263%.
        let oc3 = oc3().unlinkable_overhead().unwrap();
        assert!((oc3 - 81.0 / 79.0).abs() < 1e-12, "{oc3}");
        let fo = oc3_fo().unlinkable_overhead().unwrap();
        assert!((fo - 208.0 / 79.0).abs() < 1e-12, "{fo}");
        assert!((oc3 * 100.0).round() == 103.0);
        assert!((fo * 100.0).round() == 263.0);
    }

    // ---- Table 3 of the paper, pinned exactly -------------------------

    #[test]
    fn table3_cartesian_sizes_oc3() {
        let ds = oc3();
        assert_eq!(ds.catalog.cartesian_table_pairs(), 101);
        assert_eq!(ds.catalog.cartesian_attribute_pairs(), 6617);
    }

    #[test]
    fn table3_cartesian_sizes_oc3_fo() {
        let ds = oc3_fo();
        assert_eq!(ds.catalog.cartesian_table_pairs(), 389);
        assert_eq!(ds.catalog.cartesian_attribute_pairs(), 22379);
    }

    #[test]
    fn table3_linkage_totals() {
        let ds = oc3();
        assert_eq!(ds.linkages.count_kind(LinkageKind::InterIdentical), 39);
        assert_eq!(ds.linkages.count_kind(LinkageKind::InterSubTyped), 36);
    }

    #[test]
    fn table3_per_pair_attribute_linkages() {
        let ds = oc3();
        let c = &ds.catalog;
        // Attribute pairs only (tables are counted in the totals row).
        let attr_pairs = |x: usize, y: usize, kind: LinkageKind| {
            ds.linkages
                .iter()
                .filter(|p| {
                    p.kind == kind
                        && p.connects(x, y)
                        && c.element_ref(p.a).is_attribute()
                        && c.element_ref(p.b).is_attribute()
                })
                .count()
        };
        assert_eq!(
            attr_pairs(0, 1, LinkageKind::InterIdentical),
            14,
            "Oracle-MySQL II"
        );
        assert_eq!(
            attr_pairs(0, 1, LinkageKind::InterSubTyped),
            22,
            "Oracle-MySQL IS"
        );
        assert_eq!(
            attr_pairs(0, 2, LinkageKind::InterIdentical),
            10,
            "Oracle-HANA II"
        );
        assert_eq!(
            attr_pairs(0, 2, LinkageKind::InterSubTyped),
            8,
            "Oracle-HANA IS"
        );
        assert_eq!(
            attr_pairs(1, 2, LinkageKind::InterIdentical),
            15,
            "MySQL-HANA II"
        );
        assert_eq!(
            attr_pairs(1, 2, LinkageKind::InterSubTyped),
            1,
            "MySQL-HANA IS"
        );
    }

    #[test]
    fn five_table_pairs_close_the_totals_gap() {
        let ds = oc3();
        let c = &ds.catalog;
        let table_pairs = ds
            .linkages
            .iter()
            .filter(|p| c.element_ref(p.a).is_table() && c.element_ref(p.b).is_table())
            .count();
        assert_eq!(table_pairs, 5);
        // All table pairs are inter-sub-typed (type 3 of Section 2.1).
        assert!(ds
            .linkages
            .iter()
            .filter(|p| c.element_ref(p.a).is_table())
            .all(|p| p.kind == LinkageKind::InterSubTyped));
    }

    // ---- structural sanity --------------------------------------------

    #[test]
    fn formula_one_has_no_linkages() {
        let ds = oc3_fo();
        assert!(ds
            .linkages
            .iter()
            .all(|p| p.a.schema != 3 && p.b.schema != 3));
    }

    #[test]
    fn no_mixed_table_attribute_pairs() {
        let ds = oc3();
        let c = &ds.catalog;
        for p in ds.linkages.iter() {
            assert_eq!(
                c.element_ref(p.a).is_table(),
                c.element_ref(p.b).is_table(),
                "mixed pair {p:?}"
            );
        }
    }

    #[test]
    fn labels_align_with_element_count() {
        let ds = oc3_fo();
        let labels = ds.labels();
        assert_eq!(labels.len(), ds.catalog.element_count());
        assert_eq!(labels.iter().filter(|&&l| l).count(), 79);
    }

    #[test]
    fn oc3_ids_are_stable_under_fo_extension() {
        // The first three schemas' linkages must be identical in both
        // datasets (FO is appended after).
        let a = oc3();
        let b = oc3_fo();
        assert_eq!(a.linkages, b.linkages);
    }

    #[test]
    fn paper_anecdote_pair_is_annotated() {
        // ORDERDATE (MySQL) vs ORDER_DATETIME (Oracle): annotated II per
        // the ground truth; the paper reports it as a collaborative-scoping
        // false negative at low v.
        let ds = oc3();
        let a = ds
            .catalog
            .attribute_id("OC-Oracle", "ORDERS", "ORDER_DATETIME")
            .unwrap();
        let b = ds
            .catalog
            .attribute_id("OC-MySQL", "orders", "orderdate")
            .unwrap();
        assert!(ds.linkages.contains_pair(a, b));
    }

    #[test]
    fn key_constraints_parsed() {
        use cs_schema::Constraint;
        let oracle = oc_oracle();
        let (_, customers) = oracle.table("CUSTOMERS").unwrap();
        assert_eq!(
            customers.attribute("CUSTOMER_ID").unwrap().1.constraint,
            Constraint::PrimaryKey
        );
        let (_, orders) = oracle.table("ORDERS").unwrap();
        assert_eq!(
            orders.attribute("CUSTOMER_ID").unwrap().1.constraint,
            Constraint::ForeignKey
        );
    }
}
