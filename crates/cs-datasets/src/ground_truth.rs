//! The annotated ground-truth linkage set `L(S)` for the OC3 schemas.
//!
//! Authored to the paper's Table 3: per schema pair, 14/22 (Oracle–MySQL),
//! 10/8 (Oracle–HANA), and 15/1 (MySQL–HANA) inter-identical /
//! inter-sub-typed **attribute** pairs, plus five inter-sub-typed **table**
//! pairs that close the gap to the totals row (II 39 / IS 36). The
//! Formula-One schema participates in no linkage (Table 2: 0 linkable).
//!
//! Every name is resolved against the catalog with `expect`, so a typo in
//! either the DDL or this module fails the test suite loudly.

use cs_schema::{Catalog, ElementId, LinkageKind, LinkagePair, LinkageSet};

/// Schema names as they appear in the catalog.
const ORACLE: &str = "OC-Oracle";
const MYSQL: &str = "OC-MySQL";
const HANA: &str = "OC-HANA";

/// One attribute endpoint: `(schema, table, attribute)`.
type Attr = (&'static str, &'static str, &'static str);

/// Oracle–MySQL inter-identical attribute pairs (14).
const ORACLE_MYSQL_II: &[(Attr, Attr)] = &[
    (
        (ORACLE, "CUSTOMERS", "CUSTOMER_ID"),
        (MYSQL, "customers", "customernumber"),
    ),
    (
        (ORACLE, "CUSTOMERS", "FULL_NAME"),
        (MYSQL, "customers", "customername"),
    ),
    (
        (ORACLE, "CUSTOMERS", "PHONE_NUMBER"),
        (MYSQL, "customers", "phone"),
    ),
    (
        (ORACLE, "CUSTOMERS", "CREDIT_LIMIT"),
        (MYSQL, "customers", "creditlimit"),
    ),
    (
        (ORACLE, "ORDERS", "ORDER_ID"),
        (MYSQL, "orders", "ordernumber"),
    ),
    (
        (ORACLE, "ORDERS", "ORDER_DATETIME"),
        (MYSQL, "orders", "orderdate"),
    ),
    (
        (ORACLE, "ORDERS", "ORDER_STATUS"),
        (MYSQL, "orders", "status"),
    ),
    (
        (ORACLE, "ORDERS", "CUSTOMER_ID"),
        (MYSQL, "orders", "customernumber"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_ID"),
        (MYSQL, "products", "productcode"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_NAME"),
        (MYSQL, "products", "productname"),
    ),
    (
        (ORACLE, "PRODUCTS", "UNIT_PRICE"),
        (MYSQL, "products", "buyprice"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "ORDER_ID"),
        (MYSQL, "orderdetails", "ordernumber"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "PRODUCT_ID"),
        (MYSQL, "orderdetails", "productcode"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "QUANTITY"),
        (MYSQL, "orderdetails", "quantityordered"),
    ),
];

/// Oracle–MySQL inter-sub-typed attribute pairs (22).
const ORACLE_MYSQL_IS: &[(Attr, Attr)] = &[
    (
        (ORACLE, "CUSTOMERS", "FULL_NAME"),
        (MYSQL, "customers", "contactfirstname"),
    ),
    (
        (ORACLE, "CUSTOMERS", "FULL_NAME"),
        (MYSQL, "customers", "contactlastname"),
    ),
    (
        (ORACLE, "CUSTOMERS", "EMAIL_ADDRESS"),
        (MYSQL, "employees", "email"),
    ),
    (
        (ORACLE, "CUSTOMERS", "PHONE_NUMBER"),
        (MYSQL, "offices", "phone"),
    ),
    (
        (ORACLE, "STORES", "PHYSICAL_ADDRESS"),
        (MYSQL, "offices", "addressline1"),
    ),
    (
        (ORACLE, "STORES", "PHYSICAL_ADDRESS"),
        (MYSQL, "offices", "addressline2"),
    ),
    (
        (ORACLE, "STORES", "PHYSICAL_ADDRESS"),
        (MYSQL, "customers", "addressline1"),
    ),
    (
        (ORACLE, "STORES", "PHYSICAL_ADDRESS"),
        (MYSQL, "customers", "addressline2"),
    ),
    ((ORACLE, "STORES", "CITY"), (MYSQL, "offices", "city")),
    ((ORACLE, "STORES", "CITY"), (MYSQL, "customers", "city")),
    (
        (ORACLE, "STORES", "STATE_PROVINCE"),
        (MYSQL, "offices", "state"),
    ),
    (
        (ORACLE, "STORES", "STATE_PROVINCE"),
        (MYSQL, "customers", "state"),
    ),
    (
        (ORACLE, "STORES", "COUNTRY_CODE"),
        (MYSQL, "offices", "country"),
    ),
    (
        (ORACLE, "STORES", "COUNTRY_CODE"),
        (MYSQL, "customers", "country"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "UNIT_PRICE"),
        (MYSQL, "orderdetails", "priceeach"),
    ),
    (
        (ORACLE, "PRODUCTS", "UNIT_PRICE"),
        (MYSQL, "orderdetails", "priceeach"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_DETAILS"),
        (MYSQL, "products", "productdescription"),
    ),
    (
        (ORACLE, "SHIPMENTS", "DELIVERY_ADDRESS"),
        (MYSQL, "customers", "addressline1"),
    ),
    (
        (ORACLE, "SHIPMENTS", "DELIVERY_ADDRESS"),
        (MYSQL, "customers", "addressline2"),
    ),
    (
        (ORACLE, "SHIPMENTS", "CUSTOMER_ID"),
        (MYSQL, "customers", "customernumber"),
    ),
    (
        (ORACLE, "SHIPMENTS", "SHIPMENT_STATUS"),
        (MYSQL, "orders", "status"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "UNIT_PRICE"),
        (MYSQL, "products", "buyprice"),
    ),
];

/// Oracle–HANA inter-identical attribute pairs (10).
const ORACLE_HANA_II: &[(Attr, Attr)] = &[
    (
        (ORACLE, "CUSTOMERS", "CUSTOMER_ID"),
        (HANA, "BUSINESS_PARTNERS", "PARTNER_ID"),
    ),
    (
        (ORACLE, "CUSTOMERS", "FULL_NAME"),
        (HANA, "BUSINESS_PARTNERS", "PARTNER_NAME"),
    ),
    (
        (ORACLE, "CUSTOMERS", "PHONE_NUMBER"),
        (HANA, "BUSINESS_PARTNERS", "PHONE"),
    ),
    (
        (ORACLE, "CUSTOMERS", "CREDIT_LIMIT"),
        (HANA, "BUSINESS_PARTNERS", "CREDIT_LIMIT"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_ID"),
        (HANA, "PRODUCTS", "PRODUCT_ID"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_NAME"),
        (HANA, "PRODUCTS", "NAME"),
    ),
    (
        (ORACLE, "PRODUCTS", "UNIT_PRICE"),
        (HANA, "PRODUCTS", "PRICE"),
    ),
    (
        (ORACLE, "ORDERS", "ORDER_ID"),
        (HANA, "PURCHASE_ORDERS", "PURCHASE_ORDER_ID"),
    ),
    (
        (ORACLE, "ORDERS", "ORDER_DATETIME"),
        (HANA, "PURCHASE_ORDERS", "ORDER_DATE"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "QUANTITY"),
        (HANA, "PURCHASE_ORDERS", "QUANTITY"),
    ),
];

/// Oracle–HANA inter-sub-typed attribute pairs (8).
const ORACLE_HANA_IS: &[(Attr, Attr)] = &[
    (
        (ORACLE, "STORES", "CITY"),
        (HANA, "BUSINESS_PARTNERS", "CITY"),
    ),
    (
        (ORACLE, "STORES", "COUNTRY_CODE"),
        (HANA, "BUSINESS_PARTNERS", "COUNTRY"),
    ),
    (
        (ORACLE, "STORES", "STATE_PROVINCE"),
        (HANA, "BUSINESS_PARTNERS", "REGION"),
    ),
    (
        (ORACLE, "STORES", "PHYSICAL_ADDRESS"),
        (HANA, "BUSINESS_PARTNERS", "STREET"),
    ),
    (
        (ORACLE, "PRODUCTS", "PRODUCT_DETAILS"),
        (HANA, "PRODUCTS", "DESCRIPTION"),
    ),
    (
        (ORACLE, "ORDERS", "CUSTOMER_ID"),
        (HANA, "PURCHASE_ORDERS", "PARTNER_ID"),
    ),
    (
        (ORACLE, "SHIPMENTS", "DELIVERY_ADDRESS"),
        (HANA, "BUSINESS_PARTNERS", "STREET"),
    ),
    (
        (ORACLE, "ORDER_ITEMS", "ORDER_ID"),
        (HANA, "PURCHASE_ORDERS", "PURCHASE_ORDER_ID"),
    ),
];

/// MySQL–HANA inter-identical attribute pairs (15).
const MYSQL_HANA_II: &[(Attr, Attr)] = &[
    (
        (MYSQL, "customers", "customernumber"),
        (HANA, "BUSINESS_PARTNERS", "PARTNER_ID"),
    ),
    (
        (MYSQL, "customers", "customername"),
        (HANA, "BUSINESS_PARTNERS", "PARTNER_NAME"),
    ),
    (
        (MYSQL, "customers", "phone"),
        (HANA, "BUSINESS_PARTNERS", "PHONE"),
    ),
    (
        (MYSQL, "customers", "city"),
        (HANA, "BUSINESS_PARTNERS", "CITY"),
    ),
    (
        (MYSQL, "customers", "postalcode"),
        (HANA, "BUSINESS_PARTNERS", "POSTAL_CODE"),
    ),
    (
        (MYSQL, "customers", "country"),
        (HANA, "BUSINESS_PARTNERS", "COUNTRY"),
    ),
    (
        (MYSQL, "customers", "creditlimit"),
        (HANA, "BUSINESS_PARTNERS", "CREDIT_LIMIT"),
    ),
    (
        (MYSQL, "customers", "state"),
        (HANA, "BUSINESS_PARTNERS", "REGION"),
    ),
    (
        (MYSQL, "products", "productcode"),
        (HANA, "PRODUCTS", "PRODUCT_ID"),
    ),
    (
        (MYSQL, "products", "productname"),
        (HANA, "PRODUCTS", "NAME"),
    ),
    (
        (MYSQL, "products", "productdescription"),
        (HANA, "PRODUCTS", "DESCRIPTION"),
    ),
    ((MYSQL, "products", "buyprice"), (HANA, "PRODUCTS", "PRICE")),
    (
        (MYSQL, "orders", "ordernumber"),
        (HANA, "PURCHASE_ORDERS", "PURCHASE_ORDER_ID"),
    ),
    (
        (MYSQL, "orders", "orderdate"),
        (HANA, "PURCHASE_ORDERS", "ORDER_DATE"),
    ),
    (
        (MYSQL, "orderdetails", "quantityordered"),
        (HANA, "PURCHASE_ORDERS", "QUANTITY"),
    ),
];

/// MySQL–HANA inter-sub-typed attribute pairs (1).
const MYSQL_HANA_IS: &[(Attr, Attr)] = &[(
    (MYSQL, "customers", "addressline1"),
    (HANA, "BUSINESS_PARTNERS", "STREET"),
)];

/// Inter-sub-typed table pairs (5): `(schema, table, schema, table)`.
const TABLE_PAIRS: &[(&str, &str, &str, &str)] = &[
    (ORACLE, "CUSTOMERS", MYSQL, "customers"),
    (ORACLE, "CUSTOMERS", HANA, "BUSINESS_PARTNERS"),
    (MYSQL, "customers", HANA, "BUSINESS_PARTNERS"),
    (ORACLE, "PRODUCTS", MYSQL, "products"),
    (ORACLE, "ORDERS", MYSQL, "orders"),
];

fn attr_id(catalog: &Catalog, (schema, table, attr): Attr) -> ElementId {
    catalog
        .attribute_id(schema, table, attr)
        .unwrap_or_else(|| panic!("ground truth names unknown attribute {schema}.{table}.{attr}"))
}

/// Builds the OC3 ground-truth linkage set against a catalog containing
/// the OC3 schemas (the Formula-One schema, if present, has no linkages).
pub fn oc3_linkages(catalog: &Catalog) -> LinkageSet {
    let mut set = LinkageSet::new();
    let batches: [(&[(Attr, Attr)], LinkageKind); 6] = [
        (ORACLE_MYSQL_II, LinkageKind::InterIdentical),
        (ORACLE_MYSQL_IS, LinkageKind::InterSubTyped),
        (ORACLE_HANA_II, LinkageKind::InterIdentical),
        (ORACLE_HANA_IS, LinkageKind::InterSubTyped),
        (MYSQL_HANA_II, LinkageKind::InterIdentical),
        (MYSQL_HANA_IS, LinkageKind::InterSubTyped),
    ];
    for (pairs, kind) in batches {
        for &(a, b) in pairs {
            let inserted = set.insert(LinkagePair::new(
                attr_id(catalog, a),
                attr_id(catalog, b),
                kind,
            ));
            assert!(inserted, "duplicate ground-truth pair {a:?} / {b:?}");
        }
    }
    for &(sa, ta, sb, tb) in TABLE_PAIRS {
        let a = catalog
            .table_id(sa, ta)
            .unwrap_or_else(|| panic!("ground truth names unknown table {sa}.{ta}"));
        let b = catalog
            .table_id(sb, tb)
            .unwrap_or_else(|| panic!("ground truth names unknown table {sb}.{tb}"));
        let inserted = set.insert(LinkagePair::new(a, b, LinkageKind::InterSubTyped));
        assert!(inserted, "duplicate ground-truth table pair {ta} / {tb}");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authored_list_sizes() {
        assert_eq!(ORACLE_MYSQL_II.len(), 14);
        assert_eq!(ORACLE_MYSQL_IS.len(), 22);
        assert_eq!(ORACLE_HANA_II.len(), 10);
        assert_eq!(ORACLE_HANA_IS.len(), 8);
        assert_eq!(MYSQL_HANA_II.len(), 15);
        assert_eq!(MYSQL_HANA_IS.len(), 1);
        assert_eq!(TABLE_PAIRS.len(), 5);
    }

    #[test]
    fn all_pairs_resolve_and_are_distinct() {
        let ds = crate::oc3();
        // 14+22+10+8+15+1 attribute pairs + 5 table pairs = 75.
        assert_eq!(ds.linkages.len(), 75);
    }
}
