//! Plain-text table rendering for the experiment binaries.

/// Renders an aligned text table with a header, `|`-separated.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|", sep.join("-|-")));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a percentage-style metric the way the paper prints them.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let s = render_table(
            &["method", "auc"],
            &[
                vec!["Z-Score".into(), "51.64".into()],
                vec!["Collaborative PCA".into(), "61.82".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[3].contains("Collaborative PCA"));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(61.8234), "61.82");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
