//! Minimal CSV writing for experiment outputs.
//!
//! Only what the harness needs: header + float/string cells, RFC-4180
//! quoting for strings that need it. Writing goes through a string buffer
//! so tests can assert on content without touching the filesystem.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory CSV table.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-rendered cells.
    ///
    /// # Panics
    /// If the cell count does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180 CSV.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_row(&mut out, &self.header);
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Writes the rendered CSV to a file, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

fn render_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            let escaped = cell.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Renders a float with enough precision for plotting.
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_table() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn quotes_special_cells() {
        let mut t = CsvTable::new(&["m"]);
        t.push_row(vec!["PCA (v=0.5), best".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let rendered = t.render();
        assert!(rendered.contains("\"PCA (v=0.5), best\""));
        assert!(rendered.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        CsvTable::new(&["a", "b"]).push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.5), "0.500000");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("cs_repro_csv_test");
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(&["x"]);
        t.push_row(vec!["1".into()]);
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
