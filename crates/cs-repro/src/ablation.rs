//! Figure-7 ablation: matching algorithms on original (SOTA) vs
//! streamlined schemas.
//!
//! Attributes and tables are matched in separate passes (Table 3 also
//! counts their Cartesian spaces separately) and the candidate sets are
//! unioned; PQ / PC / F1 / RR are computed against the annotated linkage
//! set with the *original* catalog's pairwise Cartesian size as the RR
//! denominator, exactly as Section 4.2 defines.

use crate::experiments::{dataset_signatures, v_grid};
use cs_core::{CollaborativeSweep, SchemaSignatures};
use cs_datasets::Dataset;
use cs_match::{ClusterMatcher, ElementSet, LshMatcher, Matcher, SimMatcher};
use cs_metrics::{match_quality, MatchQuality};
use cs_schema::ElementId;
use std::collections::HashSet;

/// The paper's matcher roster: three parameterizations each of SIM,
/// CLUSTER, and LSH.
pub fn matcher_roster() -> Vec<Box<dyn Matcher>> {
    let mut roster: Vec<Box<dyn Matcher>> = Vec::new();
    for t in [0.4, 0.6, 0.8] {
        roster.push(Box::new(SimMatcher::new(t)));
    }
    for k in [2, 5, 20] {
        roster.push(Box::new(ClusterMatcher::new(k)));
    }
    for k in [1, 5, 20] {
        roster.push(Box::new(LshMatcher::new(k)));
    }
    roster
}

/// Splits a dataset's signatures into per-schema attribute and table
/// element sets, optionally restricted to a kept-element set.
pub fn split_element_sets(
    dataset: &Dataset,
    signatures: &SchemaSignatures,
    keep: Option<&HashSet<ElementId>>,
) -> (Vec<ElementSet>, Vec<ElementSet>) {
    let mut attr_sets = Vec::new();
    let mut table_sets = Vec::new();
    for k in 0..signatures.schema_count() {
        let schema = dataset.catalog.schema(k);
        let attr_count = schema.attribute_count();
        let total = schema.element_count();
        let keep_filter = |e: usize| {
            let id = ElementId::new(k, e);
            keep.is_none_or(|set| set.contains(&id))
        };
        let attrs: HashSet<ElementId> = (0..attr_count)
            .filter(|&e| keep_filter(e))
            .map(|e| ElementId::new(k, e))
            .collect();
        let tables: HashSet<ElementId> = (attr_count..total)
            .filter(|&e| keep_filter(e))
            .map(|e| ElementId::new(k, e))
            .collect();
        attr_sets.push(ElementSet::filtered(k, signatures.schema(k), &attrs));
        table_sets.push(ElementSet::filtered(k, signatures.schema(k), &tables));
    }
    (attr_sets, table_sets)
}

/// Runs one matcher on the attribute and table passes and scores the
/// unioned candidates.
pub fn evaluate_matcher(
    matcher: &dyn Matcher,
    attr_sets: &[ElementSet],
    table_sets: &[ElementSet],
    dataset: &Dataset,
) -> MatchQuality {
    let mut pairs = matcher.match_pairs(attr_sets);
    pairs.extend(matcher.match_pairs(table_sets));
    let pairs = cs_match::dedup_pairs(pairs);
    let tp = pairs
        .iter()
        .filter(|p| dataset.linkages.contains_pair(p.a, p.b))
        .count();
    match_quality(
        pairs.len(),
        tp,
        dataset.linkages.len(),
        dataset.catalog.cartesian_element_pairs(),
    )
}

/// One Figure-7 measurement.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Matcher display name (`SIM(0.8)`, …).
    pub matcher: String,
    /// Explained variance of the streamlining pre-process; `None` = SOTA
    /// baseline on the original schemas.
    pub v: Option<f64>,
    /// Match quality at this point.
    pub quality: MatchQuality,
}

/// Runs the full Figure-7 ablation on one dataset over `steps` grid
/// points.
pub fn fig7_ablation(dataset: &Dataset, steps: usize) -> Vec<AblationPoint> {
    let signatures = dataset_signatures(dataset);
    let roster = matcher_roster();
    let mut out = Vec::new();

    // SOTA baselines (x-axis = 0 in the paper's plots).
    let (attr_full, table_full) = split_element_sets(dataset, &signatures, None);
    for matcher in &roster {
        out.push(AblationPoint {
            matcher: matcher.name(),
            v: None,
            quality: evaluate_matcher(matcher.as_ref(), &attr_full, &table_full, dataset),
        });
    }

    // Streamlined runs over the v grid.
    let sweep = CollaborativeSweep::prepare(&signatures).expect("valid dataset");
    for v in v_grid(steps) {
        let kept = sweep.assess_at(v).expect("valid grid point").kept();
        let (attr_sets, table_sets) = split_element_sets(dataset, &signatures, Some(&kept));
        for matcher in &roster {
            out.push(AblationPoint {
                matcher: matcher.name(),
                v: Some(v),
                quality: evaluate_matcher(matcher.as_ref(), &attr_sets, &table_sets, dataset),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper() {
        let names: Vec<String> = matcher_roster().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "SIM(0.4)",
                "SIM(0.6)",
                "SIM(0.8)",
                "CLUSTER(2)",
                "CLUSTER(5)",
                "CLUSTER(20)",
                "LSH(1)",
                "LSH(5)",
                "LSH(20)"
            ]
        );
    }

    #[test]
    fn split_covers_all_elements() {
        let ds = cs_datasets::oc3();
        let sigs = dataset_signatures(&ds);
        let (attrs, tables) = split_element_sets(&ds, &sigs, None);
        let attr_total: usize = attrs.iter().map(ElementSet::len).sum();
        let table_total: usize = tables.iter().map(ElementSet::len).sum();
        assert_eq!(attr_total, 142);
        assert_eq!(table_total, 18);
    }

    #[test]
    fn filtered_split_respects_keep_set() {
        let ds = cs_datasets::oc3();
        let sigs = dataset_signatures(&ds);
        let keep: HashSet<ElementId> = [ElementId::new(0, 0), ElementId::new(1, 3)]
            .into_iter()
            .collect();
        let (attrs, tables) = split_element_sets(&ds, &sigs, Some(&keep));
        let attr_total: usize = attrs.iter().map(ElementSet::len).sum();
        let table_total: usize = tables.iter().map(ElementSet::len).sum();
        assert_eq!(attr_total, 2);
        assert_eq!(table_total, 0);
    }

    #[test]
    fn sim_on_oc3_produces_sane_quality() {
        let ds = cs_datasets::oc3();
        let sigs = dataset_signatures(&ds);
        let (attrs, tables) = split_element_sets(&ds, &sigs, None);
        let q = evaluate_matcher(&SimMatcher::new(0.8), &attrs, &tables, &ds);
        assert!(q.pq > 0.0, "some true linkage above 0.8 cosine");
        assert!(q.rr > 0.9, "high threshold prunes most of the space");
    }
}
