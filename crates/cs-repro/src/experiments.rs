//! Shared experiment logic: signature encoding, sweep curves, Table 4 rows.

use cs_core::{encode_catalog, CollaborativeSweep, GlobalScoper, SchemaSignatures};
use cs_datasets::Dataset;
use cs_embed::SignatureEncoder;
use cs_metrics::{BinaryConfusion, SweepCurve};
use cs_oda::OutlierDetector;

/// Grid resolution used across experiments (the paper sweeps `p` and `v`
/// over `(0..1)`; 50 points keeps the AUC integrals stable).
pub const DEFAULT_GRID_STEPS: usize = 50;

/// The `v ∈ (1..0)` grid, descending, endpoints pulled just inside the
/// open interval.
pub fn v_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least two grid points");
    (0..steps)
        .map(|i| 0.99 - 0.98 * (i as f64 / (steps - 1) as f64))
        .collect()
}

/// The `p ∈ (0..1)` grid, ascending, inclusive of the endpoints (the paper
/// notes `p = 1` reproduces the originals and `p = 0` empties them).
pub fn p_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least two grid points");
    (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
}

/// Encodes a dataset's catalog with the default encoder (phase I).
pub fn dataset_signatures(dataset: &Dataset) -> SchemaSignatures {
    let encoder = SignatureEncoder::default();
    encode_catalog(&encoder, &dataset.catalog)
}

/// Sweeps global scoping over the `p` grid for one detector: one scoring
/// pass, then thresholding per grid point.
pub fn global_scoping_curve(
    detector: &dyn OutlierDetector,
    signatures: &SchemaSignatures,
    labels: &[bool],
    steps: usize,
) -> SweepCurve {
    struct Ref<'a>(&'a dyn OutlierDetector);
    impl OutlierDetector for Ref<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn score(&self, data: &cs_linalg::Matrix) -> Vec<f64> {
            self.0.score(data)
        }
    }
    let scoper = GlobalScoper::new(Ref(detector));
    let scores = scoper.scores(signatures).expect("non-empty signatures");
    let mut curve = SweepCurve::new();
    for p in p_grid(steps) {
        let outcome = cs_core::scoping::scope_from_scores(detector.name(), signatures, &scores, p);
        curve.push(p, BinaryConfusion::from_labels(&outcome.decisions, labels));
    }
    curve
}

/// Sweeps collaborative scoping over the `v` grid using the cached
/// projection sweep. The whole grid is assessed in one
/// [`CollaborativeSweep::assess_grid`] batch, which fans the points out
/// over the global thread pool (bit-identical to a sequential loop —
/// DESIGN.md §8).
pub fn collaborative_curve(
    sweep: &CollaborativeSweep,
    labels: &[bool],
    steps: usize,
) -> SweepCurve {
    let vs = v_grid(steps);
    let outcomes = sweep
        .assess_grid(&vs, cs_core::CombinationRule::Any)
        .expect("v_grid stays inside (0, 1)");
    let mut curve = SweepCurve::new();
    for (&v, outcome) in vs.iter().zip(&outcomes) {
        curve.push(v, BinaryConfusion::from_labels(&outcome.decisions, labels));
    }
    curve
}

/// One Table-4 row: a scoping method's four AUC summaries (×100, as the
/// paper reports them).
#[derive(Debug, Clone)]
pub struct ScopingMethodResult {
    /// Method display name.
    pub method: String,
    /// AUC of F1 over the parameter grid.
    pub auc_f1: f64,
    /// AUC-ROC over the observed FPR range.
    pub auc_roc: f64,
    /// Smoothed/normalized AUC-ROC′.
    pub auc_roc_smoothed: f64,
    /// AUC of the precision-recall curve.
    pub auc_pr: f64,
    /// The underlying sweep (for figure export).
    pub curve: SweepCurve,
}

impl ScopingMethodResult {
    /// Summarizes a sweep curve into the paper's percentage metrics.
    pub fn from_curve(method: impl Into<String>, curve: SweepCurve) -> Self {
        Self {
            method: method.into(),
            auc_f1: 100.0 * curve.auc_f1(),
            auc_roc: 100.0 * curve.auc_roc(),
            auc_roc_smoothed: 100.0 * curve.auc_roc_smoothed(),
            auc_pr: 100.0 * curve.auc_pr(),
            curve,
        }
    }
}

/// Runs the full Table-4 roster on one dataset. `ae_runs`/`ae_epochs`
/// control the autoencoder ensemble cost (the paper uses 100 × 50; the
/// default harness uses a lighter setting — pass the paper values for the
/// full reproduction).
pub fn table4_rows(
    dataset: &Dataset,
    steps: usize,
    ae_runs: usize,
    ae_epochs: usize,
) -> Vec<ScopingMethodResult> {
    let signatures = dataset_signatures(dataset);
    let labels = dataset.labels();
    let mut rows = Vec::new();

    // Global scoping baselines.
    let zscore = cs_oda::ZScoreDetector;
    rows.push(ScopingMethodResult::from_curve(
        "Scoping Z-Score",
        global_scoping_curve(&zscore, &signatures, &labels, steps),
    ));
    let lof = cs_oda::LofDetector::default();
    rows.push(ScopingMethodResult::from_curve(
        "Scoping LOF (n=20)",
        global_scoping_curve(&lof, &signatures, &labels, steps),
    ));
    for v in [0.3, 0.5, 0.7] {
        let pca = cs_oda::PcaDetector::with_variance(v);
        rows.push(ScopingMethodResult::from_curve(
            format!("Scoping PCA (v={v})"),
            global_scoping_curve(&pca, &signatures, &labels, steps),
        ));
    }
    if ae_runs > 0 {
        let ae = cs_oda::AutoencoderDetector::fast(ae_runs, ae_epochs);
        rows.push(ScopingMethodResult::from_curve(
            format!("Scoping Autoencoder ({ae_runs}x{ae_epochs})"),
            global_scoping_curve(&ae, &signatures, &labels, steps),
        ));
    }

    // Collaborative scoping.
    let sweep = CollaborativeSweep::prepare(&signatures).expect("valid dataset");
    rows.push(ScopingMethodResult::from_curve(
        "Collaborative PCA",
        collaborative_curve(&sweep, &labels, steps),
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_well_formed() {
        let v = v_grid(20);
        assert!(v.windows(2).all(|w| w[0] > w[1]));
        assert!(v.iter().all(|&x| x > 0.0 && x < 1.0));
        let p = p_grid(20);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p[0], 0.0);
        assert_eq!(p[19], 1.0);
    }

    #[test]
    fn oc3_signature_shape() {
        let ds = cs_datasets::oc3();
        let sigs = dataset_signatures(&ds);
        assert_eq!(sigs.schema_count(), 3);
        assert_eq!(sigs.total_len(), 160);
        assert_eq!(sigs.dim(), 768);
    }

    #[test]
    fn collaborative_beats_global_pca_on_oc3_fo_auc_pr() {
        // The paper's headline: on the heterogeneous scenario,
        // collaborative scoping clearly outperforms the best global
        // baseline on AUC-PR.
        let ds = cs_datasets::oc3_fo();
        let signatures = dataset_signatures(&ds);
        let labels = ds.labels();
        let sweep = CollaborativeSweep::prepare(&signatures).unwrap();
        let collab =
            ScopingMethodResult::from_curve("collab", collaborative_curve(&sweep, &labels, 25));
        let pca = cs_oda::PcaDetector::with_variance(0.5);
        let global = ScopingMethodResult::from_curve(
            "global",
            global_scoping_curve(&pca, &signatures, &labels, 25),
        );
        assert!(
            collab.auc_pr > global.auc_pr,
            "collaborative {:.1} must beat global {:.1}",
            collab.auc_pr,
            global.auc_pr
        );
    }
}
