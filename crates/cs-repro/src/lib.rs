//! # cs-repro
//!
//! The experiment harness: everything needed to regenerate each table and
//! figure of the paper. The binaries under `src/bin/` print the paper's
//! rows/series and write CSV files under `results/`; this library holds
//! the shared experiment logic so the binaries stay thin and the logic
//! stays testable.
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | Table 2 — linkable/unlinkable element counts |
//! | `table3` | Table 3 — Cartesian sizes and annotated linkages |
//! | `table4` | Table 4 — AUC-F1 / AUC-ROC / AUC-ROC′ / AUC-PR of all scoping methods |
//! | `fig5` / `fig6` | Figures 5–6 — metric curves, ROC, PR for OC3 / OC3-FO |
//! | `fig7` | Figure 7 — PQ/PC/F1/RR ablation with SIM / CLUSTER / LSH |
//! | `discussion` | §4.4 — pass-operation counts and pruning floors |
//! | `all` | everything above |

pub mod ablation;
pub mod csv;
pub mod experiments;
pub mod figures;
pub mod goldens;
pub mod report;

pub use experiments::{
    collaborative_curve, dataset_signatures, global_scoping_curve, v_grid, ScopingMethodResult,
    DEFAULT_GRID_STEPS,
};

/// Where result CSVs are written, relative to the workspace root.
pub const RESULTS_DIR: &str = "results";
