//! Regenerates Figure 7: the PQ / PC / F1 / RR ablation of SIM, CLUSTER,
//! and LSH matchers on original (SOTA) vs collaboratively streamlined
//! schemas over the explained-variance range.
//!
//! Usage: `fig7 [--steps N]` (default 20 grid points — the plots need
//! fewer points than the AUC integrals).

use cs_repro::goldens;
use cs_repro::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let t = goldens::fig7(steps);
    let panels = ["(a-d)", "(e-h)"];
    for (panel, (name, points)) in panels.iter().zip(&t.per_dataset) {
        println!("Figure 7 {panel} — {name} (grid {steps})\n");

        // Console: SOTA row and three sampled v rows per matcher.
        let mut rows = Vec::new();
        let matchers: Vec<String> = {
            let mut seen = Vec::new();
            for p in points {
                if !seen.contains(&p.matcher) {
                    seen.push(p.matcher.clone());
                }
            }
            seen
        };
        for m in &matchers {
            let series: Vec<_> = points.iter().filter(|p| &p.matcher == m).collect();
            let sota = series.iter().find(|p| p.v.is_none()).expect("SOTA row");
            rows.push(vec![
                format!("{m} SOTA"),
                format!("{:.3}", sota.quality.pq),
                format!("{:.3}", sota.quality.pc),
                format!("{:.3}", sota.quality.f1),
                format!("{:.3}", sota.quality.rr),
            ]);
            for target in [0.9, 0.6, 0.2] {
                if let Some(p) = series.iter().filter(|p| p.v.is_some()).min_by(|a, b| {
                    let da = (a.v.unwrap() - target).abs();
                    let db = (b.v.unwrap() - target).abs();
                    cs_linalg::total_cmp_f64(&da, &db)
                }) {
                    rows.push(vec![
                        format!("{m} v={:.2}", p.v.unwrap()),
                        format!("{:.3}", p.quality.pq),
                        format!("{:.3}", p.quality.pc),
                        format!("{:.3}", p.quality.f1),
                        format!("{:.3}", p.quality.rr),
                    ]);
                }
            }
        }
        println!(
            "{}",
            render_table(&["Matcher", "PQ", "PC", "F1", "RR"], &rows)
        );
    }

    let path = format!("{}/fig7.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
