//! Regenerates Table 2: linkable and unlinkable schema elements in the
//! OC3 and OC3-FO datasets.

use cs_repro::goldens;
use cs_repro::report::render_table;

fn main() {
    let t = goldens::table2();

    println!("Table 2: linkable and unlinkable schema elements\n");
    println!(
        "{}",
        render_table(
            &["Schema", "Tables", "Attributes", "Linkable", "Unlinkable"],
            &t.console_rows
        )
    );
    let path = format!("{}/table2.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
