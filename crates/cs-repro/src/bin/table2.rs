//! Regenerates Table 2: linkable and unlinkable schema elements in the
//! OC3 and OC3-FO datasets.

use cs_repro::csv::CsvTable;
use cs_repro::report::render_table;

fn main() {
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(&["schema", "tables", "attributes", "linkable", "unlinkable"]);

    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let linkable = ds.linkages.linkable_per_schema(&ds.catalog);
        let total_tables: usize = ds.catalog.schemas().iter().map(|s| s.table_count()).sum();
        let total_attrs: usize = ds
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .sum();
        let total_linkable: usize = linkable.iter().sum();
        let total_unlinkable = ds.catalog.element_count() - total_linkable;
        rows.push(vec![
            ds.name.clone(),
            total_tables.to_string(),
            total_attrs.to_string(),
            total_linkable.to_string(),
            total_unlinkable.to_string(),
        ]);
        csv.push_row(vec![
            ds.name.clone(),
            total_tables.to_string(),
            total_attrs.to_string(),
            total_linkable.to_string(),
            total_unlinkable.to_string(),
        ]);
        for (k, schema) in ds.catalog.schemas().iter().enumerate() {
            // Per-schema rows only once (OC3-FO repeats the OC3 schemas).
            if ds.name == "OC3-FO" && k < 3 {
                continue;
            }
            let unlinkable = schema.element_count() - linkable[k];
            rows.push(vec![
                format!("  {}", schema.name),
                schema.table_count().to_string(),
                schema.attribute_count().to_string(),
                linkable[k].to_string(),
                unlinkable.to_string(),
            ]);
            csv.push_row(vec![
                schema.name.clone(),
                schema.table_count().to_string(),
                schema.attribute_count().to_string(),
                linkable[k].to_string(),
                unlinkable.to_string(),
            ]);
        }
    }

    println!("Table 2: linkable and unlinkable schema elements\n");
    println!(
        "{}",
        render_table(
            &["Schema", "Tables", "Attributes", "Linkable", "Unlinkable"],
            &rows
        )
    );
    let path = format!("{}/table2.csv", cs_repro::RESULTS_DIR);
    csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
