//! Regenerates Table 3: Cartesian product sizes and annotated linkages
//! per schema pair.

use cs_repro::csv::CsvTable;
use cs_repro::report::render_table;
use cs_schema::LinkageKind;

fn main() {
    let ds = cs_datasets::oc3();
    let c = &ds.catalog;
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(&["schemas", "cartesian_table", "cartesian_attr", "ii", "is"]);

    let mut push = |label: String, ct: usize, ca: usize, ii: usize, is: usize| {
        rows.push(vec![
            label.clone(),
            ct.to_string(),
            ca.to_string(),
            ii.to_string(),
            is.to_string(),
        ]);
        csv.push_row(vec![
            label,
            ct.to_string(),
            ca.to_string(),
            ii.to_string(),
            is.to_string(),
        ]);
    };

    // Totals row for OC3 (attribute pairs + the 5 sub-typed table pairs).
    push(
        "OC3".into(),
        c.cartesian_table_pairs(),
        c.cartesian_attribute_pairs(),
        ds.linkages.count_kind(LinkageKind::InterIdentical),
        ds.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    let names = ["Oracle", "MySQL", "HANA"];
    for i in 0..3 {
        for j in (i + 1)..3 {
            let si = c.schema(i);
            let sj = c.schema(j);
            let attr_pairs = |kind: LinkageKind| {
                ds.linkages
                    .iter()
                    .filter(|p| {
                        p.kind == kind && p.connects(i, j) && c.element_ref(p.a).is_attribute()
                    })
                    .count()
            };
            push(
                format!("  {}-{}", names[i], names[j]),
                si.table_count() * sj.table_count(),
                si.attribute_count() * sj.attribute_count(),
                attr_pairs(LinkageKind::InterIdentical),
                attr_pairs(LinkageKind::InterSubTyped),
            );
        }
    }

    let fo = cs_datasets::oc3_fo();
    push(
        "OC3-FO".into(),
        fo.catalog.cartesian_table_pairs(),
        fo.catalog.cartesian_attribute_pairs(),
        fo.linkages.count_kind(LinkageKind::InterIdentical),
        fo.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    println!("Table 3: Cartesian product sizes and annotated linkages\n");
    println!(
        "{}",
        render_table(
            &["Schemas", "Cartesian Table", "Cartesian Attr.", "II", "IS"],
            &rows
        )
    );
    let path = format!("{}/table3.csv", cs_repro::RESULTS_DIR);
    csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
