//! Regenerates Table 3: Cartesian product sizes and annotated linkages
//! per schema pair.

use cs_repro::goldens;
use cs_repro::report::render_table;

fn main() {
    let t = goldens::table3();

    println!("Table 3: Cartesian product sizes and annotated linkages\n");
    println!(
        "{}",
        render_table(
            &["Schemas", "Cartesian Table", "Cartesian Attr.", "II", "IS"],
            &t.rows
        )
    );
    let path = format!("{}/table3.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
