//! Regenerates the Section 4.4 discussion numbers: the pre-processing
//! trade-off (encoder–decoder pass operations vs Cartesian comparisons)
//! and the minimum-variance pruning floor.

use cs_core::CollaborativeScoper;
use cs_repro::experiments::dataset_signatures;

fn main() {
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let signatures = dataset_signatures(&ds);
        let cartesian = ds.catalog.cartesian_element_pairs();

        // Pass-operation accounting (any valid v gives the same counts).
        let run = CollaborativeScoper::new(0.8)
            .run(&signatures)
            .expect("valid dataset");
        println!(
            "{}: {} encoder-decoder pass operations vs {} Cartesian comparisons = {:.2}%",
            ds.name,
            run.cost.pass_operations,
            cartesian,
            100.0 * run.cost.fraction_of(cartesian),
        );

        // Pruning floor at the lowest variance the paper probes (v = 0.01).
        let floor = CollaborativeScoper::new(0.01)
            .run(&signatures)
            .expect("valid dataset");
        let pruned = floor.outcome.pruned_count();
        println!(
            "{}: at v=0.01, {} of {} elements pruned ({:.2}%)",
            ds.name,
            pruned,
            floor.outcome.len(),
            100.0 * pruned as f64 / floor.outcome.len() as f64,
        );

        // How many of the floor-pruned elements are true negatives.
        let labels = ds.labels();
        let false_prunes = floor
            .outcome
            .decisions
            .iter()
            .zip(labels.iter())
            .filter(|(&kept, &linkable)| !kept && linkable)
            .count();
        println!(
            "{}: of those, {} are linkable (falsely pruned), {} are true negatives\n",
            ds.name,
            false_prunes,
            pruned - false_prunes,
        );
    }
}
