//! Regenerates the scaling-quality grid: RR / PQ / PC / F1 of SIM(0.6)
//! on generated catalogs over size × unlinkable-fraction, on original vs
//! collaboratively streamlined schemas. The companion of the `cs-bench`
//! `scaling` group — that one charts wall time on the same catalog
//! family, this one charts match quality.
//!
//! Usage: `scaling_quality` (the grid is pinned so the output stays
//! byte-comparable with `results/scaling_quality.csv`).

use cs_repro::goldens::{self, SCALING_QUALITY_TOTALS, SCALING_QUALITY_UNLINKABLE};
use cs_repro::report::render_table;

fn main() {
    let t = goldens::scaling_quality(&SCALING_QUALITY_TOTALS, &SCALING_QUALITY_UNLINKABLE);

    let rows: Vec<Vec<String>> = t
        .points
        .iter()
        .map(|p| {
            vec![
                p.total.to_string(),
                format!("{:.2}", p.unlinkable),
                p.variant.to_string(),
                format!("{:.3}", p.quality.pq),
                format!("{:.3}", p.quality.pc),
                format!("{:.3}", p.quality.f1),
                format!("{:.3}", p.quality.rr),
                p.quality.candidates.to_string(),
            ]
        })
        .collect();
    println!("Scaling quality — SIM(0.6), streamlined at v = 0.8\n");
    println!(
        "{}",
        render_table(
            &["Total", "Unlink", "Variant", "PQ", "PC", "F1", "RR", "Cand"],
            &rows
        )
    );

    let path = format!("{}/scaling_quality.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
