//! Related-work baseline: lexical name matching vs semantic signatures.
//!
//! Section 2.2 of the paper argues that relying exclusively on string
//! similarity between schema names "suffers from labeling conflicts".
//! This binary quantifies that on the evaluation datasets: a Jaro-Winkler
//! / Levenshtein name matcher against the cosine SIM matcher, both with
//! and without collaborative streamlining.

use cs_core::CollaborativeScoper;
use cs_match::{dedup_pairs, ElementSet, Matcher, NameMatcher, NameMeasure, NamedSet, SimMatcher};
use cs_metrics::match_quality;
use cs_repro::experiments::dataset_signatures;
use cs_repro::report::render_table;
use cs_schema::ElementId;
use std::collections::HashSet;

/// Element display names per schema (attribute or table name only).
fn named_sets(ds: &cs_datasets::Dataset, keep: Option<&HashSet<ElementId>>) -> Vec<NamedSet> {
    (0..ds.catalog.schema_count())
        .map(|k| {
            let schema = ds.catalog.schema(k);
            let mut ids = Vec::new();
            let mut names = Vec::new();
            for (e, r) in schema.element_refs().into_iter().enumerate() {
                let id = ElementId::new(k, e);
                if keep.is_none_or(|s| s.contains(&id)) {
                    ids.push(id);
                    names.push(match r {
                        cs_schema::ElementRef::Table { table } => schema.tables[table].name.clone(),
                        cs_schema::ElementRef::Attribute { table, attribute } => {
                            schema.tables[table].attributes[attribute].name.clone()
                        }
                    });
                }
            }
            NamedSet::new(k, ids, names)
        })
        .collect()
}

fn score(pairs: Vec<cs_match::CandidatePair>, ds: &cs_datasets::Dataset) -> Vec<String> {
    let pairs = dedup_pairs(pairs);
    let tp = pairs
        .iter()
        .filter(|p| ds.linkages.contains_pair(p.a, p.b))
        .count();
    let q = match_quality(
        pairs.len(),
        tp,
        ds.linkages.len(),
        ds.catalog.cartesian_element_pairs(),
    );
    vec![
        format!("{:.3}", q.pq),
        format!("{:.3}", q.pc),
        format!("{:.3}", q.f1),
        format!("{}", q.candidates),
    ]
}

fn main() {
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        println!("Lexical vs semantic matching — {}\n", ds.name);
        let signatures = dataset_signatures(&ds);
        let kept = CollaborativeScoper::new(0.75)
            .run(&signatures)
            .expect("valid dataset")
            .outcome
            .kept();

        let mut rows = Vec::new();
        for (label, keep) in [("original", None), ("streamlined", Some(&kept))] {
            // Lexical matchers.
            let names = named_sets(&ds, keep);
            for (mname, measure, t) in [
                ("Levenshtein(0.8)", NameMeasure::Levenshtein, 0.8),
                ("JaroWinkler(0.9)", NameMeasure::JaroWinkler, 0.9),
                ("Trigram(0.5)", NameMeasure::TrigramJaccard, 0.5),
            ] {
                let pairs = NameMatcher::new(measure, t).match_names(&names);
                let mut row = vec![format!("{mname} {label}")];
                row.extend(score(pairs, &ds));
                rows.push(row);
            }
            // Semantic reference.
            let sets: Vec<ElementSet> = (0..signatures.schema_count())
                .map(|k| match keep {
                    Some(set) => ElementSet::filtered(k, signatures.schema(k), set),
                    None => ElementSet::full(k, signatures.schema(k).clone()),
                })
                .collect();
            let pairs = SimMatcher::new(0.8).match_pairs(&sets);
            let mut row = vec![format!("SIM(0.8) semantic {label}")];
            row.extend(score(pairs, &ds));
            rows.push(row);
        }
        println!(
            "{}",
            render_table(&["Matcher", "PQ", "PC", "F1", "candidates"], &rows)
        );
    }
}
