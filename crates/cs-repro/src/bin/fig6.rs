//! Regenerates Figure 6: best scoping vs collaborative scoping curves on
//! the OC3-FO schemas (metrics, ROC/ROC', PR).

fn main() {
    cs_repro::figures::run_figure("fig6", &cs_datasets::oc3_fo(), 50);
}
