//! The ANN recall/F1 smoke gate run by `scripts/verify.sh`.
//!
//! Recomputes the ANN quality grid on the scaling-quality catalog family
//! and enforces the two acceptance tolerances at **every** grid point:
//! recall@10 ≥ 0.9 against the exact cross-schema top-10, and
//! |F1(ANN-SIM 0.6) − F1(SIM 0.6)| ≤ 0.02. Exits non-zero on the first
//! violated point so CI fails loudly when index tuning regresses.

use cs_repro::goldens::{
    self, ANN_F1_TOLERANCE, ANN_RECALL_FLOOR, SCALING_QUALITY_TOTALS, SCALING_QUALITY_UNLINKABLE,
};

fn main() {
    let t = goldens::ann_quality(&SCALING_QUALITY_TOTALS, &SCALING_QUALITY_UNLINKABLE);
    let mut failures = 0usize;
    for p in &t.points {
        let mut verdict = "ok";
        if p.recall < ANN_RECALL_FLOOR {
            verdict = "RECALL-FAIL";
            failures += 1;
        } else if p.f1_delta() > ANN_F1_TOLERANCE {
            verdict = "F1-FAIL";
            failures += 1;
        }
        println!(
            "total={:<4} unlinkable={:.2} recall@10={:.3} sim_f1={:.3} ann_sim_f1={:.3} delta={:.3} [{verdict}]",
            p.total,
            p.unlinkable,
            p.recall,
            p.sim_f1,
            p.ann_sim_f1,
            p.f1_delta(),
        );
    }
    if failures > 0 {
        eprintln!(
            "ann_gate: {failures} grid point(s) outside tolerance (recall floor {ANN_RECALL_FLOOR}, F1 tolerance {ANN_F1_TOLERANCE})"
        );
        std::process::exit(1);
    }
    println!(
        "ann_gate: all {} points within tolerance (recall ≥ {ANN_RECALL_FLOOR}, |ΔF1| ≤ {ANN_F1_TOLERANCE})",
        t.points.len()
    );
}
