//! Quality-side ablations of the design decisions DESIGN.md §5 calls out:
//!
//! 1. local linkability range `l_k` vs relaxed `l_k·(1+ε)`,
//! 2. combination rule: ANY (the paper) vs ALL vs majority voting,
//! 3. signature composition: full metadata vs names only.
//!
//! Each variant reports AUC-F1 / AUC-PR over the `v` grid on both datasets.

use cs_core::{encode_catalog_with, CollaborativeScoper, CombinationRule, SchemaSignatures};
use cs_metrics::{BinaryConfusion, SweepCurve};
use cs_repro::experiments::{dataset_signatures, v_grid};
use cs_repro::report::{pct, render_table};
use cs_schema::SerializeOptions;

const STEPS: usize = 25;

fn sweep_with(
    signatures: &SchemaSignatures,
    labels: &[bool],
    rule: CombinationRule,
    epsilon_frac: f64,
) -> SweepCurve {
    let mut curve = SweepCurve::new();
    for v in v_grid(STEPS) {
        let scoper = CollaborativeScoper::new(v).with_rule(rule);
        let models = scoper.train_models(signatures).expect("valid dataset");
        let k = signatures.schema_count();
        let mut decisions = Vec::with_capacity(signatures.total_len());
        for sk in 0..k {
            let sigs = signatures.schema(sk);
            let mut votes = vec![0usize; sigs.rows()];
            for model in models.iter().filter(|m| m.schema_index() != sk) {
                let eps = model.linkability_range() * epsilon_frac;
                for (i, ok) in model.assess_relaxed(sigs, eps).into_iter().enumerate() {
                    if ok {
                        votes[i] += 1;
                    }
                }
            }
            decisions.extend(votes.into_iter().map(|a| rule.decide(a, k - 1)));
        }
        curve.push(v, BinaryConfusion::from_labels(&decisions, labels));
    }
    curve
}

fn main() {
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        println!("Ablations — {} (grid {STEPS})\n", ds.name);
        let labels = ds.labels();
        let signatures = dataset_signatures(&ds);
        let mut rows = Vec::new();
        let mut push = |name: &str, curve: &SweepCurve| {
            rows.push(vec![
                name.to_string(),
                pct(100.0 * curve.auc_f1()),
                pct(100.0 * curve.auc_pr()),
                pct(100.0 * curve.auc_roc_smoothed()),
            ]);
        };

        // 1. Linkability range strictness.
        push(
            "paper: l_k strict, rule=ANY",
            &sweep_with(&signatures, &labels, CombinationRule::Any, 0.0),
        );
        push(
            "relaxed l_k +10%",
            &sweep_with(&signatures, &labels, CombinationRule::Any, 0.10),
        );
        push(
            "relaxed l_k +50%",
            &sweep_with(&signatures, &labels, CombinationRule::Any, 0.50),
        );

        // 2. Combination rules.
        push(
            "rule=ALL",
            &sweep_with(&signatures, &labels, CombinationRule::All, 0.0),
        );
        push(
            "rule=AtLeast(2)",
            &sweep_with(&signatures, &labels, CombinationRule::AtLeast(2), 0.0),
        );

        // 3. Signature composition.
        let encoder = cs_embed::SignatureEncoder::default();
        let names_only =
            encode_catalog_with(&encoder, &ds.catalog, &SerializeOptions::names_only());
        push(
            "names-only serialization",
            &sweep_with(&names_only, &labels, CombinationRule::Any, 0.0),
        );
        let no_types = SerializeOptions {
            data_type: false,
            constraint: false,
            ..Default::default()
        };
        let no_types_sigs = encode_catalog_with(&encoder, &ds.catalog, &no_types);
        push(
            "no type/constraint words",
            &sweep_with(&no_types_sigs, &labels, CombinationRule::Any, 0.0),
        );

        println!(
            "{}",
            render_table(&["Variant", "AUC-F1", "AUC-PR", "AUC-ROC'"], &rows)
        );
    }
}
