//! Regenerates Figure 5: best scoping vs collaborative scoping curves on
//! the OC3 schemas (metrics, ROC/ROC', PR).

fn main() {
    cs_repro::figures::run_figure("fig5", &cs_datasets::oc3(), 50);
}
