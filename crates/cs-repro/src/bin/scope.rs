//! `scope` — the user-facing CLI: DDL files in, linkability verdicts out.
//!
//! ```text
//! scope --ddl path/a.sql --ddl path/b.sql [--ddl ...] \
//!       [--v 0.8] [--format text|json|csv] [--names-only] [--lexicon words.txt]
//! ```
//!
//! Each `--ddl` file contributes one schema (named after the file stem).
//! The tool runs the full collaborative-scoping pipeline and prints one
//! verdict per table/attribute. Exit code 2 on usage errors, 1 on
//! pipeline errors.

use cs_core::json::JsonValue;
use cs_core::{encode_catalog_with, CollaborativeScoper};
use cs_embed::SignatureEncoder;
use cs_schema::{parse_schema, Catalog, SerializeOptions};
use std::process::ExitCode;

struct Args {
    ddl_paths: Vec<String>,
    v: f64,
    format: String,
    names_only: bool,
    lexicon_path: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ddl_paths: Vec::new(),
        v: 0.8,
        format: "text".into(),
        names_only: false,
        lexicon_path: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ddl" => args
                .ddl_paths
                .push(iter.next().ok_or("--ddl needs a path")?),
            "--v" => {
                args.v = iter
                    .next()
                    .ok_or("--v needs a value")?
                    .parse()
                    .map_err(|_| "--v needs a float".to_string())?
            }
            "--format" => {
                args.format = iter.next().ok_or("--format needs text|json|csv")?;
                if !["text", "json", "csv"].contains(&args.format.as_str()) {
                    return Err(format!("unknown format {}", args.format));
                }
            }
            "--names-only" => args.names_only = true,
            "--lexicon" => args.lexicon_path = Some(iter.next().ok_or("--lexicon needs a path")?),
            "--help" | "-h" => {
                return Err("usage: scope --ddl a.sql --ddl b.sql [--v 0.8] \
                            [--format text|json|csv] [--names-only] [--lexicon words.txt]"
                    .into())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.ddl_paths.len() < 2 {
        return Err("need at least two --ddl schemas to scope collaboratively".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut catalog = Catalog::new();
    for path in &args.ddl_paths {
        let ddl = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let stem = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        match parse_schema(&stem, &ddl) {
            Ok(schema) => {
                catalog.push(schema);
            }
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let opts = if args.names_only {
        SerializeOptions::names_only()
    } else {
        SerializeOptions::default()
    };
    let encoder = match &args.lexicon_path {
        None => SignatureEncoder::default(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match cs_embed::Lexicon::default_with_extensions(&text) {
                Ok(lexicon) => SignatureEncoder::new(cs_embed::EncoderConfig::default(), lexicon),
                Err(e) => {
                    eprintln!("invalid lexicon {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let signatures = encode_catalog_with(&encoder, &catalog, &opts);
    let run = match CollaborativeScoper::new(args.v).run(&signatures) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scoping failed: {e}");
            return ExitCode::from(1);
        }
    };

    match args.format.as_str() {
        "json" => {
            let items: Vec<JsonValue> = run
                .outcome
                .element_ids
                .iter()
                .enumerate()
                .map(|(i, id)| {
                    JsonValue::object(vec![
                        (
                            "element",
                            JsonValue::String(catalog.info(*id).qualified_name.clone()),
                        ),
                        (
                            "schema",
                            JsonValue::String(catalog.schema(id.schema).name.clone()),
                        ),
                        ("linkable", JsonValue::Bool(run.outcome.decisions[i])),
                        ("votes", JsonValue::Number(run.accept_votes[i] as f64)),
                        ("margin", JsonValue::Number(run.best_margin[i])),
                    ])
                })
                .collect();
            let doc = JsonValue::object(vec![
                ("v", JsonValue::Number(args.v)),
                ("kept", JsonValue::Number(run.outcome.kept_count() as f64)),
                ("total", JsonValue::Number(run.outcome.len() as f64)),
                ("elements", JsonValue::Array(items)),
            ]);
            println!("{}", doc.write_pretty());
        }
        "csv" => {
            println!("element,schema,linkable,votes,margin");
            for (i, id) in run.outcome.element_ids.iter().enumerate() {
                println!(
                    "{},{},{},{},{:.6}",
                    catalog.info(*id).qualified_name,
                    catalog.schema(id.schema).name,
                    run.outcome.decisions[i],
                    run.accept_votes[i],
                    run.best_margin[i]
                );
            }
        }
        _ => {
            println!(
                "collaborative scoping at v={}: kept {}/{} elements\n",
                args.v,
                run.outcome.kept_count(),
                run.outcome.len()
            );
            for (i, id) in run.outcome.element_ids.iter().enumerate() {
                println!(
                    "{} {}",
                    if run.outcome.decisions[i] {
                        "keep "
                    } else {
                        "prune"
                    },
                    catalog.info(*id).qualified_name
                );
            }
        }
    }
    ExitCode::SUCCESS
}
