//! Diagnostic: per-element collaborative-scoping decisions at one `v`.
//!
//! Usage: `inspect [--dataset oc3|oc3-fo] [--v 0.8]`
//! Prints false positives and false negatives with qualified names —
//! the tool for understanding *why* an element was kept or pruned.

use cs_core::CollaborativeScoper;
use cs_repro::experiments::dataset_signatures;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let dataset = match get("--dataset", "oc3-fo").as_str() {
        "oc3" => cs_datasets::oc3(),
        _ => cs_datasets::oc3_fo(),
    };
    let v: f64 = get("--v", "0.8").parse().expect("--v takes a float");

    let signatures = dataset_signatures(&dataset);
    let labels = dataset.labels();
    let run = CollaborativeScoper::new(v)
        .run(&signatures)
        .expect("valid dataset");

    println!(
        "{} at v={v}: kept {}/{} elements; models retain {:?} components; ranges {:?}",
        dataset.name,
        run.outcome.kept_count(),
        run.outcome.len(),
        run.models
            .iter()
            .map(|m| m.n_components())
            .collect::<Vec<_>>(),
        run.models
            .iter()
            .map(|m| format!("{:.4}", m.linkability_range()))
            .collect::<Vec<_>>(),
    );

    let mut fps = Vec::new();
    let mut fns = Vec::new();
    for (i, id) in run.outcome.element_ids.iter().enumerate() {
        let name = dataset.catalog.info(*id).qualified_name;
        let margin = run.best_margin[i];
        match (run.outcome.decisions[i], labels[i]) {
            (true, false) => fps.push(format!("  FP {name} (margin {margin:+.4})")),
            (false, true) => fns.push(format!("  FN {name} (margin {margin:+.4})")),
            _ => {}
        }
    }
    println!("\nfalse positives ({}):", fps.len());
    for l in &fps {
        println!("{l}");
    }
    println!("\nfalse negatives ({}):", fns.len());
    for l in &fns {
        println!("{l}");
    }
}
