//! Runs every experiment in sequence: Tables 2–4, Figures 5–7, and the
//! Section 4.4 discussion numbers. Pass `--full` for the paper's
//! autoencoder ensemble in Table 4.

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    let binaries: &[(&str, &[&str])] = &[
        ("table2", &[]),
        ("table3", &[]),
        ("table4", if full { &["--full"] } else { &[] }),
        ("fig5", &[]),
        ("fig6", &[]),
        ("fig7", &[]),
        ("discussion", &[]),
        ("scaling_quality", &[]),
        ("ann_quality", &[]),
    ];
    for (bin, args) in binaries {
        println!("==== {bin} {} ====", args.join(" "));
        let status = Command::new(exe_dir.join(bin))
            .args(*args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
        println!();
    }
    println!(
        "all experiments complete; CSVs under {}/",
        cs_repro::RESULTS_DIR
    );
}
