//! Quantifies the three heterogeneity axes of Section 2.4 — volume,
//! design (normalization / atomicity), and domain (vocabulary) — for the
//! OC3 and OC3-FO scenarios, showing why the Formula-One extension makes
//! the matching problem qualitatively harder.

use cs_repro::report::render_table;
use cs_schema::HeterogeneityReport;

fn main() {
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let report = HeterogeneityReport::of(&ds.catalog);
        println!("Heterogeneity — {}\n", ds.name);
        let rows: Vec<Vec<String>> = report
            .profiles
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    p.tables.to_string(),
                    p.attributes.to_string(),
                    format!("{:.1}", p.mean_table_width),
                    p.max_table_width.to_string(),
                    p.key_attributes.to_string(),
                    p.vocabulary.len().to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Schema",
                    "Tables",
                    "Attrs",
                    "Width(mean)",
                    "Width(max)",
                    "Keys",
                    "Vocab"
                ],
                &rows
            )
        );
        println!(
            "indices: volume {:.3}, design {:.3}, domain {:.3}\n",
            report.volume, report.design, report.domain
        );
    }
}
