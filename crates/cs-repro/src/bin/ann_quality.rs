//! Regenerates the ANN quality grid: recall@10 of the two-stage
//! [`cs_match::AnnIndex`] against the exact cross-schema scan, and F1
//! parity of ANN-SIM(0.6) with exhaustive SIM(0.6), on the same
//! generated catalog family as `scaling_quality`. The tolerances this
//! grid documents are the ones `ann_gate` enforces in verify.sh.
//!
//! Usage: `ann_quality` (the grid is pinned so the output stays
//! byte-comparable with `results/ann_quality.csv`).

use cs_repro::goldens::{self, SCALING_QUALITY_TOTALS, SCALING_QUALITY_UNLINKABLE};
use cs_repro::report::render_table;

fn main() {
    let t = goldens::ann_quality(&SCALING_QUALITY_TOTALS, &SCALING_QUALITY_UNLINKABLE);

    let rows: Vec<Vec<String>> = t
        .points
        .iter()
        .map(|p| {
            vec![
                p.total.to_string(),
                format!("{:.2}", p.unlinkable),
                format!("{:.3}", p.recall),
                format!("{:.3}", p.sim_f1),
                format!("{:.3}", p.ann_sim_f1),
                format!("{:.3}", p.f1_delta()),
            ]
        })
        .collect();
    println!("ANN quality — recall@10 vs exact, ANN-SIM(0.6) vs SIM(0.6)\n");
    println!(
        "{}",
        render_table(
            &["Total", "Unlink", "Recall@10", "SIM F1", "ANN F1", "|ΔF1|"],
            &rows
        )
    );

    let path = format!("{}/ann_quality.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
