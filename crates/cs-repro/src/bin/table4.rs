//! Regenerates Table 4: AUC-F1, AUC-ROC, AUC-ROC′, and AUC-PR of every
//! scoping method on OC3 and OC3-FO.
//!
//! Usage: `table4 [--full]` — `--full` uses the paper's autoencoder
//! ensemble (100 runs × 50 epochs; slow); the default uses a light
//! configuration (10 × 25) that preserves the ranking.

use cs_repro::experiments::DEFAULT_GRID_STEPS;
use cs_repro::goldens;
use cs_repro::report::{pct, render_table};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (ae_runs, ae_epochs) = if full { (100, 50) } else { (10, 25) };

    let t = goldens::table4(DEFAULT_GRID_STEPS, ae_runs, ae_epochs);
    for (name, rows) in &t.per_dataset {
        println!(
            "Table 4 — {name} (autoencoder {ae_runs}×{ae_epochs}, grid {DEFAULT_GRID_STEPS})\n"
        );
        let mut text_rows = Vec::new();
        for r in rows {
            text_rows.push(vec![
                r.method.clone(),
                pct(r.auc_f1),
                pct(r.auc_roc),
                pct(r.auc_roc_smoothed),
                pct(r.auc_pr),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["Method", "AUC-F1", "AUC-ROC", "AUC-ROC'", "AUC-PR"],
                &text_rows
            )
        );

        // The paper's comparison row: best scoping vs collaborative.
        let collab = rows.last().expect("collaborative row present");
        let best_scoping = rows[..rows.len() - 1]
            .iter()
            .max_by(|a, b| cs_linalg::total_cmp_f64(&a.auc_pr, &b.auc_pr))
            .expect("scoping rows present");
        println!(
            "best scoping by AUC-PR: {} ({}); collaborative improvement: {:+.2}% AUC-F1, {:+.2}% AUC-ROC, {:+.2}% AUC-ROC', {:+.2}% AUC-PR\n",
            best_scoping.method,
            pct(best_scoping.auc_pr),
            collab.auc_f1 - best_scoping.auc_f1,
            collab.auc_roc - best_scoping.auc_roc,
            collab.auc_roc_smoothed - best_scoping.auc_roc_smoothed,
            collab.auc_pr - best_scoping.auc_pr,
        );
    }
    let path = format!("{}/table4.csv", cs_repro::RESULTS_DIR);
    t.csv.write_to(&path).expect("write results CSV");
    println!("written: {path}");
}
