//! Future-work extension (paper §5): collaborative scoping with
//! **non-linear** local encoder–decoders (dense autoencoders) instead of
//! PCA, compared on both datasets across bottleneck widths.
//!
//! Usage: `extension_nonlinear [--epochs N]` (default 120).

use cs_core::{CollaborativeScoper, NeuralCollaborativeScoper};
use cs_metrics::BinaryConfusion;
use cs_nn::TrainConfig;
use cs_repro::experiments::dataset_signatures;
use cs_repro::report::{pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args
        .iter()
        .position(|a| a == "--epochs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        println!("Non-linear extension — {} (epochs {epochs})\n", ds.name);
        let labels = ds.labels();
        let signatures = dataset_signatures(&ds);
        let mut rows = Vec::new();

        // PCA reference points at comparable generalization levels.
        for v in [0.9, 0.7, 0.5] {
            let run = CollaborativeScoper::new(v).run(&signatures).expect("valid");
            let c = BinaryConfusion::from_labels(&run.outcome.decisions, &labels);
            rows.push(vec![
                format!("PCA v={v}"),
                pct(100.0 * c.precision()),
                pct(100.0 * c.recall()),
                pct(100.0 * c.f1()),
            ]);
        }

        // Autoencoder local models across bottleneck widths.
        for bottleneck in [4usize, 10, 24] {
            let config = TrainConfig {
                hidden: vec![100, bottleneck, 100],
                epochs,
                batch_size: 32,
                learning_rate: 1e-3,
                seed: 0xAE_2026,
            };
            let run = NeuralCollaborativeScoper::new(config)
                .run(&signatures)
                .expect("valid");
            let c = BinaryConfusion::from_labels(&run.outcome.decisions, &labels);
            rows.push(vec![
                format!("AE 100|{bottleneck}|100"),
                pct(100.0 * c.precision()),
                pct(100.0 * c.recall()),
                pct(100.0 * c.f1()),
            ]);
        }

        println!(
            "{}",
            render_table(&["Local model", "Precision", "Recall", "F1"], &rows)
        );
    }
}
