//! Shared golden-table builders.
//!
//! The `table2` / `table3` / `table4` / `fig7` binaries and the golden
//! regression test (`tests/golden.rs`) must produce *byte-identical* CSV —
//! so the table construction lives here, once, and both sides consume it.
//! Each builder returns the [`CsvTable`] destined for `results/` plus the
//! intermediate rows the binaries render on the console.

use crate::ablation::{evaluate_matcher, fig7_ablation, split_element_sets, AblationPoint};
use crate::csv::{fmt_f64, CsvTable};
use crate::experiments::{dataset_signatures, table4_rows, ScopingMethodResult};
use cs_core::CollaborativeSweep;
use cs_datasets::synthetic::{generate, SyntheticConfig};
use cs_linalg::vecops::{sq_euclidean, total_cmp_f64};
use cs_match::{AnnConfig, AnnIndex, AnnSimMatcher, ElementSet, SimMatcher};
use cs_metrics::MatchQuality;
use cs_schema::LinkageKind;

/// Table 2: linkable/unlinkable element counts.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Console rows (per-schema labels indented under the totals row).
    pub console_rows: Vec<Vec<String>>,
    /// The `results/table2.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 2 from the OC3 and OC3-FO datasets.
pub fn table2() -> Table2 {
    let mut console_rows = Vec::new();
    let mut csv = CsvTable::new(&["schema", "tables", "attributes", "linkable", "unlinkable"]);

    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let linkable = ds.linkages.linkable_per_schema(&ds.catalog);
        let total_tables: usize = ds.catalog.schemas().iter().map(|s| s.table_count()).sum();
        let total_attrs: usize = ds
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .sum();
        let total_linkable: usize = linkable.iter().sum();
        let total_unlinkable = ds.catalog.element_count() - total_linkable;
        let totals = vec![
            ds.name.clone(),
            total_tables.to_string(),
            total_attrs.to_string(),
            total_linkable.to_string(),
            total_unlinkable.to_string(),
        ];
        console_rows.push(totals.clone());
        csv.push_row(totals);
        for (k, schema) in ds.catalog.schemas().iter().enumerate() {
            // Per-schema rows only once (OC3-FO repeats the OC3 schemas).
            if ds.name == "OC3-FO" && k < 3 {
                continue;
            }
            let unlinkable = schema.element_count() - linkable[k];
            let cells = |label: String| {
                vec![
                    label,
                    schema.table_count().to_string(),
                    schema.attribute_count().to_string(),
                    linkable[k].to_string(),
                    unlinkable.to_string(),
                ]
            };
            console_rows.push(cells(format!("  {}", schema.name)));
            csv.push_row(cells(schema.name.clone()));
        }
    }
    Table2 { console_rows, csv }
}

/// Table 3: Cartesian product sizes and annotated linkages. Console rows
/// and CSV rows are identical (pair rows keep their two-space indent).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows shared by the console rendering and the CSV.
    pub rows: Vec<Vec<String>>,
    /// The `results/table3.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 3 from the OC3 and OC3-FO datasets.
pub fn table3() -> Table3 {
    let ds = cs_datasets::oc3();
    let c = &ds.catalog;
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut push = |label: String, ct: usize, ca: usize, ii: usize, is: usize| {
        rows.push(vec![
            label,
            ct.to_string(),
            ca.to_string(),
            ii.to_string(),
            is.to_string(),
        ]);
    };

    // Totals row for OC3 (attribute pairs + the 5 sub-typed table pairs).
    push(
        "OC3".into(),
        c.cartesian_table_pairs(),
        c.cartesian_attribute_pairs(),
        ds.linkages.count_kind(LinkageKind::InterIdentical),
        ds.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    let names = ["Oracle", "MySQL", "HANA"];
    for i in 0..3 {
        for j in (i + 1)..3 {
            let si = c.schema(i);
            let sj = c.schema(j);
            let attr_pairs = |kind: LinkageKind| {
                ds.linkages
                    .iter()
                    .filter(|p| {
                        p.kind == kind && p.connects(i, j) && c.element_ref(p.a).is_attribute()
                    })
                    .count()
            };
            push(
                format!("  {}-{}", names[i], names[j]),
                si.table_count() * sj.table_count(),
                si.attribute_count() * sj.attribute_count(),
                attr_pairs(LinkageKind::InterIdentical),
                attr_pairs(LinkageKind::InterSubTyped),
            );
        }
    }

    let fo = cs_datasets::oc3_fo();
    push(
        "OC3-FO".into(),
        fo.catalog.cartesian_table_pairs(),
        fo.catalog.cartesian_attribute_pairs(),
        fo.linkages.count_kind(LinkageKind::InterIdentical),
        fo.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    let mut csv = CsvTable::new(&["schemas", "cartesian_table", "cartesian_attr", "ii", "is"]);
    for row in &rows {
        csv.push_row(row.clone());
    }
    Table3 { rows, csv }
}

/// Table 4: AUC summaries of every scoping method per dataset.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// `(dataset name, method rows)` in emission order.
    pub per_dataset: Vec<(String, Vec<ScopingMethodResult>)>,
    /// The `results/table4.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 4 on both datasets with the given sweep/ensemble budget.
pub fn table4(steps: usize, ae_runs: usize, ae_epochs: usize) -> Table4 {
    let mut per_dataset = Vec::new();
    let mut csv = CsvTable::new(&[
        "dataset",
        "method",
        "auc_f1",
        "auc_roc",
        "auc_roc_smoothed",
        "auc_pr",
    ]);
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let rows = table4_rows(&ds, steps, ae_runs, ae_epochs);
        for r in &rows {
            csv.push_row(vec![
                ds.name.clone(),
                r.method.clone(),
                fmt_f64(r.auc_f1),
                fmt_f64(r.auc_roc),
                fmt_f64(r.auc_roc_smoothed),
                fmt_f64(r.auc_pr),
            ]);
        }
        per_dataset.push((ds.name.clone(), rows));
    }
    Table4 { per_dataset, csv }
}

/// Figure 7: the PQ/PC/F1/RR matcher ablation per dataset.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(dataset name, ablation points)` in emission order.
    pub per_dataset: Vec<(String, Vec<AblationPoint>)>,
    /// The `results/fig7.csv` content.
    pub csv: CsvTable,
}

/// Builds the Figure-7 ablation on both datasets over `steps` grid points.
pub fn fig7(steps: usize) -> Fig7 {
    let mut per_dataset = Vec::new();
    let mut csv = CsvTable::new(&[
        "dataset",
        "matcher",
        "v",
        "pq",
        "pc",
        "f1",
        "rr",
        "candidates",
    ]);
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let points = fig7_ablation(&ds, steps);
        for p in &points {
            csv.push_row(vec![
                ds.name.clone(),
                p.matcher.clone(),
                p.v.map(fmt_f64).unwrap_or_else(|| "SOTA".into()),
                fmt_f64(p.quality.pq),
                fmt_f64(p.quality.pc),
                fmt_f64(p.quality.f1),
                fmt_f64(p.quality.rr),
                p.quality.candidates.to_string(),
            ]);
        }
        per_dataset.push((ds.name.clone(), points));
    }
    Fig7 { per_dataset, csv }
}

/// One scaling-quality measurement on a generated catalog.
#[derive(Debug, Clone)]
pub struct ScalingQualityPoint {
    /// Total attribute budget of the generated catalog.
    pub total: usize,
    /// Requested unlinkable fraction (`1 − linkable_ratio`).
    pub unlinkable: f64,
    /// `"original"` (SOTA) or `"streamlined"` (post-sweep kept set).
    pub variant: &'static str,
    /// SIM(0.6) match quality at this grid point.
    pub quality: MatchQuality,
}

/// The scaling-quality grid: catalog sizes × unlinkable fractions.
#[derive(Debug, Clone)]
pub struct ScalingQuality {
    /// Measurements in grid order (size-major, variant-minor).
    pub points: Vec<ScalingQualityPoint>,
    /// The `results/scaling_quality.csv` content.
    pub csv: CsvTable,
}

/// The generated catalog behind one scaling-quality grid point: the same
/// shape the `cs-bench` scaling group measures for wall time, so the
/// quality CSV and the timing sweep describe the same family.
fn scaling_quality_dataset(total: usize, unlinkable: f64, seed: u64) -> cs_datasets::Dataset {
    let schemas = (total / 1_000).max(2);
    let per_schema = total / schemas;
    generate(&SyntheticConfig {
        schemas,
        shared_concepts: per_schema,
        concepts_per_schema: per_schema / 2,
        private_per_schema: per_schema - per_schema / 2,
        table_width: 8,
        alien_elements: 0,
        linkable_ratio: Some(1.0 - unlinkable),
        seed,
        ..SyntheticConfig::default()
    })
}

/// Builds the scaling-quality grid: RR / PQ / F1 of SIM(0.6) on generated
/// catalogs over `totals × unlinkable`, on the original schemas and after
/// collaborative streamlining at `v = 0.8`.
pub fn scaling_quality(totals: &[usize], unlinkable: &[f64]) -> ScalingQuality {
    let mut points = Vec::new();
    let mut csv = CsvTable::new(&[
        "total",
        "unlinkable",
        "variant",
        "pq",
        "pc",
        "f1",
        "rr",
        "candidates",
    ]);
    let matcher = SimMatcher::new(0.6);
    for (ti, &total) in totals.iter().enumerate() {
        for (ui, &u) in unlinkable.iter().enumerate() {
            let seed = 0x5CA_1E + (ti * unlinkable.len() + ui) as u64;
            let ds = scaling_quality_dataset(total, u, seed);
            let signatures = dataset_signatures(&ds);
            let sweep = CollaborativeSweep::prepare(&signatures).expect("valid sweep");
            let kept = sweep.assess_at(0.8).expect("valid grid point").kept();
            let variants = [
                ("original", split_element_sets(&ds, &signatures, None)),
                (
                    "streamlined",
                    split_element_sets(&ds, &signatures, Some(&kept)),
                ),
            ];
            for (variant, (attr_sets, table_sets)) in variants {
                let quality = evaluate_matcher(&matcher, &attr_sets, &table_sets, &ds);
                csv.push_row(vec![
                    total.to_string(),
                    fmt_f64(u),
                    variant.to_string(),
                    fmt_f64(quality.pq),
                    fmt_f64(quality.pc),
                    fmt_f64(quality.f1),
                    fmt_f64(quality.rr),
                    quality.candidates.to_string(),
                ]);
                points.push(ScalingQualityPoint {
                    total,
                    unlinkable: u,
                    variant,
                    quality,
                });
            }
        }
    }
    ScalingQuality { points, csv }
}

/// The checked-in `results/scaling_quality.csv` grid: catalog sizes and
/// unlinkable fractions small enough to regenerate in the golden test.
pub const SCALING_QUALITY_TOTALS: [usize; 3] = [48, 96, 192];
/// Unlinkable fractions of the checked-in scaling-quality grid.
pub const SCALING_QUALITY_UNLINKABLE: [f64; 3] = [0.2, 0.5, 0.8];

/// Recall cutoff of the ANN quality grid (recall@10).
pub const ANN_RECALL_AT: usize = 10;
/// The recall@10 floor `ann_gate` enforces at every grid point.
pub const ANN_RECALL_FLOOR: f64 = 0.9;
/// The |ΔF1| ceiling between SIM(0.6) and ANN-SIM(0.6) at every point.
pub const ANN_F1_TOLERANCE: f64 = 0.02;

/// The ANN configuration the quality grid (and gate) measures: the
/// default index tuning with a neighbor count sized for the SIM
/// comparison.
pub fn ann_quality_config() -> AnnConfig {
    AnnConfig::with_k(16)
}

/// One ANN-quality measurement on a generated catalog.
#[derive(Debug, Clone)]
pub struct AnnQualityPoint {
    /// Total attribute budget of the generated catalog.
    pub total: usize,
    /// Requested unlinkable fraction.
    pub unlinkable: f64,
    /// Mean recall@10 of the ANN index vs the exact cross-schema top-10.
    pub recall: f64,
    /// Exhaustive SIM(0.6) F1 on the original schemas.
    pub sim_f1: f64,
    /// ANN-SIM(0.6) F1 on the same element sets.
    pub ann_sim_f1: f64,
}

impl AnnQualityPoint {
    /// Absolute F1 gap between the exhaustive and the ANN-backed matcher.
    pub fn f1_delta(&self) -> f64 {
        (self.sim_f1 - self.ann_sim_f1).abs()
    }
}

/// The ANN quality grid: recall and F1 parity versus the exact paths.
#[derive(Debug, Clone)]
pub struct AnnQuality {
    /// Measurements in grid order (size-major).
    pub points: Vec<AnnQualityPoint>,
    /// The `results/ann_quality.csv` content.
    pub csv: CsvTable,
}

/// Mean recall@`k` of the two-stage ANN index against an exact
/// cross-schema scan over the same concatenated signatures.
fn ann_recall(sets: &[ElementSet], config: AnnConfig, k: usize) -> f64 {
    let nonempty: Vec<&ElementSet> = sets.iter().filter(|s| !s.is_empty()).collect();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut schema_of = Vec::new();
    for set in &nonempty {
        for r in 0..set.len() {
            rows.push(set.signatures.row(r).to_vec());
            schema_of.push(set.schema);
        }
    }
    if rows.len() < 2 {
        return 1.0;
    }
    let data = cs_linalg::Matrix::from_rows(&rows);
    let index = AnnIndex::build(data.clone(), config);
    let mut recall_sum = 0.0;
    let mut queries = 0usize;
    for q in 0..rows.len() {
        // Exact cross-schema top-k by full-dimension distance.
        let mut exact: Vec<(usize, f64)> = (0..rows.len())
            .filter(|&i| schema_of[i] != schema_of[q])
            .map(|i| (i, sq_euclidean(data.row(q), data.row(i))))
            .collect();
        if exact.is_empty() {
            continue;
        }
        exact.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
        exact.truncate(k);
        let truth: std::collections::BTreeSet<usize> = exact.iter().map(|&(i, _)| i).collect();
        let approx: std::collections::BTreeSet<usize> = index
            .search_filtered(data.row(q), k, |i| schema_of[i] != schema_of[q])
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        recall_sum += truth.intersection(&approx).count() as f64 / truth.len() as f64;
        queries += 1;
    }
    if queries == 0 {
        1.0
    } else {
        recall_sum / queries as f64
    }
}

/// Builds the ANN quality grid on the scaling-quality catalog family:
/// per grid point, mean recall@10 of the ANN index vs the exact
/// cross-schema scan, and F1 of ANN-SIM(0.6) vs exhaustive SIM(0.6) on
/// the original schemas — the two tolerances `ann_gate` enforces.
pub fn ann_quality(totals: &[usize], unlinkable: &[f64]) -> AnnQuality {
    let mut points = Vec::new();
    let mut csv = CsvTable::new(&[
        "total",
        "unlinkable",
        "recall_at_10",
        "sim_f1",
        "ann_sim_f1",
        "f1_delta",
    ]);
    let config = ann_quality_config();
    let exhaustive = SimMatcher::new(0.6);
    let approx = AnnSimMatcher::new(config, 0.6);
    for (ti, &total) in totals.iter().enumerate() {
        for (ui, &u) in unlinkable.iter().enumerate() {
            // Same seeds as the scaling-quality grid: both CSVs describe
            // the same catalogs.
            let seed = 0x5CA_1E + (ti * unlinkable.len() + ui) as u64;
            let ds = scaling_quality_dataset(total, u, seed);
            let signatures = dataset_signatures(&ds);
            let (attr_sets, table_sets) = split_element_sets(&ds, &signatures, None);
            let recall = ann_recall(&attr_sets, config, ANN_RECALL_AT);
            let sim_f1 = evaluate_matcher(&exhaustive, &attr_sets, &table_sets, &ds).f1;
            let ann_sim_f1 = evaluate_matcher(&approx, &attr_sets, &table_sets, &ds).f1;
            let point = AnnQualityPoint {
                total,
                unlinkable: u,
                recall,
                sim_f1,
                ann_sim_f1,
            };
            csv.push_row(vec![
                total.to_string(),
                fmt_f64(u),
                fmt_f64(point.recall),
                fmt_f64(point.sim_f1),
                fmt_f64(point.ann_sim_f1),
                fmt_f64(point.f1_delta()),
            ]);
            points.push(point);
        }
    }
    AnnQuality { points, csv }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_console_and_csv_agree_up_to_indentation() {
        let t = table2();
        assert_eq!(t.console_rows.len(), t.csv.len());
        // Totals rows appear verbatim; per-schema rows are indented on the
        // console only.
        assert_eq!(t.console_rows[0][0], "OC3");
        assert!(t.console_rows[1][0].starts_with("  "));
    }

    #[test]
    fn scaling_quality_emits_both_variants_per_grid_point() {
        let t = scaling_quality(&[48], &[0.5]);
        assert_eq!(t.points.len(), 2);
        assert_eq!(t.csv.len(), 2);
        assert_eq!(t.points[0].variant, "original");
        assert_eq!(t.points[1].variant, "streamlined");
        for p in &t.points {
            assert!((0.0..=1.0).contains(&p.quality.rr), "rr out of range");
            assert!((0.0..=1.0).contains(&p.quality.f1), "f1 out of range");
        }
    }

    #[test]
    fn ann_quality_meets_gate_tolerances_on_a_small_point() {
        let t = ann_quality(&[48], &[0.5]);
        assert_eq!(t.points.len(), 1);
        assert_eq!(t.csv.len(), 1);
        let p = &t.points[0];
        assert!(
            p.recall >= ANN_RECALL_FLOOR,
            "recall@10 below floor: {}",
            p.recall
        );
        assert!(
            p.f1_delta() <= ANN_F1_TOLERANCE,
            "F1 gap above tolerance: {} vs {}",
            p.sim_f1,
            p.ann_sim_f1
        );
    }

    #[test]
    fn table3_has_totals_pairs_and_fo_rows() {
        let t = table3();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][0], "OC3");
        assert_eq!(t.rows[4][0], "OC3-FO");
        assert!(t.rows[1][0].starts_with("  Oracle-"));
        assert_eq!(t.csv.len(), 5);
    }
}
