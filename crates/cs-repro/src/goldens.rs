//! Shared golden-table builders.
//!
//! The `table2` / `table3` / `table4` / `fig7` binaries and the golden
//! regression test (`tests/golden.rs`) must produce *byte-identical* CSV —
//! so the table construction lives here, once, and both sides consume it.
//! Each builder returns the [`CsvTable`] destined for `results/` plus the
//! intermediate rows the binaries render on the console.

use crate::ablation::{fig7_ablation, AblationPoint};
use crate::csv::{fmt_f64, CsvTable};
use crate::experiments::{table4_rows, ScopingMethodResult};
use cs_schema::LinkageKind;

/// Table 2: linkable/unlinkable element counts.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Console rows (per-schema labels indented under the totals row).
    pub console_rows: Vec<Vec<String>>,
    /// The `results/table2.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 2 from the OC3 and OC3-FO datasets.
pub fn table2() -> Table2 {
    let mut console_rows = Vec::new();
    let mut csv = CsvTable::new(&["schema", "tables", "attributes", "linkable", "unlinkable"]);

    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let linkable = ds.linkages.linkable_per_schema(&ds.catalog);
        let total_tables: usize = ds.catalog.schemas().iter().map(|s| s.table_count()).sum();
        let total_attrs: usize = ds
            .catalog
            .schemas()
            .iter()
            .map(|s| s.attribute_count())
            .sum();
        let total_linkable: usize = linkable.iter().sum();
        let total_unlinkable = ds.catalog.element_count() - total_linkable;
        let totals = vec![
            ds.name.clone(),
            total_tables.to_string(),
            total_attrs.to_string(),
            total_linkable.to_string(),
            total_unlinkable.to_string(),
        ];
        console_rows.push(totals.clone());
        csv.push_row(totals);
        for (k, schema) in ds.catalog.schemas().iter().enumerate() {
            // Per-schema rows only once (OC3-FO repeats the OC3 schemas).
            if ds.name == "OC3-FO" && k < 3 {
                continue;
            }
            let unlinkable = schema.element_count() - linkable[k];
            let cells = |label: String| {
                vec![
                    label,
                    schema.table_count().to_string(),
                    schema.attribute_count().to_string(),
                    linkable[k].to_string(),
                    unlinkable.to_string(),
                ]
            };
            console_rows.push(cells(format!("  {}", schema.name)));
            csv.push_row(cells(schema.name.clone()));
        }
    }
    Table2 { console_rows, csv }
}

/// Table 3: Cartesian product sizes and annotated linkages. Console rows
/// and CSV rows are identical (pair rows keep their two-space indent).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows shared by the console rendering and the CSV.
    pub rows: Vec<Vec<String>>,
    /// The `results/table3.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 3 from the OC3 and OC3-FO datasets.
pub fn table3() -> Table3 {
    let ds = cs_datasets::oc3();
    let c = &ds.catalog;
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut push = |label: String, ct: usize, ca: usize, ii: usize, is: usize| {
        rows.push(vec![
            label,
            ct.to_string(),
            ca.to_string(),
            ii.to_string(),
            is.to_string(),
        ]);
    };

    // Totals row for OC3 (attribute pairs + the 5 sub-typed table pairs).
    push(
        "OC3".into(),
        c.cartesian_table_pairs(),
        c.cartesian_attribute_pairs(),
        ds.linkages.count_kind(LinkageKind::InterIdentical),
        ds.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    let names = ["Oracle", "MySQL", "HANA"];
    for i in 0..3 {
        for j in (i + 1)..3 {
            let si = c.schema(i);
            let sj = c.schema(j);
            let attr_pairs = |kind: LinkageKind| {
                ds.linkages
                    .iter()
                    .filter(|p| {
                        p.kind == kind && p.connects(i, j) && c.element_ref(p.a).is_attribute()
                    })
                    .count()
            };
            push(
                format!("  {}-{}", names[i], names[j]),
                si.table_count() * sj.table_count(),
                si.attribute_count() * sj.attribute_count(),
                attr_pairs(LinkageKind::InterIdentical),
                attr_pairs(LinkageKind::InterSubTyped),
            );
        }
    }

    let fo = cs_datasets::oc3_fo();
    push(
        "OC3-FO".into(),
        fo.catalog.cartesian_table_pairs(),
        fo.catalog.cartesian_attribute_pairs(),
        fo.linkages.count_kind(LinkageKind::InterIdentical),
        fo.linkages.count_kind(LinkageKind::InterSubTyped),
    );

    let mut csv = CsvTable::new(&["schemas", "cartesian_table", "cartesian_attr", "ii", "is"]);
    for row in &rows {
        csv.push_row(row.clone());
    }
    Table3 { rows, csv }
}

/// Table 4: AUC summaries of every scoping method per dataset.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// `(dataset name, method rows)` in emission order.
    pub per_dataset: Vec<(String, Vec<ScopingMethodResult>)>,
    /// The `results/table4.csv` content.
    pub csv: CsvTable,
}

/// Builds Table 4 on both datasets with the given sweep/ensemble budget.
pub fn table4(steps: usize, ae_runs: usize, ae_epochs: usize) -> Table4 {
    let mut per_dataset = Vec::new();
    let mut csv = CsvTable::new(&[
        "dataset",
        "method",
        "auc_f1",
        "auc_roc",
        "auc_roc_smoothed",
        "auc_pr",
    ]);
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let rows = table4_rows(&ds, steps, ae_runs, ae_epochs);
        for r in &rows {
            csv.push_row(vec![
                ds.name.clone(),
                r.method.clone(),
                fmt_f64(r.auc_f1),
                fmt_f64(r.auc_roc),
                fmt_f64(r.auc_roc_smoothed),
                fmt_f64(r.auc_pr),
            ]);
        }
        per_dataset.push((ds.name.clone(), rows));
    }
    Table4 { per_dataset, csv }
}

/// Figure 7: the PQ/PC/F1/RR matcher ablation per dataset.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(dataset name, ablation points)` in emission order.
    pub per_dataset: Vec<(String, Vec<AblationPoint>)>,
    /// The `results/fig7.csv` content.
    pub csv: CsvTable,
}

/// Builds the Figure-7 ablation on both datasets over `steps` grid points.
pub fn fig7(steps: usize) -> Fig7 {
    let mut per_dataset = Vec::new();
    let mut csv = CsvTable::new(&[
        "dataset",
        "matcher",
        "v",
        "pq",
        "pc",
        "f1",
        "rr",
        "candidates",
    ]);
    for ds in [cs_datasets::oc3(), cs_datasets::oc3_fo()] {
        let points = fig7_ablation(&ds, steps);
        for p in &points {
            csv.push_row(vec![
                ds.name.clone(),
                p.matcher.clone(),
                p.v.map(fmt_f64).unwrap_or_else(|| "SOTA".into()),
                fmt_f64(p.quality.pq),
                fmt_f64(p.quality.pc),
                fmt_f64(p.quality.f1),
                fmt_f64(p.quality.rr),
                p.quality.candidates.to_string(),
            ]);
        }
        per_dataset.push((ds.name.clone(), points));
    }
    Fig7 { per_dataset, csv }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_console_and_csv_agree_up_to_indentation() {
        let t = table2();
        assert_eq!(t.console_rows.len(), t.csv.len());
        // Totals rows appear verbatim; per-schema rows are indented on the
        // console only.
        assert_eq!(t.console_rows[0][0], "OC3");
        assert!(t.console_rows[1][0].starts_with("  "));
    }

    #[test]
    fn table3_has_totals_pairs_and_fo_rows() {
        let t = table3();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][0], "OC3");
        assert_eq!(t.rows[4][0], "OC3-FO");
        assert!(t.rows[1][0].starts_with("  Oracle-"));
        assert_eq!(t.csv.len(), 5);
    }
}
