//! Figure 5/6 export: metric curves, ROC/ROC′, and PR series for the
//! best-performing scoping method vs collaborative scoping.

use crate::csv::{fmt_f64, CsvTable};
use crate::experiments::{
    collaborative_curve, dataset_signatures, global_scoping_curve, ScopingMethodResult,
};
use cs_core::CollaborativeSweep;
use cs_datasets::Dataset;
use cs_metrics::SweepCurve;

/// All series of one figure (a–f panels).
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Dataset name.
    pub dataset: String,
    /// Best global scoping method (by AUC-PR) and its sweep.
    pub scoping: ScopingMethodResult,
    /// Collaborative scoping sweep.
    pub collaborative: ScopingMethodResult,
}

/// Computes the figure data for one dataset: the PCA global-scoping
/// variant the paper plots (best of `v ∈ {0.3, 0.5, 0.7}` by AUC-PR)
/// against the collaborative sweep.
pub fn figure_data(dataset: &Dataset, steps: usize) -> FigureData {
    let signatures = dataset_signatures(dataset);
    let labels = dataset.labels();
    let scoping = [0.3, 0.5, 0.7]
        .into_iter()
        .map(|v| {
            let det = cs_oda::PcaDetector::with_variance(v);
            ScopingMethodResult::from_curve(
                format!("Scoping PCA (v={v})"),
                global_scoping_curve(&det, &signatures, &labels, steps),
            )
        })
        .max_by(|a, b| cs_linalg::total_cmp_f64(&a.auc_pr, &b.auc_pr))
        .expect("non-empty roster");
    let sweep = CollaborativeSweep::prepare(&signatures).expect("valid dataset");
    let collaborative = ScopingMethodResult::from_curve(
        "Collaborative PCA",
        collaborative_curve(&sweep, &labels, steps),
    );
    FigureData {
        dataset: dataset.name.clone(),
        scoping,
        collaborative,
    }
}

/// Writes the three CSVs (metrics, roc, pr) for one method's sweep.
pub fn write_method_csvs(
    fig: &str,
    method_tag: &str,
    curve: &SweepCurve,
    param_name: &str,
) -> std::io::Result<Vec<String>> {
    let mut written = Vec::new();

    let mut metrics = CsvTable::new(&[param_name, "accuracy", "precision", "recall", "f1"]);
    for p in curve.points() {
        metrics.push_row(vec![
            fmt_f64(p.param),
            fmt_f64(p.confusion.accuracy()),
            fmt_f64(p.confusion.precision()),
            fmt_f64(p.confusion.recall()),
            fmt_f64(p.confusion.f1()),
        ]);
    }
    let path = format!("{}/{fig}_{method_tag}_metrics.csv", crate::RESULTS_DIR);
    metrics.write_to(&path)?;
    written.push(path);

    let mut roc = CsvTable::new(&["fpr", "tpr"]);
    for pt in curve.roc_points() {
        roc.push_row(vec![fmt_f64(pt.fpr), fmt_f64(pt.tpr)]);
    }
    let path = format!("{}/{fig}_{method_tag}_roc.csv", crate::RESULTS_DIR);
    roc.write_to(&path)?;
    written.push(path);

    let mut pr = CsvTable::new(&["recall", "precision"]);
    for (r, p) in curve.pr_points() {
        pr.push_row(vec![fmt_f64(r), fmt_f64(p)]);
    }
    let path = format!("{}/{fig}_{method_tag}_pr.csv", crate::RESULTS_DIR);
    pr.write_to(&path)?;
    written.push(path);

    Ok(written)
}

/// Prints a compact textual rendering of a figure's panels and writes all
/// CSVs; shared by the `fig5` and `fig6` binaries.
pub fn run_figure(fig: &str, dataset: &Dataset, steps: usize) {
    let data = figure_data(dataset, steps);
    println!(
        "{fig} — {}: {} vs Collaborative PCA (grid {steps})\n",
        data.dataset, data.scoping.method
    );
    for (label, res, param) in [
        ("(a,c,e) scoping", &data.scoping, "p"),
        ("(b,d,f) collaborative", &data.collaborative, "v"),
    ] {
        println!(
            "{label}: {} | AUC-F1 {:.2} AUC-ROC {:.2} AUC-ROC' {:.2} AUC-PR {:.2}",
            res.method, res.auc_f1, res.auc_roc, res.auc_roc_smoothed, res.auc_pr
        );
        // Sample a few grid points for the console.
        let pts = res.curve.points();
        let step = (pts.len() / 8).max(1);
        println!("  {param:>6} | acc   | prec  | rec   | f1");
        for p in pts.iter().step_by(step) {
            println!(
                "  {:>6.2} | {:.3} | {:.3} | {:.3} | {:.3}",
                p.param,
                p.confusion.accuracy(),
                p.confusion.precision(),
                p.confusion.recall(),
                p.confusion.f1()
            );
        }
        let tag = if param == "p" {
            "scoping"
        } else {
            "collaborative"
        };
        let files = write_method_csvs(fig, tag, &res.curve, param).expect("write CSVs");
        for f in files {
            println!("  written: {f}");
        }
        println!();
    }
}
