//! Golden-file regression tests: rebuild the paper-table CSVs through the
//! shared [`cs_repro::goldens`] builders, write them to a temp dir, and
//! byte-diff them against the checked-in files under `results/`.
//!
//! Any change to datasets, encoders, numerics, or the parallel runtime
//! that moves a single byte of output fails here. The determinism
//! contract (DESIGN.md §8) is what makes this a meaningful gate: worker
//! counts may never influence these bytes.
//!
//! `table2`/`table3` are cheap and always run. `table4`/`fig7` need
//! minutes in a debug build, so they only run when optimized
//! (`cargo test --release`) or when `CS_GOLDEN_FULL` is set.

use std::path::PathBuf;

use cs_repro::csv::CsvTable;
use cs_repro::goldens;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Writes the regenerated table to a temp dir, reads it back, and
/// compares byte-for-byte with the checked-in golden.
fn assert_matches_golden(name: &str, csv: &CsvTable) {
    let golden_path = results_dir().join(name);
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read golden {}: {e}", golden_path.display()));

    let tmp = std::env::temp_dir().join(format!("cs_golden_{}", std::process::id()));
    let regen_path = tmp.join(name);
    csv.write_to(&regen_path).expect("write regenerated CSV");
    let regenerated = std::fs::read_to_string(&regen_path).expect("read regenerated CSV");
    let _ = std::fs::remove_dir_all(&tmp);

    if regenerated != golden {
        let line = golden
            .lines()
            .zip(regenerated.lines())
            .position(|(g, r)| g != r)
            .map(|i| i + 1);
        panic!(
            "{name} diverged from results/{name} (first differing line: {}); \
             regenerate with `cargo run --release -p cs-repro --bin all` \
             and inspect the diff before committing",
            line.map_or("length".to_string(), |l| l.to_string()),
        );
    }
}

/// True when the expensive goldens should run: optimized builds always,
/// debug builds only on explicit request.
fn heavy_goldens_enabled() -> bool {
    !cfg!(debug_assertions) || cs_linalg::config::env_flag(cs_linalg::config::GOLDEN_FULL)
}

#[test]
fn table2_csv_is_byte_identical() {
    assert_matches_golden("table2.csv", &goldens::table2().csv);
}

#[test]
fn table3_csv_is_byte_identical() {
    assert_matches_golden("table3.csv", &goldens::table3().csv);
}

#[test]
fn table4_csv_is_byte_identical() {
    if !heavy_goldens_enabled() {
        eprintln!("skipping table4 golden in debug build (set CS_GOLDEN_FULL=1 to force)");
        return;
    }
    // The default harness budget used by the `table4` binary: 50 grid
    // points, a 10×25 autoencoder ensemble.
    assert_matches_golden("table4.csv", &goldens::table4(50, 10, 25).csv);
}

#[test]
fn fig7_csv_is_byte_identical() {
    if !heavy_goldens_enabled() {
        eprintln!("skipping fig7 golden in debug build (set CS_GOLDEN_FULL=1 to force)");
        return;
    }
    // The `fig7` binary's default: 20 grid points.
    assert_matches_golden("fig7.csv", &goldens::fig7(20).csv);
}

#[test]
fn ann_quality_csv_is_byte_identical() {
    if !heavy_goldens_enabled() {
        eprintln!("skipping ann_quality golden in debug build (set CS_GOLDEN_FULL=1 to force)");
        return;
    }
    // The `ann_quality` binary's pinned grid: the scaling-quality catalog
    // family measured for ANN recall and F1 parity.
    assert_matches_golden(
        "ann_quality.csv",
        &goldens::ann_quality(
            &goldens::SCALING_QUALITY_TOTALS,
            &goldens::SCALING_QUALITY_UNLINKABLE,
        )
        .csv,
    );
}

#[test]
fn scaling_quality_csv_is_byte_identical() {
    if !heavy_goldens_enabled() {
        eprintln!("skipping scaling_quality golden in debug build (set CS_GOLDEN_FULL=1 to force)");
        return;
    }
    // The `scaling_quality` binary's pinned grid: generated catalogs
    // over size × unlinkable-fraction, original vs streamlined.
    assert_matches_golden(
        "scaling_quality.csv",
        &goldens::scaling_quality(
            &goldens::SCALING_QUALITY_TOTALS,
            &goldens::SCALING_QUALITY_UNLINKABLE,
        )
        .csv,
    );
}
