//! Dense (fully connected) layers.

use crate::activation::Activation;
use cs_linalg::{Matrix, Xoshiro256};

/// A dense layer `y = act(x·W + b)` with `W: in × out`, operating on
/// row-major batches (`batch × in`).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `input_dim × output_dim`.
    pub weights: Matrix,
    /// Biases, one per output unit.
    pub biases: Vec<f64>,
    /// Activation applied element-wise.
    pub activation: Activation,
}

/// Cached values from a forward pass needed by backprop.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// Layer input (`batch × in`).
    pub input: Matrix,
    /// Pre-activation values (`batch × out`).
    pub pre_activation: Matrix,
}

/// Parameter gradients produced by a backward pass.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// `∂L/∂W`, same shape as the weights.
    pub weights: Matrix,
    /// `∂L/∂b`.
    pub biases: Vec<f64>,
}

impl Dense {
    /// He-initialized layer (appropriate for ReLU nets), seeded.
    pub fn he_init(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "layer dims must be positive"
        );
        let scale = (2.0 / input_dim as f64).sqrt();
        let weights = Matrix::from_fn(input_dim, output_dim, |_, _| rng.next_gaussian() * scale);
        Self {
            weights,
            biases: vec![0.0; output_dim],
            activation,
        }
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass over a batch; returns `(output, cache)`.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        assert_eq!(input.cols(), self.input_dim(), "input dim mismatch");
        let mut pre = input.matmul(&self.weights);
        for i in 0..pre.rows() {
            for (x, &b) in pre.row_mut(i).iter_mut().zip(self.biases.iter()) {
                *x += b;
            }
        }
        let out = pre.map(|x| self.activation.apply(x));
        (
            out,
            DenseCache {
                input: input.clone(),
                pre_activation: pre,
            },
        )
    }

    /// Backward pass: consumes `∂L/∂output`, returns `(∂L/∂input, grads)`.
    pub fn backward(&self, cache: &DenseCache, grad_output: &Matrix) -> (Matrix, DenseGrads) {
        assert_eq!(grad_output.shape(), cache.pre_activation.shape());
        // δ = ∂L/∂pre = grad_output ⊙ act'(pre).
        let delta = grad_output.zip_with(&cache.pre_activation, |g, p| {
            g * self.activation.derivative(p)
        });
        // ∂L/∂W = inputᵀ · δ ; ∂L/∂b = column sums of δ ; ∂L/∂input = δ · Wᵀ.
        let grad_w = cache.input.transpose().matmul(&delta);
        let mut grad_b = vec![0.0; self.output_dim()];
        for row in delta.rows_iter() {
            for (acc, &d) in grad_b.iter_mut().zip(row.iter()) {
                *acc += d;
            }
        }
        let grad_input = delta.matmul_transposed(&self.weights);
        (
            grad_input,
            DenseGrads {
                weights: grad_w,
                biases: grad_b,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_layer() -> Dense {
        Dense {
            weights: Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]),
            biases: vec![0.1, -0.2],
            activation: Activation::Identity,
        }
    }

    #[test]
    fn forward_known_values() {
        let layer = tiny_layer();
        let x = Matrix::from_rows(&[vec![2.0, 1.0]]);
        let (y, _) = layer.forward(&x);
        // [2·1+1·0.5+0.1, 2·(−1)+1·2−0.2] = [2.6, −0.2].
        assert!((y[(0, 0)] - 2.6).abs() < 1e-12);
        assert!((y[(0, 1)] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_forward() {
        let mut layer = tiny_layer();
        layer.activation = Activation::Relu;
        let x = Matrix::from_rows(&[vec![2.0, 1.0]]);
        let (y, _) = layer.forward(&x);
        assert!((y[(0, 1)] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn he_init_scale() {
        let mut rng = Xoshiro256::seed_from(1);
        let layer = Dense::he_init(400, 50, Activation::Relu, &mut rng);
        let var: f64 = layer.weights.as_slice().iter().map(|w| w * w).sum::<f64>() / (400.0 * 50.0);
        let expected = 2.0 / 400.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}");
        assert!(layer.biases.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = Xoshiro256::seed_from(3);
        let layer = Dense::he_init(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::from_fn(2, 4, |_, _| rng.next_gaussian());
        let target = Matrix::from_fn(2, 3, |_, _| rng.next_gaussian());

        // L = ½ Σ (y − t)²; ∂L/∂y = y − t.
        let loss = |l: &Dense| -> f64 {
            let (y, _) = l.forward(&x);
            y.sub(&target).as_slice().iter().map(|d| d * d).sum::<f64>() / 2.0
        };
        let (y, cache) = layer.forward(&x);
        let grad_out = y.sub(&target);
        let (grad_in, grads) = layer.backward(&cache, &grad_out);

        let h = 1e-6;
        // Check a few weight gradients.
        for &(i, j) in &[(0usize, 0usize), (1, 2), (3, 1)] {
            let mut plus = layer.clone();
            plus.weights[(i, j)] += h;
            let mut minus = layer.clone();
            minus.weights[(i, j)] -= h;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - grads.weights[(i, j)]).abs() < 1e-4,
                "dW[{i},{j}]: numeric {numeric} vs analytic {}",
                grads.weights[(i, j)]
            );
        }
        // Check a bias gradient.
        let mut plus = layer.clone();
        plus.biases[1] += h;
        let mut minus = layer.clone();
        minus.biases[1] -= h;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
        assert!((numeric - grads.biases[1]).abs() < 1e-4);

        // Check input gradient via perturbing x.
        let loss_at = |xp: &Matrix| -> f64 {
            let (y, _) = layer.forward(xp);
            y.sub(&target).as_slice().iter().map(|d| d * d).sum::<f64>() / 2.0
        };
        let mut xp = x.clone();
        xp[(0, 2)] += h;
        let mut xm = x.clone();
        xm[(0, 2)] -= h;
        let numeric = (loss_at(&xp) - loss_at(&xm)) / (2.0 * h);
        assert!((numeric - grad_in[(0, 2)]).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn wrong_input_dim_panics() {
        let layer = tiny_layer();
        layer.forward(&Matrix::zeros(1, 3));
    }
}
