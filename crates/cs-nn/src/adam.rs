//! The Adam optimizer (Kingma & Ba, 2015) over flat parameter slices.

/// Adam state for one parameter tensor (stored flat).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// First-moment estimates.
    m: Vec<f64>,
    /// Second-moment estimates.
    v: Vec<f64>,
    /// Step counter.
    t: u64,
}

impl Adam {
    /// Standard hyper-parameters: `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
            t: 0,
        }
    }

    /// Applies one bias-corrected Adam update in place.
    ///
    /// # Panics
    /// If `params` and `grads` lengths differ from the state size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x − 3)²; ∇f = 2(x − 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn first_step_size_is_learning_rate() {
        // With bias correction, the first step has magnitude ≈ lr.
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.05);
        opt.step(&mut x, &[10.0]);
        assert!((x[0] + 0.05).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn handles_multidimensional_params() {
        // f(x, y) = x² + 10y².
        let mut p = vec![5.0, -4.0];
        let mut opt = Adam::new(2, 0.2);
        for _ in 0..800 {
            let g = vec![2.0 * p[0], 20.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-2 && p[1].abs() < 1e-2, "{p:?}");
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn size_mismatch_panics() {
        Adam::new(2, 0.1).step(&mut [0.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn non_positive_lr_panics() {
        Adam::new(1, 0.0);
    }
}
