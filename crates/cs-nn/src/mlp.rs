//! Multi-layer perceptron: a stack of [`Dense`] layers.

use crate::activation::Activation;
use crate::layer::{Dense, DenseCache, DenseGrads};
use cs_linalg::{Matrix, Xoshiro256};

/// A feed-forward network. For the paper's autoencoder baseline the layout
/// is `768 | 100 | 10 | 100 | 768` with ReLU on hidden layers and a linear
/// output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from a layer-size spec, e.g. `[768, 100, 10, 100, 768]`.
    /// Hidden layers get ReLU, the output layer is linear.
    pub fn new(sizes: &[usize], rng: &mut Xoshiro256) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                Dense::he_init(w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// The symmetric autoencoder layout the paper configures in Keras.
    pub fn paper_autoencoder(dim: usize, rng: &mut Xoshiro256) -> Self {
        Self::new(&[dim, 100, 10, 100, dim], rng)
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// The layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            let (y, _) = layer.forward(&x);
            x = y;
        }
        x
    }

    /// Forward pass keeping per-layer caches for backprop.
    pub fn forward_cached(&self, input: &Matrix) -> (Matrix, Vec<DenseCache>) {
        let mut x = input.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (y, cache) = layer.forward(&x);
            caches.push(cache);
            x = y;
        }
        (x, caches)
    }

    /// Backward pass from `∂L/∂output`; returns per-layer gradients.
    pub fn backward(&self, caches: &[DenseCache], grad_output: &Matrix) -> Vec<DenseGrads> {
        assert_eq!(caches.len(), self.layers.len());
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut grad = grad_output.clone();
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (grad_in, g) = layer.backward(cache, &grad);
            grads.push(g);
            grad = grad_in;
        }
        grads.reverse();
        grads
    }

    /// Flattens all parameters into one vector (weights then biases, layer
    /// by layer) — the layout the Adam optimizer steps over.
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(l.weights.as_slice());
            out.extend_from_slice(&l.biases);
        }
        out
    }

    /// Writes a flat parameter vector back into the layers.
    pub fn set_parameters(&mut self, flat: &[f64]) {
        let mut offset = 0;
        for l in &mut self.layers {
            let w_len = l.weights.as_slice().len();
            l.weights
                .as_mut_slice()
                .copy_from_slice(&flat[offset..offset + w_len]);
            offset += w_len;
            let b_len = l.biases.len();
            l.biases.copy_from_slice(&flat[offset..offset + b_len]);
            offset += b_len;
        }
        assert_eq!(offset, flat.len(), "parameter vector length mismatch");
    }

    /// Flattens gradients with the same layout as [`Mlp::parameters`].
    pub fn flatten_grads(grads: &[DenseGrads]) -> Vec<f64> {
        let mut out = Vec::new();
        for g in grads {
            out.extend_from_slice(g.weights.as_slice());
            out.extend_from_slice(&g.biases);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_activations() {
        let mut rng = Xoshiro256::seed_from(1);
        let mlp = Mlp::paper_autoencoder(768, &mut rng);
        assert_eq!(mlp.layers().len(), 4);
        assert_eq!(mlp.input_dim(), 768);
        assert_eq!(mlp.output_dim(), 768);
        assert_eq!(mlp.layers()[0].output_dim(), 100);
        assert_eq!(mlp.layers()[1].output_dim(), 10);
        assert_eq!(mlp.layers()[2].output_dim(), 100);
        assert_eq!(mlp.layers()[3].activation, Activation::Identity);
        assert_eq!(mlp.layers()[0].activation, Activation::Relu);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Xoshiro256::seed_from(2);
        let mlp = Mlp::new(&[6, 4, 3], &mut rng);
        let x = Matrix::from_fn(5, 6, |_, _| rng.next_gaussian());
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 3));
    }

    #[test]
    fn parameter_roundtrip() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut mlp = Mlp::new(&[4, 3, 2], &mut rng);
        let params = mlp.parameters();
        assert_eq!(params.len(), 4 * 3 + 3 + 3 * 2 + 2);
        let doubled: Vec<f64> = params.iter().map(|p| p * 2.0).collect();
        mlp.set_parameters(&doubled);
        assert_eq!(mlp.parameters(), doubled);
    }

    #[test]
    fn backward_matches_finite_difference_end_to_end() {
        let mut rng = Xoshiro256::seed_from(4);
        let mlp = Mlp::new(&[3, 4, 2], &mut rng);
        let x = Matrix::from_fn(2, 3, |_, _| rng.next_gaussian());
        let t = Matrix::from_fn(2, 2, |_, _| rng.next_gaussian());

        let loss = |m: &Mlp| -> f64 {
            let y = m.forward(&x);
            y.sub(&t).as_slice().iter().map(|d| d * d).sum::<f64>() / 2.0
        };
        let (y, caches) = mlp.forward_cached(&x);
        let grads = mlp.backward(&caches, &y.sub(&t));
        let flat = Mlp::flatten_grads(&grads);
        let params = mlp.parameters();

        let h = 1e-6;
        // Probe several random parameter indices.
        for &idx in &[0usize, 5, 11, params.len() - 1, params.len() / 2] {
            let mut plus = mlp.clone();
            let mut p = params.clone();
            p[idx] += h;
            plus.set_parameters(&p);
            let mut minus = mlp.clone();
            p[idx] -= 2.0 * h;
            minus.set_parameters(&p);
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * h);
            assert!(
                (numeric - flat[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_size_panics() {
        Mlp::new(&[5], &mut Xoshiro256::seed_from(1));
    }
}
