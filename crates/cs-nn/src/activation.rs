//! Activation functions with their derivatives.

/// Element-wise activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Identity (linear output layer).
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the *pre-activation* value.
    #[inline]
    pub fn derivative(self, pre_activation: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre_activation > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values() {
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
    }

    #[test]
    fn relu_derivative() {
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-2.0), 0.0);
    }

    #[test]
    fn identity_passthrough() {
        assert_eq!(Activation::Identity.apply(-7.5), -7.5);
        assert_eq!(Activation::Identity.derivative(-7.5), 1.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-7;
        for act in [Activation::Relu, Activation::Identity] {
            for x in [-1.3_f64, 0.4, 2.2] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!((numeric - act.derivative(x)).abs() < 1e-5);
            }
        }
    }
}
