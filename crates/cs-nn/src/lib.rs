//! # cs-nn
//!
//! A from-scratch dense neural network — just enough deep learning to
//! reproduce the paper's **autoencoder scoping baseline** (Section 4.1):
//! a fully dense `768|100|10|100|768` network with ReLU activations, Adam
//! optimization, and MSE loss, trained as a self-supervised reconstructor
//! whose per-row reconstruction error is the outlier score. The paper
//! ensembles 100 independently initialized trainings and sums the scores;
//! [`ensemble_scores`](train::ensemble_scores) implements that.
//!
//! Modules:
//! - [`layer`] — dense layers with forward/backward passes,
//! - [`activation`] — ReLU / identity,
//! - [`adam`] — the Adam optimizer,
//! - [`mlp`] — the multi-layer perceptron container,
//! - [`train`] — MSE training loop and ensemble scoring.

pub mod activation;
pub mod adam;
pub mod layer;
pub mod mlp;
pub mod train;

pub use activation::Activation;
pub use adam::Adam;
pub use layer::Dense;
pub use mlp::Mlp;
pub use train::{ensemble_scores, train_autoencoder, TrainConfig};
