//! Autoencoder training and ensemble outlier scoring.
//!
//! The paper's baseline (Section 4.1): a dense `768|100|10|100|768`
//! autoencoder, MSE loss ("due to its outlier sensitivity"), Adam,
//! trained 100 times from independent initializations for 50 epochs each,
//! with the per-element outlier score being the **sum** of each run's
//! reconstruction error.

use crate::adam::Adam;
use crate::mlp::Mlp;
use cs_linalg::vecops::mse;
use cs_linalg::{Matrix, Xoshiro256};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Hidden layout between input and output (the paper: `[100, 10, 100]`).
    pub hidden: Vec<usize>,
    /// Number of epochs per run (the paper: 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Base RNG seed (each ensemble run offsets it).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: vec![100, 10, 100],
            epochs: 50,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 0x5EED_AE00,
        }
    }
}

/// Trains one autoencoder to reconstruct `data` and returns it.
pub fn train_autoencoder(data: &Matrix, config: &TrainConfig) -> Mlp {
    assert!(
        data.rows() > 0 && data.cols() > 0,
        "cannot train on empty data"
    );
    let mut sizes = Vec::with_capacity(config.hidden.len() + 2);
    sizes.push(data.cols());
    sizes.extend_from_slice(&config.hidden);
    sizes.push(data.cols());

    let mut rng = Xoshiro256::seed_from(config.seed);
    let mut mlp = Mlp::new(&sizes, &mut rng);
    let mut params = mlp.parameters();
    let mut opt = Adam::new(params.len(), config.learning_rate);

    let n = data.rows();
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch = data.select_rows(chunk);
            let (out, caches) = mlp.forward_cached(&batch);
            // L = mean over batch elements of squared error; ∂L/∂out scaled
            // accordingly keeps gradients batch-size independent.
            let scale = 2.0 / (batch.rows() * batch.cols()) as f64;
            let grad_out = out.sub(&batch).scale(scale);
            let grads = mlp.backward(&caches, &grad_out);
            let flat = Mlp::flatten_grads(&grads);
            opt.step(&mut params, &flat);
            mlp.set_parameters(&params);
        }
    }
    mlp
}

/// Per-row reconstruction MSE of a trained network.
pub fn reconstruction_errors(mlp: &Mlp, data: &Matrix) -> Vec<f64> {
    let out = mlp.forward(data);
    data.rows_iter()
        .zip(out.rows_iter())
        .map(|(a, b)| mse(a, b))
        .collect()
}

/// Ensemble outlier scores: trains `runs` autoencoders from independent
/// seeds and sums the per-row reconstruction errors (the paper's "variant
/// of ensemble training").
pub fn ensemble_scores(data: &Matrix, config: &TrainConfig, runs: usize) -> Vec<f64> {
    assert!(runs > 0, "need at least one run");
    let mut scores = vec![0.0; data.rows()];
    for run in 0..runs {
        let cfg = TrainConfig {
            seed: config.seed.wrapping_add(run as u64 * 0x9E37),
            ..config.clone()
        };
        let mlp = train_autoencoder(data, &cfg);
        for (acc, e) in scores.iter_mut().zip(reconstruction_errors(&mlp, data)) {
            *acc += e;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick config for tests: small net, few epochs.
    fn quick() -> TrainConfig {
        TrainConfig {
            hidden: vec![8, 2, 8],
            epochs: 120,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 7,
        }
    }

    /// Low-rank data: points near a 2-d subspace of R^10 plus tiny noise.
    fn low_rank_data(n: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        let b1: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let b2: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        Matrix::from_fn(n, 10, |i, j| {
            let _ = i;
            let a = ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5;
            let b = ((i * 53 + 5) % 23) as f64 / 23.0 - 0.5;
            a * b1[j] + b * b2[j]
        })
    }

    #[test]
    fn training_reduces_loss() {
        let data = low_rank_data(40, 1);
        let cfg = quick();
        // Untrained network baseline.
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let untrained = Mlp::new(&[10, 8, 2, 8, 10], &mut rng);
        let before: f64 = reconstruction_errors(&untrained, &data).iter().sum();
        let trained = train_autoencoder(&data, &cfg);
        let after: f64 = reconstruction_errors(&trained, &data).iter().sum();
        assert!(after < before * 0.5, "before {before}, after {after}");
    }

    #[test]
    fn outlier_scores_higher_for_off_manifold_point() {
        let mut data = low_rank_data(60, 2);
        // Replace the last row with an off-manifold outlier.
        let last = data.rows() - 1;
        for j in 0..data.cols() {
            data[(last, j)] = if j % 2 == 0 { 3.0 } else { -3.0 };
        }
        let trained = train_autoencoder(&data, &quick());
        let errors = reconstruction_errors(&trained, &data);
        let inlier_mean: f64 = errors[..last].iter().sum::<f64>() / (errors.len() - 1) as f64;
        assert!(
            errors[last] > inlier_mean * 3.0,
            "outlier {} vs inlier mean {}",
            errors[last],
            inlier_mean
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = low_rank_data(20, 3);
        let cfg = TrainConfig {
            epochs: 5,
            ..quick()
        };
        let a = train_autoencoder(&data, &cfg);
        let b = train_autoencoder(&data, &cfg);
        assert_eq!(a.parameters(), b.parameters());
    }

    #[test]
    fn ensemble_accumulates_runs() {
        let data = low_rank_data(15, 4);
        let cfg = TrainConfig {
            epochs: 3,
            ..quick()
        };
        let one = ensemble_scores(&data, &cfg, 1);
        let three = ensemble_scores(&data, &cfg, 3);
        assert_eq!(one.len(), data.rows());
        // Summed scores grow with runs.
        let s1: f64 = one.iter().sum();
        let s3: f64 = three.iter().sum();
        assert!(s3 > s1);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        train_autoencoder(&Matrix::zeros(0, 5), &quick());
    }
}
