//! Property-based tests for the linear-algebra substrate.

use cs_linalg::pca::ExplainedVariance;
use cs_linalg::svd::symmetric_eigen;
use cs_linalg::{Matrix, Pca, Svd};
use proptest::prelude::*;

/// Strategy: a random matrix with bounded entries.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a random square matrix.
fn square_matrix_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-10.0..10.0f64, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svd_reconstructs_any_matrix(a in matrix_strategy(10, 10)) {
        let svd = Svd::compute(&a).unwrap();
        let diff = svd.reconstruct().max_abs_diff(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(diff < 1e-7 * scale, "reconstruction error {diff}");
    }

    #[test]
    fn gram_and_jacobi_agree(a in matrix_strategy(8, 8)) {
        let j = Svd::jacobi(&a).unwrap();
        let g = Svd::gram(&a).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        for (x, y) in j.singular_values.iter().zip(g.singular_values.iter()) {
            prop_assert!((x - y).abs() < 1e-6 * scale, "jacobi {x} vs gram {y}");
        }
    }

    #[test]
    fn singular_values_nonnegative_descending(a in matrix_strategy(9, 9)) {
        let svd = Svd::compute(&a).unwrap();
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(svd.singular_values.iter().all(|&s| s >= -1e-12));
    }

    #[test]
    fn frobenius_identity(a in matrix_strategy(8, 12)) {
        let svd = Svd::compute(&a).unwrap();
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let f2 = a.frobenius_norm().powi(2);
        prop_assert!((sum_sq - f2).abs() < 1e-7 * f2.max(1.0));
    }

    #[test]
    fn pca_error_monotone_in_components(a in matrix_strategy(12, 8)) {
        let full = Pca::fit_full(&a).unwrap();
        let mut last = f64::INFINITY;
        for n in 1..=full.components().rows() {
            let model = full.with_components(n);
            let err: f64 = model.reconstruction_errors(&a).iter().sum();
            prop_assert!(err <= last + 1e-9, "error rose at n={n}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    fn pca_full_variance_is_lossless(a in matrix_strategy(10, 6)) {
        let pca = Pca::fit(&a, ExplainedVariance::new(1.0).unwrap()).unwrap();
        let errs = pca.reconstruction_errors(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(errs.iter().all(|&e| e < 1e-10 * scale));
    }

    #[test]
    fn cev_rule_monotone_in_v(ratios in proptest::collection::vec(0.001..1.0f64, 1..20)) {
        let total: f64 = ratios.iter().sum();
        let normalized: Vec<f64> = ratios.iter().map(|r| r / total).collect();
        let mut last = 0usize;
        for i in 1..=10 {
            let v = i as f64 / 10.0;
            let n = Pca::components_for_variance(&normalized, v);
            prop_assert!(n >= last);
            prop_assert!(n >= 1 && n <= normalized.len());
            last = n;
        }
    }

    #[test]
    fn symmetric_eigen_satisfies_definition(a in square_matrix_strategy(7)) {
        // Symmetrize.
        let s = a.add(&a.transpose()).scale(0.5);
        let (vals, vecs) = symmetric_eigen(&s);
        let scale = s.frobenius_norm().max(1.0);
        for slot in 0..s.rows() {
            let v: Vec<f64> = (0..s.rows()).map(|i| vecs[(i, slot)]).collect();
            let av = s.matvec(&v);
            for i in 0..s.rows() {
                prop_assert!(
                    (av[i] - vals[slot] * v[i]).abs() < 1e-6 * scale,
                    "eigenpair {slot} violated at {i}"
                );
            }
        }
    }

    #[test]
    fn transpose_matmul_consistency(a in matrix_strategy(6, 9), bseed in 0u64..1000) {
        let mut rng = cs_linalg::Xoshiro256::seed_from(bseed);
        let b = Matrix::from_fn(4, a.cols(), |_, _| rng.next_gaussian());
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        prop_assert!(fast.max_abs_diff(&slow) < 1e-10);
    }

    #[test]
    fn zscore_is_shift_invariant(a in matrix_strategy(8, 5), shift in -5.0..5.0f64) {
        let scores = cs_linalg::stats::row_zscore_magnitude(&a);
        let shifted = a.map(|x| x + shift);
        let scores2 = cs_linalg::stats::row_zscore_magnitude(&shifted);
        for (x, y) in scores.iter().zip(scores2.iter()) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }
}
