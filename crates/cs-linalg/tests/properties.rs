//! Property-based tests for the linear-algebra substrate.
//!
//! Driven by the in-workspace [`cs_linalg::check`] harness (hermetic
//! replacement for proptest); the `proptest-tests` feature multiplies
//! case counts for deep fuzzing runs.

use cs_linalg::check::run;
use cs_linalg::pca::ExplainedVariance;
use cs_linalg::svd::symmetric_eigen;
use cs_linalg::{Matrix, Pca, Svd};

const CASES: usize = 48;

#[test]
fn svd_reconstructs_any_matrix() {
    run("svd_reconstructs_any_matrix", CASES, |g| {
        let a = g.matrix(10, 10, -10.0, 10.0);
        let svd = Svd::compute(&a).unwrap();
        let diff = svd.reconstruct().max_abs_diff(&a);
        let scale = a.frobenius_norm().max(1.0);
        assert!(diff < 1e-7 * scale, "reconstruction error {diff}");
    });
}

#[test]
fn gram_and_jacobi_agree() {
    run("gram_and_jacobi_agree", CASES, |g| {
        let a = g.matrix(8, 8, -10.0, 10.0);
        let j = Svd::jacobi(&a).unwrap();
        let gr = Svd::gram(&a).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        for (x, y) in j.singular_values.iter().zip(gr.singular_values.iter()) {
            assert!((x - y).abs() < 1e-6 * scale, "jacobi {x} vs gram {y}");
        }
    });
}

#[test]
fn singular_values_nonnegative_descending() {
    run("singular_values_nonnegative_descending", CASES, |g| {
        let a = g.matrix(9, 9, -10.0, 10.0);
        let svd = Svd::compute(&a).unwrap();
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= -1e-12));
    });
}

#[test]
fn frobenius_identity() {
    run("frobenius_identity", CASES, |g| {
        let a = g.matrix(8, 12, -10.0, 10.0);
        let svd = Svd::compute(&a).unwrap();
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let f2 = a.frobenius_norm().powi(2);
        assert!((sum_sq - f2).abs() < 1e-7 * f2.max(1.0));
    });
}

#[test]
fn pca_error_monotone_in_components() {
    run("pca_error_monotone_in_components", CASES, |g| {
        let a = g.matrix(12, 8, -10.0, 10.0);
        let full = Pca::fit_full(&a).unwrap();
        let mut last = f64::INFINITY;
        for n in 1..=full.components().rows() {
            let model = full.with_components(n);
            let err: f64 = model.reconstruction_errors(&a).iter().sum();
            assert!(err <= last + 1e-9, "error rose at n={n}: {err} > {last}");
            last = err;
        }
    });
}

#[test]
fn pca_full_variance_is_lossless() {
    run("pca_full_variance_is_lossless", CASES, |g| {
        let a = g.matrix(10, 6, -10.0, 10.0);
        let pca = Pca::fit(&a, ExplainedVariance::new(1.0).unwrap()).unwrap();
        let errs = pca.reconstruction_errors(&a);
        let scale = a.frobenius_norm().max(1.0);
        assert!(errs.iter().all(|&e| e < 1e-10 * scale));
    });
}

#[test]
fn cev_rule_monotone_in_v() {
    run("cev_rule_monotone_in_v", CASES, |g| {
        let len = g.usize_in(1, 19);
        let ratios = g.vec_f64(len, 0.001, 1.0);
        let total: f64 = ratios.iter().sum();
        let normalized: Vec<f64> = ratios.iter().map(|r| r / total).collect();
        let mut last = 0usize;
        for i in 1..=10 {
            let v = i as f64 / 10.0;
            let n = Pca::components_for_variance(&normalized, v);
            assert!(n >= last);
            assert!(n >= 1 && n <= normalized.len());
            last = n;
        }
    });
}

#[test]
fn symmetric_eigen_satisfies_definition() {
    run("symmetric_eigen_satisfies_definition", CASES, |g| {
        let a = g.square_matrix(7, -10.0, 10.0);
        // Symmetrize.
        let s = a.add(&a.transpose()).scale(0.5);
        let (vals, vecs) = symmetric_eigen(&s);
        let scale = s.frobenius_norm().max(1.0);
        for slot in 0..s.rows() {
            let v: Vec<f64> = (0..s.rows()).map(|i| vecs[(i, slot)]).collect();
            let av = s.matvec(&v);
            for i in 0..s.rows() {
                assert!(
                    (av[i] - vals[slot] * v[i]).abs() < 1e-6 * scale,
                    "eigenpair {slot} violated at {i}"
                );
            }
        }
    });
}

#[test]
fn transpose_matmul_consistency() {
    run("transpose_matmul_consistency", CASES, |g| {
        let a = g.matrix(6, 9, -10.0, 10.0);
        let bseed = g.u64_below(1000);
        let mut rng = cs_linalg::Xoshiro256::seed_from(bseed);
        let b = Matrix::from_fn(4, a.cols(), |_, _| rng.next_gaussian());
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-10);
    });
}

#[test]
fn zscore_is_shift_invariant() {
    run("zscore_is_shift_invariant", CASES, |g| {
        let a = g.matrix(8, 5, -10.0, 10.0);
        let shift = g.f64_in(-5.0, 5.0);
        let scores = cs_linalg::stats::row_zscore_magnitude(&a);
        let shifted = a.map(|x| x + shift);
        let scores2 = cs_linalg::stats::row_zscore_magnitude(&shifted);
        for (x, y) in scores.iter().zip(scores2.iter()) {
            assert!((x - y).abs() < 1e-8);
        }
    });
}
