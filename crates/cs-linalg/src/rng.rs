//! Small, seeded pseudo-random number generators.
//!
//! The workspace needs reproducible randomness in three places: Gaussian
//! concept vectors in the signature encoder, weight initialization in the
//! neural autoencoder, and k-means/LSH initialization in the matchers.
//! `rand` is available, but a self-contained generator keeps the determinism
//! guarantees (bit-exact across platforms and `rand` versions) that the
//! experiment harness relies on.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Used both directly and to seed [`Xoshiro256`]. Passes BigCrush when used
/// as a stream; more than adequate for initialization duties here.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for floating-point streams.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second Gaussian from the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed through SplitMix64 as the
    /// xoshiro authors recommend.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            gauss_spare: None,
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Uses rejection sampling to avoid modulo
    /// bias; `n` must be non-zero.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0) is meaningless");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Standard-normal sample via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_gaussian();
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_uniform_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn xoshiro_uniform_mean_near_half() {
        let mut rng = Xoshiro256::seed_from(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::seed_from(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn next_below_covers_range_without_bias_catastrophe() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(1).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Xoshiro256::seed_from(13);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn sample_indices_full_range_is_permutation() {
        let mut rng = Xoshiro256::seed_from(17);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }
}
