//! Singular value decomposition.
//!
//! Algorithm 1 of the paper computes a *full SVD* of the mean-centered
//! signature matrix of each local schema. Signature matrices here are
//! short-and-wide (`n` elements × 768 embedding dimensions, with `n` from a
//! handful up to a few hundred), so two implementations are provided:
//!
//! - [`Svd::jacobi`] — one-sided (Hestenes) Jacobi rotation SVD. Simple,
//!   robust, accurate; the reference implementation.
//! - [`Svd::gram`] — the economy path: eigendecompose the smaller Gram
//!   matrix (`A·Aᵀ` when `n ≤ d`, `Aᵀ·A` otherwise) with a cyclic
//!   symmetric Jacobi solver and recover the other factor. Much faster for
//!   the `n ≪ d` signature case.
//!
//! [`Svd::compute`] dispatches to the faster path; a property test in this
//! module (and an ablation bench in `cs-bench`) pins the two paths to agree.

use crate::matrix::dot;
use crate::vecops::total_cmp_f64;
use crate::Matrix;

/// Thin SVD factorization `A = U · diag(σ) · Vᵀ` with `r = min(rows, cols)`
/// retained components, singular values sorted in descending order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `rows × r` (columns are `u_i`).
    pub u: Matrix,
    /// Singular values `σ_1 ≥ σ_2 ≥ … ≥ σ_r ≥ 0`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors transposed, `r × cols` (rows are `v_iᵀ`).
    pub vt: Matrix,
}

/// Errors reported by the SVD routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvdError {
    /// The input matrix has zero rows or zero columns.
    EmptyMatrix,
    /// The input contains NaN or infinite entries.
    NonFiniteInput,
}

impl std::fmt::Display for SvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvdError::EmptyMatrix => write!(f, "cannot decompose an empty matrix"),
            SvdError::NonFiniteInput => write!(f, "matrix contains NaN or infinite entries"),
        }
    }
}

impl std::error::Error for SvdError {}

impl Svd {
    /// Computes the thin SVD, dispatching to the cheaper algorithm for the
    /// matrix shape: Gram path when one side is much smaller, one-sided
    /// Jacobi otherwise.
    pub fn compute(a: &Matrix) -> Result<Svd, SvdError> {
        validate(a)?;
        let (n, d) = a.shape();
        // The Gram path solves a min(n,d)² eigenproblem; one-sided Jacobi
        // rotates over the full `d` columns. Prefer Gram whenever the
        // aspect ratio is lopsided — which is always true for signature
        // matrices (n ≤ a few hundred, d = 768).
        if n * 2 < d || d * 2 < n {
            Self::gram(a)
        } else {
            Self::jacobi(a)
        }
    }

    /// One-sided (Hestenes) Jacobi SVD: orthogonalizes the columns of `A`
    /// by plane rotations accumulated into `V`.
    pub fn jacobi(a: &Matrix) -> Result<Svd, SvdError> {
        validate(a)?;
        let (n, d) = a.shape();
        // Work on the columns of A: w_j ∈ R^n. Store column-major for
        // cache-friendly column rotations.
        let mut w: Vec<Vec<f64>> = (0..d).map(|j| a.col(j)).collect();
        let mut v: Vec<Vec<f64>> = (0..d)
            .map(|j| {
                let mut e = vec![0.0; d];
                e[j] = 1.0;
                e
            })
            .collect();

        let scale = a.frobenius_norm();
        let tol = if scale > 0.0 {
            1e-14 * scale * scale
        } else {
            0.0
        };
        let max_sweeps = 60;
        for _ in 0..max_sweeps {
            let mut off = 0.0f64;
            for p in 0..d {
                for q in (p + 1)..d {
                    let alpha = dot(&w[p], &w[p]);
                    let beta = dot(&w[q], &w[q]);
                    let gamma = dot(&w[p], &w[q]);
                    off = off.max(gamma.abs());
                    if gamma.abs() <= tol || alpha == 0.0 || beta == 0.0 {
                        continue;
                    }
                    // Rotation zeroing the (p,q) entry of WᵀW.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    rotate_pair(&mut w, p, q, c, s);
                    rotate_pair(&mut v, p, q, c, s);
                }
            }
            if off <= tol.max(1e-300) {
                break;
            }
        }

        // Singular values are the column norms; sort descending.
        let mut order: Vec<usize> = (0..d).collect();
        let norms: Vec<f64> = w.iter().map(|col| dot(col, col).sqrt()).collect();
        order.sort_by(|&i, &j| total_cmp_f64(&norms[j], &norms[i]));

        let r = n.min(d);
        let mut u = Matrix::zeros(n, r);
        let mut vt = Matrix::zeros(r, d);
        let mut sv = Vec::with_capacity(r);
        for (slot, &j) in order.iter().take(r).enumerate() {
            let sigma = norms[j];
            sv.push(sigma);
            if sigma > 0.0 {
                for i in 0..n {
                    u[(i, slot)] = w[j][i] / sigma;
                }
            }
            for k in 0..d {
                vt[(slot, k)] = v[j][k];
            }
        }
        Ok(Svd {
            u,
            singular_values: sv,
            vt,
        })
    }

    /// Gram-matrix economy SVD: eigendecomposes the smaller of `A·Aᵀ` and
    /// `Aᵀ·A`, then recovers the other factor as `Aᵀu/σ` (or `Av/σ`).
    pub fn gram(a: &Matrix) -> Result<Svd, SvdError> {
        validate(a)?;
        let (n, d) = a.shape();
        let r = n.min(d);
        if n <= d {
            // G = A·Aᵀ (n×n); G = U·Σ²·Uᵀ — the symmetry-aware tiled
            // kernel halves the flops and is bit-identical.
            let g = crate::kernels::gram_rows(a, crate::kernels::TILE);
            let (eigvals, eigvecs) = symmetric_eigen(&g);
            let mut u = Matrix::zeros(n, r);
            let mut vt = Matrix::zeros(r, d);
            let mut sv = Vec::with_capacity(r);
            for slot in 0..r {
                let lambda = eigvals[slot].max(0.0);
                let sigma = lambda.sqrt();
                sv.push(sigma);
                for i in 0..n {
                    u[(i, slot)] = eigvecs[(i, slot)];
                }
                if sigma > crate::EPS {
                    // v = Aᵀ·u / σ.
                    let u_col: Vec<f64> = (0..n).map(|i| eigvecs[(i, slot)]).collect();
                    for k in 0..d {
                        let mut acc = 0.0;
                        for i in 0..n {
                            acc += a[(i, k)] * u_col[i];
                        }
                        vt[(slot, k)] = acc / sigma;
                    }
                }
            }
            Ok(Svd {
                u,
                singular_values: sv,
                vt,
            })
        } else {
            // G = Aᵀ·A (d×d); G = V·Σ²·Vᵀ.
            let at = a.transpose();
            let g = crate::kernels::gram_rows(&at, crate::kernels::TILE);
            let (eigvals, eigvecs) = symmetric_eigen(&g);
            let mut u = Matrix::zeros(n, r);
            let mut vt = Matrix::zeros(r, d);
            let mut sv = Vec::with_capacity(r);
            for slot in 0..r {
                let lambda = eigvals[slot].max(0.0);
                let sigma = lambda.sqrt();
                sv.push(sigma);
                let v_col: Vec<f64> = (0..d).map(|k| eigvecs[(k, slot)]).collect();
                for k in 0..d {
                    vt[(slot, k)] = v_col[k];
                }
                if sigma > crate::EPS {
                    // u = A·v / σ.
                    for i in 0..n {
                        u[(i, slot)] = dot(a.row(i), &v_col) / sigma;
                    }
                }
            }
            Ok(Svd {
                u,
                singular_values: sv,
                vt,
            })
        }
    }

    /// Reconstructs `U · diag(σ) · Vᵀ`. Useful for testing the factorization.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.singular_values.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..r {
                us[(i, j)] *= self.singular_values[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// Number of singular values above `tol · σ_max` — the numerical rank.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max && s > 0.0)
            .count()
    }
}

fn validate(a: &Matrix) -> Result<(), SvdError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SvdError::EmptyMatrix);
    }
    if a.has_non_finite() {
        return Err(SvdError::NonFiniteInput);
    }
    Ok(())
}

/// Applies the plane rotation `(cols[p], cols[q]) ← (c·p − s·q, s·p + c·q)`.
fn rotate_pair(cols: &mut [Vec<f64>], p: usize, q: usize, c: f64, s: f64) {
    debug_assert_ne!(p, q);
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    let (head, tail) = cols.split_at_mut(hi);
    let (a, b) = if p < q {
        (&mut head[lo], &mut tail[0])
    } else {
        (&mut tail[0], &mut head[lo])
    };
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let xp = c * *x - s * *y;
        let yq = s * *x + c * *y;
        *x = xp;
        *y = yq;
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and eigenvectors as the corresponding *columns* of the returned matrix.
pub fn symmetric_eigen(m: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(m.rows(), m.cols(), "symmetric_eigen needs a square matrix");
    debug_assert!(
        !m.has_non_finite(),
        "symmetric_eigen: input contains NaN/inf — the Jacobi sweeps would silently spin"
    );
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    let scale: f64 = a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
    let tol = if scale > 0.0 { 1e-14 * scale } else { 0.0 };

    for _ in 0..100 {
        // Largest off-diagonal magnitude this sweep.
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(a[(p, q)].abs());
            }
        }
        if off <= tol.max(1e-300) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // A ← JᵀAJ, applied to rows and columns p, q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&i, &j| total_cmp_f64(&diag[j], &diag[i]));
    let eigvals: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigvecs = Matrix::zeros(n, n);
    for (slot, &j) in order.iter().enumerate() {
        for i in 0..n {
            eigvecs[(i, slot)] = v[(i, j)];
        }
    }
    (eigvals, eigvecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    fn assert_reconstructs(a: &Matrix, svd: &Svd, tol: f64) {
        let diff = svd.reconstruct().max_abs_diff(a);
        assert!(diff < tol, "reconstruction error {diff}");
    }

    fn assert_orthonormal_cols(m: &Matrix, tol: f64) {
        let gram = m.transpose().matmul(m);
        for i in 0..gram.rows() {
            for j in 0..gram.cols() {
                let expected = if i == j { 1.0 } else { 0.0 };
                let got = gram[(i, j)];
                // Columns paired with zero singular values may be zero.
                if i == j && got.abs() < tol {
                    continue;
                }
                assert!(
                    (got - expected).abs() < tol,
                    "gram[{i},{j}] = {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0]]);
        let svd = Svd::jacobi(&a).unwrap();
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        assert_reconstructs(&a, &svd, 1e-10);
    }

    #[test]
    fn jacobi_known_rank_one() {
        // Outer product: rank 1 with σ = |u||v|.
        let a = Matrix::from_rows(&[vec![2.0, 4.0], vec![1.0, 2.0]]);
        let svd = Svd::jacobi(&a).unwrap();
        assert!(svd.singular_values[1].abs() < 1e-10);
        assert_eq!(svd.rank(1e-9), 1);
        assert_reconstructs(&a, &svd, 1e-10);
    }

    #[test]
    fn jacobi_random_square() {
        let a = random_matrix(12, 12, 1);
        let svd = Svd::jacobi(&a).unwrap();
        assert_reconstructs(&a, &svd, 1e-8);
        assert_orthonormal_cols(&svd.u, 1e-8);
        assert_orthonormal_cols(&svd.vt.transpose(), 1e-8);
    }

    #[test]
    fn gram_wide_matrix() {
        let a = random_matrix(6, 40, 2);
        let svd = Svd::gram(&a).unwrap();
        assert_eq!(svd.u.shape(), (6, 6));
        assert_eq!(svd.vt.shape(), (6, 40));
        assert_reconstructs(&a, &svd, 1e-8);
        assert_orthonormal_cols(&svd.u, 1e-8);
        assert_orthonormal_cols(&svd.vt.transpose(), 1e-8);
    }

    #[test]
    fn gram_tall_matrix() {
        let a = random_matrix(40, 6, 3);
        let svd = Svd::gram(&a).unwrap();
        assert_eq!(svd.u.shape(), (40, 6));
        assert_eq!(svd.vt.shape(), (6, 6));
        assert_reconstructs(&a, &svd, 1e-8);
    }

    #[test]
    fn gram_and_jacobi_agree_on_singular_values() {
        let a = random_matrix(8, 20, 4);
        let j = Svd::jacobi(&a).unwrap();
        let g = Svd::gram(&a).unwrap();
        for (x, y) in j.singular_values.iter().zip(g.singular_values.iter()) {
            assert!((x - y).abs() < 1e-7, "jacobi {x} vs gram {y}");
        }
    }

    #[test]
    fn compute_dispatches_and_reconstructs() {
        for (rows, cols, seed) in [(5, 30, 5), (30, 5, 6), (10, 10, 7)] {
            let a = random_matrix(rows, cols, seed);
            let svd = Svd::compute(&a).unwrap();
            assert_reconstructs(&a, &svd, 1e-8);
        }
    }

    #[test]
    fn singular_values_sorted_descending() {
        let a = random_matrix(9, 15, 8);
        let svd = Svd::compute(&a).unwrap();
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(matches!(
            Svd::compute(&Matrix::zeros(0, 3)),
            Err(SvdError::EmptyMatrix)
        ));
        assert!(matches!(
            Svd::compute(&Matrix::zeros(3, 0)),
            Err(SvdError::EmptyMatrix)
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(Svd::compute(&a), Err(SvdError::NonFiniteInput)));
    }

    #[test]
    fn zero_matrix_has_zero_singular_values() {
        let a = Matrix::zeros(3, 5);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.singular_values.iter().all(|&s| s.abs() < 1e-12));
        assert_eq!(svd.rank(1e-9), 0);
        assert_reconstructs(&a, &svd, 1e-12);
    }

    #[test]
    fn single_row_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-10);
        assert_reconstructs(&a, &svd, 1e-10);
    }

    #[test]
    fn symmetric_eigen_known_eigenvalues() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = symmetric_eigen(&m);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Check A·v = λ·v for the first eigenvector.
        let v0: Vec<f64> = (0..2).map(|i| vecs[(i, 0)]).collect();
        let av = m.matvec(&v0);
        for i in 0..2 {
            assert!((av[i] - vals[0] * v0[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn frobenius_preserved_by_singular_values() {
        // ||A||_F² = Σ σ_i².
        let a = random_matrix(7, 13, 9);
        let svd = Svd::compute(&a).unwrap();
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let frob = a.frobenius_norm();
        assert!((sum_sq - frob * frob).abs() < 1e-8 * frob * frob);
    }
}
