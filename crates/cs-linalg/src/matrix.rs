//! A row-major dense `f64` matrix.
//!
//! This is the one numeric container shared by the whole workspace:
//! signature sets are `n × 768` matrices (one row per table/attribute
//! signature), PCA component sets are `k × 768`, autoencoder weights are
//! `in × out`. The API is deliberately small and panics on shape errors —
//! shape mismatches in this workspace are programming bugs, not recoverable
//! conditions.

use std::fmt;

/// Row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}×{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows: {} vs {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// Cache-friendly i-k-j loop ordering over the row-major buffers; this
    /// is the workspace's hot kernel (PCA encode/decode, autoencoder
    /// forward/backward). Large products dispatch to the cache-tiled
    /// kernel of [`crate::kernels`], which is bit-identical to this loop.
    ///
    /// # Panics
    /// If `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        use crate::kernels::{matmul_blocked, BLOCK_DISPATCH_MIN, TILE};
        if self.rows.max(self.cols).max(other.cols) >= BLOCK_DISPATCH_MIN {
            return matmul_blocked(self, other, TILE);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose. Large
    /// products dispatch to the cache-tiled kernel of [`crate::kernels`],
    /// which computes the same full-length dot per element.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transposed shape mismatch: {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        use crate::kernels::{matmul_transposed_blocked, BLOCK_DISPATCH_MIN, TILE};
        if self.rows.max(self.cols).max(other.rows) >= BLOCK_DISPATCH_MIN {
            return matmul_transposed_blocked(self, other, TILE);
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                out.data[i * other.rows + j] = dot(a_row, b_row);
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise sum with another matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise combination of two equally shaped matrices.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Subtracts a row vector from every row (e.g. projecting signatures
    /// onto their mean, Algorithm 1 line 4).
    pub fn sub_row_vector(&self, v: &[f64]) -> Matrix {
        assert_eq!(self.cols, v.len(), "row-vector length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (x, &m) in out.row_mut(i).iter_mut().zip(v.iter()) {
                *x -= m;
            }
        }
        out
    }

    /// Adds a row vector to every row (reverse of [`Matrix::sub_row_vector`]).
    pub fn add_row_vector(&self, v: &[f64]) -> Matrix {
        assert_eq!(self.cols, v.len(), "row-vector length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (x, &m) in out.row_mut(i).iter_mut().zip(v.iter()) {
                *x += m;
            }
        }
        out
    }

    /// Returns the sub-matrix consisting of the given rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks two matrices vertically.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        if self.rows == 0 {
            return other.clone();
        }
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        dot(&self.data, &self.data).sqrt()
    }

    /// Largest absolute element difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// `(row, col)` of the first NaN/infinite element in row-major scan
    /// order, if any — lets callers report *which* signature is poisoned.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        self.data
            .iter()
            .position(|x| !x.is_finite())
            .map(|i| (i / self.cols, i % self.cols))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{ellipsis}]", cells.join(", "))?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.matmul(&i), i);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample(); // 2×3
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]); // 3×2
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn matmul_transposed_matches_explicit() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![1.0, 0.5, -1.0], vec![2.0, -2.0, 0.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        sample().matmul(&sample());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, -1.0, 2.0];
        assert_eq!(a.matvec(&v), vec![5.0, 11.0]);
    }

    #[test]
    fn row_vector_ops_roundtrip() {
        let m = sample();
        let v = vec![1.0, 1.0, 1.0];
        let shifted = m.sub_row_vector(&v).add_row_vector(&v);
        assert!(shifted.max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = sample();
        let top = m.select_rows(&[0]);
        let bottom = m.select_rows(&[1]);
        assert_eq!(top.vstack(&bottom), m);
        // Reordering works too.
        let swapped = m.select_rows(&[1, 0]);
        assert_eq!(swapped.row(0), m.row(1));
    }

    #[test]
    fn vstack_with_empty() {
        let m = sample();
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.vstack(&m), m);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn map_and_zip() {
        let m = sample();
        assert_eq!(m.map(|x| x * 2.0), m.scale(2.0));
        assert_eq!(m.add(&m), m.scale(2.0));
        assert!(m.sub(&m).frobenius_norm() < 1e-15);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn first_non_finite_locates_offender() {
        let mut m = sample();
        assert_eq!(m.first_non_finite(), None);
        m[(1, 2)] = f64::INFINITY;
        assert_eq!(m.first_non_finite(), Some((1, 2)));
        m[(0, 1)] = f64::NAN;
        assert_eq!(m.first_non_finite(), Some((0, 1)));
        assert_eq!(Matrix::zeros(0, 4).first_non_finite(), None);
    }

    #[test]
    fn col_extraction() {
        let m = sample();
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }
}
