//! Cache-tiled (blocked) matrix kernels.
//!
//! The per-schema SVD/PCA hot path multiplies short-and-wide signature
//! matrices (`n × 768`); at those widths the naive loops stream every
//! operand from memory once per output tile. These kernels block the
//! index space into [`TILE`]-sized squares so each operand tile is reused
//! from cache while it is hot.
//!
//! # Bit-identity contract (DESIGN.md §8)
//!
//! Every kernel here produces **bit-identical** output to its naive
//! counterpart in [`crate::matrix`], on every shape — aligned or ragged:
//!
//! - [`matmul_blocked`] keeps the naive i-k-j accumulation order: for a
//!   fixed output element, contributions are added in ascending `k`
//!   exactly as the un-blocked loop does (the `k`-tile loop is outer to
//!   the `j`-tile loop and tiles are visited in ascending order), and the
//!   `a == 0.0` skip is preserved so a `-0.0` output is never flipped to
//!   `+0.0` by adding `0.0 * b`.
//! - [`matmul_transposed_blocked`] computes each output element as one
//!   full-length [`dot`] — the reduction is never split across tiles, so
//!   the element is the same floating-point expression as the naive path.
//! - [`gram_rows`] computes the upper triangle with the same full-length
//!   dots and mirrors it; `dot(x, y)` and `dot(y, x)` multiply the same
//!   pairs in the same order, so the mirror is exact, not approximate.
//!
//! The determinism property suite (`kernels::tests` and
//! `cs-core/tests/determinism.rs`) pins all three equivalences with exact
//! `==` comparisons.

use crate::matrix::dot;
use crate::Matrix;

/// Tile edge length, in elements. A 64×64 `f64` tile is 32 KiB — one
/// operand tile fits in a typical L1 data cache, and the three tiles a
/// blocked product touches at once fit comfortably in L2.
pub const TILE: usize = 64;

/// Dimension threshold above which [`Matrix::matmul`] and
/// [`Matrix::matmul_transposed`] dispatch to the blocked kernels. Below
/// it every operand already fits in L1 and the tile loop overhead is pure
/// loss.
pub const BLOCK_DISPATCH_MIN: usize = 128;

/// Blocked matrix product `a · b`, bit-identical to [`Matrix::matmul`].
///
/// # Panics
/// If `a.cols() != b.rows()` or `tile == 0`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (n, kd) = a.shape();
    let p = b.cols();
    let mut out = Matrix::zeros(n, p);
    let out_data = out.as_mut_slice();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i0 in (0..n).step_by(tile) {
        let i1 = (i0 + tile).min(n);
        // Ascending k-tiles, k ascending within each tile: for any fixed
        // output element the contributions are accumulated in exactly
        // the naive order.
        for k0 in (0..kd).step_by(tile) {
            let k1 = (k0 + tile).min(kd);
            for j0 in (0..p).step_by(tile) {
                let j1 = (j0 + tile).min(p);
                for i in i0..i1 {
                    let a_row = &a_data[i * kd..(i + 1) * kd];
                    let out_row = &mut out_data[i * p + j0..i * p + j1];
                    for k in k0..k1 {
                        let av = a_row[k];
                        if av == 0.0 {
                            continue; // same skip as the naive kernel
                        }
                        let b_row = &b_data[k * p + j0..k * p + j1];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Blocked `a · bᵀ`, bit-identical to [`Matrix::matmul_transposed`].
/// Tiling only reorders *which elements* are computed when; each element
/// is still one full-length dot product.
///
/// # Panics
/// If `a.cols() != b.cols()` or `tile == 0`.
pub fn matmul_transposed_blocked(a: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transposed shape mismatch: {:?} · {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let n = a.rows();
    let m = b.rows();
    let mut out = Matrix::zeros(n, m);
    let out_data = out.as_mut_slice();
    for i0 in (0..n).step_by(tile) {
        let i1 = (i0 + tile).min(n);
        for j0 in (0..m).step_by(tile) {
            let j1 = (j0 + tile).min(m);
            for i in i0..i1 {
                let a_row = a.row(i);
                for j in j0..j1 {
                    out_data[i * m + j] = dot(a_row, b.row(j));
                }
            }
        }
    }
    out
}

/// The Gram matrix of the rows of `a` — `a · aᵀ` — computed as the upper
/// triangle plus an exact mirror, bit-identical to
/// `a.matmul_transposed(a)` at roughly half the flops.
///
/// # Panics
/// If `tile == 0`.
pub fn gram_rows(a: &Matrix, tile: usize) -> Matrix {
    assert!(tile > 0, "tile must be positive");
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    let out_data = out.as_mut_slice();
    for i0 in (0..n).step_by(tile) {
        let i1 = (i0 + tile).min(n);
        for j0 in (i0..n).step_by(tile) {
            let j1 = (j0 + tile).min(n);
            for i in i0..i1 {
                let a_row = a.row(i);
                for j in j0.max(i)..j1 {
                    out_data[i * n + j] = dot(a_row, a.row(j));
                }
            }
        }
    }
    // Mirror the strict upper triangle. dot(x, y) multiplies the same
    // pairs in the same order as dot(y, x), so this is exact.
    for i in 1..n {
        for j in 0..i {
            out_data[i * n + j] = out_data[j * n + i];
        }
    }
    out
}

/// Product `a · b` specialized for a *narrow* right operand (few columns),
/// the shape of the truncated PCA solver's `G · Q` step where `Q` has
/// 32–128 columns against a Gram matrix of a few hundred rows.
///
/// Each column of `b` is gathered once into a contiguous buffer so every
/// output element is one full-length [`dot`] over two contiguous slices —
/// the same floating-point expression as `a.matmul_transposed(bᵀ)`, so the
/// result is bit-identical to [`Matrix::matmul`]-free reference
/// `dot(a.row(i), b.col(j))` order and deterministic everywhere.
///
/// # Panics
/// If `a.cols() != b.rows()`.
pub fn matmul_narrow(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_narrow shape mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let n = a.rows();
    let p = b.cols();
    let cols: Vec<Vec<f64>> = (0..p).map(|j| b.col(j)).collect();
    let mut out = Matrix::zeros(n, p);
    let out_data = out.as_mut_slice();
    for i in 0..n {
        let a_row = a.row(i);
        let out_row = &mut out_data[i * p..(i + 1) * p];
        for (o, col) in out_row.iter_mut().zip(cols.iter()) {
            *o = dot(a_row, col);
        }
    }
    out
}

/// Blocked matrix product accumulating in `f32`, returning `f64` output.
///
/// Operands are demoted to `f32` once up front and tiles accumulate in
/// single precision — roughly twice the effective cache capacity and SIMD
/// width of the `f64` kernels. The result is **deterministic** (fixed
/// accumulation order, no threading) but **not** bit-identical to the
/// `f64` kernels; relative error is bounded by the usual `f32` epsilon
/// times the reduction length. Use it only where the caller tolerates
/// ~1e-6 relative error — e.g. candidate scoring that is re-ranked
/// exactly downstream; the PCA solvers never call it.
///
/// # Panics
/// If `a.cols() != b.rows()` or `tile == 0`.
pub fn matmul_f32acc(a: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_f32acc shape mismatch: {:?} · {:?}",
        a.shape(),
        b.shape()
    );
    let (n, kd) = a.shape();
    let p = b.cols();
    // cs-lint: allow(no-lossy-cast-in-hot-path) -- f32-accumulator kernel: the demotion IS the contract (see doc comment)
    let a32: Vec<f32> = a.as_slice().iter().map(|&x| x as f32).collect();
    // cs-lint: allow(no-lossy-cast-in-hot-path) -- f32-accumulator kernel: the demotion IS the contract (see doc comment)
    let b32: Vec<f32> = b.as_slice().iter().map(|&x| x as f32).collect();
    let mut acc = vec![0.0f32; n * p];
    for i0 in (0..n).step_by(tile) {
        let i1 = (i0 + tile).min(n);
        for k0 in (0..kd).step_by(tile) {
            let k1 = (k0 + tile).min(kd);
            for j0 in (0..p).step_by(tile) {
                let j1 = (j0 + tile).min(p);
                for i in i0..i1 {
                    let a_row = &a32[i * kd..(i + 1) * kd];
                    let acc_row = &mut acc[i * p + j0..i * p + j1];
                    for k in k0..k1 {
                        let av = a_row[k];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b32[k * p + j0..k * p + j1];
                        for (o, &bv) in acc_row.iter_mut().zip(b_row.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
    let mut out = Matrix::zeros(n, p);
    for (o, &v) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
        *o = v as f64;
    }
    out
}

/// Multiplies a chain of matrices in the flop-optimal association order
/// (classic dynamic-programming matrix-chain ordering, ties broken toward
/// the lowest split index so the order — and therefore the floating-point
/// result — is deterministic for a given shape sequence).
///
/// The batched-small-matrix path: pipelines like `Qᵀ·(G·Q)` or projection
/// stacks multiply several small factors where association order changes
/// the flop count by integer factors. Each pairwise product goes through
/// [`Matrix::matmul`] (and its blocked dispatch), so determinism is
/// inherited.
///
/// # Panics
/// If the chain is empty or adjacent shapes are incompatible.
pub fn matmul_chain(ms: &[&Matrix]) -> Matrix {
    assert!(!ms.is_empty(), "matmul_chain needs at least one matrix");
    let n = ms.len();
    if n == 1 {
        return ms[0].clone();
    }
    for w in ms.windows(2) {
        assert_eq!(
            w[0].cols(),
            w[1].rows(),
            "matmul_chain shape mismatch: {:?} · {:?}",
            w[0].shape(),
            w[1].shape()
        );
    }
    // dims[i]..dims[i+1] is the shape of matrix i.
    let mut dims = Vec::with_capacity(n + 1);
    dims.push(ms[0].rows());
    for m in ms {
        dims.push(m.cols());
    }
    // cost[i][j] = minimal flops for the product of matrices i..=j;
    // split[i][j] = the k achieving it (lowest k on ties).
    let mut cost = vec![vec![0u128; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let mut best = u128::MAX;
            let mut best_k = i;
            for k in i..j {
                let c = cost[i][k]
                    + cost[k + 1][j]
                    + (dims[i] as u128) * (dims[k + 1] as u128) * (dims[j + 1] as u128);
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }
    fn multiply(ms: &[&Matrix], split: &[Vec<usize>], i: usize, j: usize) -> Matrix {
        if i == j {
            return ms[i].clone();
        }
        let k = split[i][j];
        let left = multiply(ms, split, i, k);
        let right = multiply(ms, split, k + 1, j);
        left.matmul(&right)
    }
    multiply(ms, &split, 0, n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::run;
    use crate::Xoshiro256;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        // The un-dispatched reference loops (mirrors Matrix::matmul
        // before blocking existed).
        let n = a.rows();
        let p = b.cols();
        let mut out = Matrix::zeros(n, p);
        for i in 0..n {
            let a_row = a.row(i);
            let out_row = &mut out.as_mut_slice()[i * p..(i + 1) * p];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.as_slice()[k * p..(k + 1) * p];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn naive_matmul_transposed(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                out[(i, j)] = dot(a.row(i), b.row(j));
            }
        }
        out
    }

    fn assert_bits_equal(x: &Matrix, y: &Matrix, what: &str) {
        assert_eq!(x.shape(), y.shape(), "{what}: shape");
        for (a, b) in x.as_slice().iter().zip(y.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
        }
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    #[test]
    fn blocked_matmul_bit_identical_on_aligned_tiles() {
        // Shapes that are exact multiples of the tile size.
        let a = random(8, 12, 1);
        let b = random(12, 4, 2);
        let got = matmul_blocked(&a, &b, 4);
        assert_bits_equal(&got, &naive_matmul(&a, &b), "aligned matmul");
    }

    #[test]
    fn blocked_matmul_bit_identical_on_ragged_tiles() {
        run("blocked_matmul_ragged", 48, |g| {
            let n = g.usize_in(1, 30);
            let kd = g.usize_in(1, 30);
            let p = g.usize_in(1, 30);
            let mut rng = Xoshiro256::seed_from(g.seed());
            let mut a = Matrix::from_fn(n, kd, |_, _| rng.next_gaussian());
            let b = Matrix::from_fn(kd, p, |_, _| rng.next_gaussian());
            // Sprinkle exact zeros so the skip path is exercised.
            if n * kd > 2 {
                let z = g.usize_in(0, n * kd - 1);
                a.as_mut_slice()[z] = 0.0;
            }
            let tile = g.usize_in(1, 9);
            let got = matmul_blocked(&a, &b, tile);
            assert_bits_equal(&got, &naive_matmul(&a, &b), "ragged matmul");
        });
    }

    #[test]
    fn blocked_matmul_transposed_bit_identical() {
        run("blocked_matmul_transposed", 48, |g| {
            let n = g.usize_in(1, 25);
            let m = g.usize_in(1, 25);
            let d = g.usize_in(1, 40);
            let mut rng = Xoshiro256::seed_from(g.seed() ^ 0xABCD);
            let a = Matrix::from_fn(n, d, |_, _| rng.next_gaussian());
            let b = Matrix::from_fn(m, d, |_, _| rng.next_gaussian());
            let tile = g.usize_in(1, 9);
            let got = matmul_transposed_blocked(&a, &b, tile);
            assert_bits_equal(&got, &naive_matmul_transposed(&a, &b), "matmul_transposed");
        });
    }

    #[test]
    fn gram_rows_bit_identical_to_self_product() {
        run("gram_rows", 48, |g| {
            let n = g.usize_in(1, 30);
            let d = g.usize_in(1, 40);
            let mut rng = Xoshiro256::seed_from(g.seed() ^ 0x5EED);
            let a = Matrix::from_fn(n, d, |_, _| rng.next_gaussian());
            let tile = g.usize_in(1, 9);
            let got = gram_rows(&a, tile);
            assert_bits_equal(&got, &naive_matmul_transposed(&a, &a), "gram_rows");
        });
    }

    #[test]
    fn gram_is_exactly_symmetric() {
        let a = random(37, 19, 7);
        let g = gram_rows(&a, TILE);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                assert_eq!(g[(i, j)].to_bits(), g[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn dispatch_thresholds_are_transparent() {
        // Shapes straddling BLOCK_DISPATCH_MIN: the public Matrix methods
        // must agree with the reference loops regardless of which kernel
        // they picked.
        for &(n, kd, p, seed) in &[
            (3usize, 150usize, 140usize, 11u64),
            (150, 3, 150, 12),
            (130, 130, 2, 13),
        ] {
            let a = random(n, kd, seed);
            let b = random(kd, p, seed + 100);
            assert_bits_equal(&a.matmul(&b), &naive_matmul(&a, &b), "matmul dispatch");
            let bt = random(p, kd, seed + 200);
            assert_bits_equal(
                &a.matmul_transposed(&bt),
                &naive_matmul_transposed(&a, &bt),
                "matmul_transposed dispatch",
            );
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul_blocked(&a, &b, TILE).shape(), (0, 3));
        let g = gram_rows(&Matrix::zeros(0, 4), TILE);
        assert_eq!(g.shape(), (0, 0));
        let one = Matrix::from_rows(&[vec![2.0]]);
        assert_eq!(matmul_blocked(&one, &one, TILE)[(0, 0)], 4.0);
        assert_eq!(gram_rows(&one, TILE)[(0, 0)], 4.0);
    }

    #[test]
    #[should_panic(expected = "tile must be positive")]
    fn zero_tile_rejected() {
        let a = Matrix::zeros(2, 2);
        matmul_blocked(&a, &a, 0);
    }

    #[test]
    fn narrow_matmul_bit_identical_to_dot_reference() {
        run("matmul_narrow", 48, |g| {
            let n = g.usize_in(1, 30);
            let kd = g.usize_in(1, 30);
            let p = g.usize_in(1, 8);
            let mut rng = Xoshiro256::seed_from(g.seed() ^ 0x7A11);
            let a = Matrix::from_fn(n, kd, |_, _| rng.next_gaussian());
            let b = Matrix::from_fn(kd, p, |_, _| rng.next_gaussian());
            let got = matmul_narrow(&a, &b);
            // Same expression: dot(row of a, column of b).
            let mut want = Matrix::zeros(n, p);
            for i in 0..n {
                for j in 0..p {
                    want[(i, j)] = dot(a.row(i), &b.col(j));
                }
            }
            assert_bits_equal(&got, &want, "matmul_narrow");
        });
    }

    #[test]
    fn f32acc_matmul_within_single_precision_error() {
        run("matmul_f32acc", 32, |g| {
            let n = g.usize_in(1, 20);
            let kd = g.usize_in(1, 60);
            let p = g.usize_in(1, 20);
            let mut rng = Xoshiro256::seed_from(g.seed() ^ 0xF32A);
            let a = Matrix::from_fn(n, kd, |_, _| rng.next_gaussian());
            let b = Matrix::from_fn(kd, p, |_, _| rng.next_gaussian());
            let tile = g.usize_in(1, 9);
            let got = matmul_f32acc(&a, &b, tile);
            let want = naive_matmul(&a, &b);
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                // f32 epsilon times reduction length, against the operand
                // scale (gaussian entries keep it O(√kd)).
                let bound = 1e-5 * (kd as f64) * (1.0 + y.abs());
                assert!((x - y).abs() <= bound, "{x} vs {y} (kd = {kd})");
            }
        });
    }

    #[test]
    fn f32acc_matmul_is_deterministic() {
        let a = random(33, 70, 21);
        let b = random(70, 17, 22);
        let x = matmul_f32acc(&a, &b, TILE);
        let y = matmul_f32acc(&a, &b, TILE);
        assert_bits_equal(&x, &y, "f32acc determinism");
    }

    #[test]
    fn chain_matches_pairwise_products() {
        // Shapes chosen so the optimal order differs from left-to-right:
        // (10×2)·(2×30)·(30×3) is cheapest as a·(b·c).
        let a = random(10, 2, 31);
        let b = random(2, 30, 32);
        let c = random(30, 3, 33);
        let got = matmul_chain(&[&a, &b, &c]);
        let want = a.matmul(&b.matmul(&c));
        assert_bits_equal(&got, &want, "chain optimal order");
        // Values also agree with the other association within fp noise.
        let alt = a.matmul(&b).matmul(&c);
        for (x, y) in got.as_slice().iter().zip(alt.as_slice()) {
            assert!((x - y).abs() <= 1e-10 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn chain_handles_short_chains() {
        let a = random(4, 5, 41);
        assert_bits_equal(&matmul_chain(&[&a]), &a, "chain of one");
        let b = random(5, 3, 42);
        assert_bits_equal(&matmul_chain(&[&a, &b]), &a.matmul(&b), "chain of two");
    }

    #[test]
    fn chain_is_deterministic_across_calls() {
        let a = random(6, 9, 51);
        let b = random(9, 2, 52);
        let c = random(2, 11, 53);
        let d = random(11, 4, 54);
        let x = matmul_chain(&[&a, &b, &c, &d]);
        let y = matmul_chain(&[&a, &b, &c, &d]);
        assert_bits_equal(&x, &y, "chain determinism");
    }

    #[test]
    #[should_panic(expected = "matmul_chain needs at least one matrix")]
    fn empty_chain_rejected() {
        matmul_chain(&[]);
    }
}
