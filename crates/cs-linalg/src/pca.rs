//! PCA encoder–decoder.
//!
//! This is the exact model of the paper's Algorithm 1 (lines 3–13): project
//! signatures onto their mean, take the full SVD, keep the smallest prefix
//! of principal components whose cumulative explained variance exceeds the
//! global parameter `v`, and encode/decode through those components. The
//! per-row reconstruction MSE is the outlier score used by both global
//! scoping and collaborative scoping.
//!
//! # Solver selection
//!
//! Fitting goes through one entry point, [`Pca::fit_with`], configured by a
//! [`PcaConfig`]: a fit *target* (full rank, explained variance, or an
//! explicit component count) plus a [`PcaSolver`] choosing the eigensolver
//! behind it. The legacy `fit` / `fit_full` / `fit_with_components` trio
//! survives as thin shims over `fit_with` under the [`PcaSolver::Auto`]
//! policy, which preserves their historical numerics bit-for-bit on small
//! inputs and only reroutes large variance-targeted fits to the truncated
//! solver (see DESIGN.md §11 for the heuristic and determinism contract).

use crate::stats::column_mean;
use crate::vecops::mse;
use crate::{Matrix, Svd, SvdError, Xoshiro256};

/// Validated explained-variance parameter `v ∈ (0, 1]`.
///
/// The paper treats `v` as the single *global* knob shared by all local
/// models; `v = 1` keeps every component (perfect reconstruction of the
/// training set), small `v` keeps almost none.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainedVariance(f64);

impl ExplainedVariance {
    /// Creates a validated explained-variance value.
    ///
    /// # Errors
    /// Returns `None` unless `0 < v ≤ 1` and `v` is finite.
    pub fn new(v: f64) -> Option<Self> {
        (v.is_finite() && v > 0.0 && v <= 1.0).then_some(Self(v))
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// The eigensolver backing a [`Pca::fit_with`] call.
///
/// Every solver honors the same determinism contract: for a fixed input,
/// config, and seed the result is bit-identical across runs, platforms and
/// worker counts — none of them parallelize or depend on ambient state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcaSolver {
    /// Choose by shape and target: the exact [`Svd::compute`] dispatch
    /// (preserving the historical `fit*` numerics bit-for-bit) unless the
    /// fit targets an explained variance `v < 1` on an input whose Gram
    /// side has at least [`TRUNCATED_AUTO_MIN`] rows, where the truncated
    /// solver wins by an order of magnitude.
    Auto,
    /// One-sided (Hestenes) Jacobi over all `d` columns ([`Svd::jacobi`]) —
    /// the reference path, exact but slowest for `n ≪ d`.
    FullSvd,
    /// The Gram economy path ([`Svd::gram`]): eigendecompose the smaller
    /// of `X·Xᵀ` / `Xᵀ·X` and recover the other factor as `Xᵀ·U·Σ⁻¹`.
    Gram,
    /// Deterministic seeded block subspace iteration on the Gram matrix,
    /// stopping as soon as the leading eigenvalues satisfy the fit target
    /// instead of resolving the full spectrum. `tol` is the relative
    /// Ritz-value convergence threshold (relative to the largest
    /// eigenvalue); [`DEFAULT_TRUNCATED_TOL`] is a good default. Fits
    /// that need the full spectrum (full-rank target, `v = 1`) or whose
    /// Gram side is too small to truncate degrade to the exact Gram path.
    Truncated {
        /// Relative Ritz-value convergence threshold; must be positive
        /// and finite.
        tol: f64,
    },
}

impl PcaSolver {
    /// The truncated solver with [`DEFAULT_TRUNCATED_TOL`].
    pub fn truncated() -> Self {
        PcaSolver::Truncated {
            tol: DEFAULT_TRUNCATED_TOL,
        }
    }
}

/// Default relative convergence tolerance for [`PcaSolver::Truncated`].
/// Tight enough that component counts and reconstruction errors agree
/// with the exact solvers to well below any decision threshold in the
/// pipeline; see DESIGN.md §11 for the tolerance policy.
pub const DEFAULT_TRUNCATED_TOL: f64 = 1e-10;

/// Smallest Gram-side dimension (`min(n, d)`) for which [`PcaSolver::Auto`]
/// reroutes a variance-targeted fit to the truncated solver. Below it the
/// exact dispatch is already fast and `Auto` preserves the historical
/// bit pattern exactly.
pub const TRUNCATED_AUTO_MIN: usize = 160;

/// Default seed for the truncated solver's starting block
/// ([`PcaConfig::with_seed`] overrides it).
pub const DEFAULT_PCA_SEED: u64 = 0x5CA1_AB1E;

/// What a [`Pca::fit_with`] call should retain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcaTarget {
    /// All `min(n, d)` components (the historical `fit_full`).
    FullRank,
    /// The smallest prefix reaching cumulative explained variance `v`
    /// (Algorithm 1 lines 6–10, the historical `fit`).
    Variance(ExplainedVariance),
    /// Exactly `n` components, clamped to the available rank (the
    /// historical `fit_with_components`).
    Components(usize),
}

/// Validated fit configuration consumed by [`Pca::fit_with`]: a solver, a
/// fit target, and the seed for the truncated solver's random block.
///
/// ```
/// use cs_linalg::{ExplainedVariance, PcaConfig, PcaSolver};
/// let v = ExplainedVariance::new(0.5).unwrap();
/// let config = PcaConfig::new()
///     .with_variance(v)
///     .with_solver(PcaSolver::truncated());
/// assert_eq!(config.solver(), PcaSolver::truncated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaConfig {
    solver: PcaSolver,
    target: PcaTarget,
    seed: u64,
}

impl Default for PcaConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl PcaConfig {
    /// A full-rank fit under [`PcaSolver::Auto`] with [`DEFAULT_PCA_SEED`].
    pub fn new() -> Self {
        Self {
            solver: PcaSolver::Auto,
            target: PcaTarget::FullRank,
            seed: DEFAULT_PCA_SEED,
        }
    }

    /// Pins the eigensolver.
    pub fn with_solver(mut self, solver: PcaSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Targets the smallest component prefix reaching variance `v`.
    pub fn with_variance(mut self, v: ExplainedVariance) -> Self {
        self.target = PcaTarget::Variance(v);
        self
    }

    /// Targets an explicit component count (clamped to the rank at fit
    /// time).
    pub fn with_components(mut self, n: usize) -> Self {
        self.target = PcaTarget::Components(n);
        self
    }

    /// Targets the full `min(n, d)`-component decomposition.
    pub fn with_full_rank(mut self) -> Self {
        self.target = PcaTarget::FullRank;
        self
    }

    /// Seeds the truncated solver's starting block (ignored by the exact
    /// solvers).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured solver.
    pub fn solver(&self) -> PcaSolver {
        self.solver
    }

    /// The configured fit target.
    pub fn target(&self) -> PcaTarget {
        self.target
    }

    /// The configured truncated-solver seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Why [`Pca::from_parts`] rejected a rehydration — the typed form of the
/// shape bookkeeping a model received over the wire must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcaRehydrateError {
    /// The component matrix width disagrees with the mean length.
    ShapeMismatch {
        /// Columns of the component matrix.
        component_width: usize,
        /// Length of the mean vector.
        mean_len: usize,
    },
    /// The component matrix has no rows.
    EmptyComponents,
    /// Fewer explained-variance ratios or singular values than components.
    ShortSpectrum {
        /// Number of explained-variance ratios provided.
        ratios: usize,
        /// Number of singular values provided.
        singular_values: usize,
        /// Number of component rows they must cover.
        components: usize,
    },
}

impl std::fmt::Display for PcaRehydrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaRehydrateError::ShapeMismatch {
                component_width,
                mean_len,
            } => write!(
                f,
                "component width {component_width} does not match mean length {mean_len}"
            ),
            PcaRehydrateError::EmptyComponents => {
                write!(f, "a PCA needs at least one component")
            }
            PcaRehydrateError::ShortSpectrum {
                ratios,
                singular_values,
                components,
            } => write!(
                f,
                "spectrum bookkeeping ({ratios} ratios, {singular_values} singular values) \
                 shorter than {components} components"
            ),
        }
    }
}

impl std::error::Error for PcaRehydrateError {}

/// Explained-variance ratios for a spectrum with zero total variance: the
/// first component carries the full (empty) variance so downstream
/// truncation keeps exactly one component. Shared by the full-SVD, Gram,
/// and truncated paths so the degenerate behavior cannot drift between
/// solvers.
fn zero_variance_ratios(len: usize) -> Vec<f64> {
    let mut r = vec![0.0; len];
    if let Some(first) = r.first_mut() {
        *first = 1.0;
    }
    r
}

/// The concrete exact decomposition a fit resolved to.
#[derive(Debug, Clone, Copy)]
enum ExactPath {
    /// The shape-based [`Svd::compute`] dispatch (historical behavior).
    Dispatch,
    /// Pinned one-sided Jacobi.
    Jacobi,
    /// Pinned Gram economy path.
    Gram,
}

/// A fitted PCA encoder–decoder: `(μ, PC)` plus the spectrum bookkeeping
/// needed to re-truncate at different explained-variance levels.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal components as rows: `n_components × dim`.
    components: Matrix,
    /// Per-component explained-variance ratios. Exact fits carry the full
    /// spectrum; truncated fits carry the computed prefix only.
    explained_variance_ratio: Vec<f64>,
    /// Singular values matching `explained_variance_ratio`.
    singular_values: Vec<f64>,
}

impl Pca {
    /// Rebuilds a PCA from its constituent parts — the rehydration path for
    /// models received over the wire (`cs-core::exchange`), where only
    /// `(μ, PC)` travel and the spectrum bookkeeping is synthesized.
    ///
    /// # Errors
    /// A typed [`PcaRehydrateError`] describing the first inconsistency.
    pub fn from_parts(
        mean: Vec<f64>,
        components: Matrix,
        explained_variance_ratio: Vec<f64>,
        singular_values: Vec<f64>,
    ) -> Result<Self, PcaRehydrateError> {
        if components.cols() != mean.len() {
            return Err(PcaRehydrateError::ShapeMismatch {
                component_width: components.cols(),
                mean_len: mean.len(),
            });
        }
        if components.rows() == 0 {
            return Err(PcaRehydrateError::EmptyComponents);
        }
        if explained_variance_ratio.len() < components.rows()
            || singular_values.len() < components.rows()
        {
            return Err(PcaRehydrateError::ShortSpectrum {
                ratios: explained_variance_ratio.len(),
                singular_values: singular_values.len(),
                components: components.rows(),
            });
        }
        Ok(Self {
            mean,
            components,
            explained_variance_ratio,
            singular_values,
        })
    }

    /// Fits under an explicit [`PcaConfig`] — the unified entry point the
    /// `fit` / `fit_full` / `fit_with_components` shims delegate to.
    ///
    /// Truncated fits retain only the computed spectrum prefix, so
    /// [`Self::truncated`] on the result can re-truncate *within* that
    /// prefix but cannot recover components the fit never resolved.
    ///
    /// # Errors
    /// [`SvdError::NonFiniteInput`] when the input carries NaN/inf (caught
    /// up front, before a NaN mean could smear across every centered
    /// entry), [`SvdError::EmptyMatrix`] when it has no rows or columns.
    ///
    /// # Panics
    /// When a pinned [`PcaSolver::Truncated`] carries a non-finite or
    /// non-positive `tol`.
    pub fn fit_with(data: &Matrix, config: PcaConfig) -> Result<Self, SvdError> {
        if data.has_non_finite() {
            return Err(SvdError::NonFiniteInput);
        }
        if data.rows() == 0 || data.cols() == 0 {
            return Err(SvdError::EmptyMatrix);
        }
        let target = config.target;
        match config.solver {
            PcaSolver::Auto => {
                if let PcaTarget::Variance(v) = target {
                    let gram_side = data.rows().min(data.cols());
                    if v.get() < 1.0 && gram_side >= TRUNCATED_AUTO_MIN {
                        return Self::fit_truncated(
                            data,
                            target,
                            DEFAULT_TRUNCATED_TOL,
                            config.seed,
                        );
                    }
                }
                Self::fit_exact(data, ExactPath::Dispatch, target)
            }
            PcaSolver::FullSvd => Self::fit_exact(data, ExactPath::Jacobi, target),
            PcaSolver::Gram => Self::fit_exact(data, ExactPath::Gram, target),
            PcaSolver::Truncated { tol } => {
                assert!(
                    tol.is_finite() && tol > 0.0,
                    "truncation tolerance must be positive and finite"
                );
                match target {
                    // The full spectrum is needed anyway: truncation has
                    // nothing to skip, so degrade to the exact Gram path.
                    PcaTarget::FullRank => Self::fit_exact(data, ExactPath::Gram, target),
                    PcaTarget::Variance(v) if v.get() >= 1.0 => {
                        Self::fit_exact(data, ExactPath::Gram, target)
                    }
                    _ => Self::fit_truncated(data, target, tol, config.seed),
                }
            }
        }
    }

    /// Fits a full PCA (all `min(n, d)` components) on the rows of `data`.
    /// Shim over [`Self::fit_with`] with a full-rank target under
    /// [`PcaSolver::Auto`] — bit-identical to the historical behavior.
    ///
    /// # Errors
    /// [`SvdError::NonFiniteInput`] when the input carries NaN/inf — caught
    /// up front, before a NaN mean could smear across every centered entry,
    /// so release builds fail as loudly as debug builds.
    pub fn fit_full(data: &Matrix) -> Result<Self, SvdError> {
        Self::fit_with(data, PcaConfig::new())
    }

    /// Fits and truncates so the kept components' cumulative explained
    /// variance is `≥ v` (Algorithm 1 lines 6–10: `GetIndex(CEV, v) + 1`).
    /// Shim over [`Self::fit_with`] under [`PcaSolver::Auto`].
    ///
    /// # Errors
    /// As [`Self::fit_with`].
    pub fn fit(data: &Matrix, v: ExplainedVariance) -> Result<Self, SvdError> {
        Self::fit_with(data, PcaConfig::new().with_variance(v))
    }

    /// Fits with an explicit component count (clamped to the available
    /// rank). Shim over [`Self::fit_with`] under [`PcaSolver::Auto`].
    ///
    /// # Errors
    /// As [`Self::fit_with`].
    pub fn fit_with_components(data: &Matrix, n_components: usize) -> Result<Self, SvdError> {
        Self::fit_with(data, PcaConfig::new().with_components(n_components))
    }

    /// The exact path shared by the full-SVD and Gram solvers: center,
    /// decompose, derive the spectrum bookkeeping, apply the target.
    fn fit_exact(data: &Matrix, path: ExactPath, target: PcaTarget) -> Result<Self, SvdError> {
        let mean = column_mean(data);
        let centered = data.sub_row_vector(&mean);
        let svd = match path {
            ExactPath::Dispatch => Svd::compute(&centered)?,
            ExactPath::Jacobi => Svd::jacobi(&centered)?,
            ExactPath::Gram => Svd::gram(&centered)?,
        };
        let total: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let ratio: Vec<f64> = if total > 0.0 {
            svd.singular_values.iter().map(|s| s * s / total).collect()
        } else {
            zero_variance_ratios(svd.singular_values.len())
        };
        let full = Self {
            mean,
            components: svd.vt,
            explained_variance_ratio: ratio,
            singular_values: svd.singular_values,
        };
        Ok(full.apply_target(target))
    }

    /// Applies a fit target to an already-decomposed model.
    fn apply_target(self, target: PcaTarget) -> Self {
        match target {
            PcaTarget::FullRank => self,
            PcaTarget::Variance(v) => self.truncated(v),
            PcaTarget::Components(n) => self.with_components(n),
        }
    }

    /// The truncated solver: deterministic seeded block subspace iteration
    /// on the Gram matrix, resolving only the leading eigenpairs the
    /// target needs. Falls back to the exact Gram path whenever the block
    /// would cover most of the spectrum anyway or the iteration budget
    /// runs out, so the result is always well-defined.
    fn fit_truncated(
        data: &Matrix,
        target: PcaTarget,
        tol: f64,
        seed: u64,
    ) -> Result<Self, SvdError> {
        let (n, d) = data.shape();
        let r = n.min(d);
        let mean = column_mean(data);
        let x = data.sub_row_vector(&mean);

        // Eigendecompose the smaller Gram side, as `Svd::gram` does. On
        // the rows side the eigenvectors are left singular vectors `u_i`
        // and components are recovered as `Xᵀ·u/σ`; on the columns side
        // they are the components directly.
        let rows_side = n <= d;
        let g = if rows_side {
            crate::kernels::gram_rows(&x, crate::kernels::TILE)
        } else {
            crate::kernels::gram_rows(&x.transpose(), crate::kernels::TILE)
        };
        let m = g.rows();

        // The total variance is the Gram trace — available exactly before
        // a single eigenvalue is resolved, which is what lets the
        // cumulative-explained-variance rule stop early.
        let total: f64 = (0..m).map(|i| g[(i, i)]).sum();
        if total <= 0.0 {
            // Zero-variance data: one zero component carrying the full
            // (empty) variance — reconstruction through it is the mean,
            // exactly as the exact solvers behave after truncation.
            return Ok(Self {
                mean,
                components: Matrix::zeros(1, d),
                explained_variance_ratio: zero_variance_ratios(1),
                singular_values: vec![0.0],
            });
        }

        let component_goal = match target {
            PcaTarget::Components(c) => Some(c.clamp(1, r)),
            _ => None,
        };
        let mut block = match component_goal {
            Some(c) => (c + 8).min(m),
            None => 32.min(m),
        };
        if block * 2 >= m {
            return Self::fit_exact(data, ExactPath::Gram, target);
        }

        let mut rng = Xoshiro256::seed_from(seed);
        let mut q = crate::qr::qr(&Matrix::from_fn(m, block, |_, _| rng.next_gaussian())).0;
        let mut z = crate::kernels::matmul_narrow(&g, &q);
        let mut prev: Vec<f64> = Vec::new();
        let mut converged: Option<(Vec<f64>, Matrix, usize)> = None;
        for _ in 0..MAX_SUBSPACE_ITERS {
            q = crate::qr::qr(&z).0;
            z = crate::kernels::matmul_narrow(&g, &q);
            // Rayleigh–Ritz on the block: B = Qᵀ·(G·Q), eigenvalues are
            // the current estimates of the leading spectrum.
            let b_small = q.transpose().matmul(&z);
            let (theta, w) = crate::svd::symmetric_eigen(&b_small);

            // How much of the target the current estimates satisfy. Ritz
            // values underestimate the true eigenvalues, so a satisfied
            // cumulative target here is also satisfied exactly.
            let (keep, satisfiable) = match component_goal {
                Some(c) => (c.min(block), c < block),
                None => {
                    let v = match target {
                        PcaTarget::Variance(v) => v.get(),
                        // fit_with routes full-rank targets to the exact
                        // path before this solver runs.
                        _ => 1.0,
                    };
                    let mut cum = 0.0;
                    let mut found = None;
                    for (i, &t) in theta.iter().enumerate() {
                        cum += t.max(0.0) / total;
                        if cum >= v - 1e-12 {
                            found = Some(i + 1);
                            break;
                        }
                    }
                    match found {
                        Some(k) => (k, k < block),
                        None => (theta.len(), false),
                    }
                }
            };

            let scale = theta.first().copied().unwrap_or(0.0).max(f64::MIN_POSITIVE);
            let stable_prefix = |count: usize| {
                prev.len() == theta.len()
                    && theta
                        .iter()
                        .take(count)
                        .zip(prev.iter())
                        .all(|(&t, &p)| (t - p).abs() <= tol * scale)
            };
            if satisfiable && stable_prefix(keep) {
                converged = Some((theta, w, keep));
                break;
            }
            if !satisfiable && stable_prefix(block) {
                // The spectrum has settled but the block cannot cover the
                // target: widen it, keeping the converged basis and
                // appending fresh random probes.
                let grown = (block * 2).min(m);
                if grown * 2 >= m {
                    return Self::fit_exact(data, ExactPath::Gram, target);
                }
                let basis = q.matmul(&w);
                let extended =
                    Matrix::from_fn(m, grown, |i, j| if j < block { basis[(i, j)] } else { 0.0 });
                let mut extended = extended;
                for j in block..grown {
                    for i in 0..m {
                        extended[(i, j)] = rng.next_gaussian();
                    }
                }
                block = grown;
                q = crate::qr::qr(&extended).0;
                z = crate::kernels::matmul_narrow(&g, &q);
                prev.clear();
                continue;
            }
            prev = theta;
        }
        let Some((theta, w, keep)) = converged else {
            // Iteration budget exhausted (pathologically clustered
            // spectrum): resolve exactly rather than return estimates.
            return Self::fit_exact(data, ExactPath::Gram, target);
        };

        // Ritz vectors for the kept prefix, then component recovery.
        let ritz = q.matmul(&w);
        let mut singular_values = Vec::with_capacity(keep);
        let mut ratios = Vec::with_capacity(keep);
        for &t in theta.iter().take(keep) {
            let lambda = t.max(0.0);
            singular_values.push(lambda.sqrt());
            ratios.push(lambda / total);
        }
        let mut components = Matrix::zeros(keep, d);
        if rows_side {
            // components = Σ⁻¹ · Uᵀ · X, rows zero where σ ≈ 0.
            let mut ut = Matrix::zeros(keep, n);
            for slot in 0..keep {
                for i in 0..n {
                    ut[(slot, i)] = ritz[(i, slot)];
                }
            }
            let unscaled = ut.matmul(&x);
            for slot in 0..keep {
                let sigma = singular_values[slot];
                if sigma > crate::EPS {
                    for k in 0..d {
                        components[(slot, k)] = unscaled[(slot, k)] / sigma;
                    }
                }
            }
        } else {
            // Columns-side eigenvectors are the components themselves.
            for slot in 0..keep {
                for k in 0..d {
                    components[(slot, k)] = ritz[(k, slot)];
                }
            }
        }
        Ok(Self {
            mean,
            components,
            explained_variance_ratio: ratios,
            singular_values,
        })
    }

    /// Returns a copy truncated to the smallest prefix of components whose
    /// cumulative explained variance reaches `v`.
    pub fn truncated(&self, v: ExplainedVariance) -> Self {
        let n = Self::components_for_variance(&self.explained_variance_ratio, v.get());
        self.with_components(n)
    }

    /// Returns a copy keeping exactly `n` components (clamped to `[1, rank]`
    /// when any components exist).
    pub fn with_components(&self, n: usize) -> Self {
        let avail = self.components.rows();
        let keep = n.clamp(1.min(avail), avail);
        let idx: Vec<usize> = (0..keep).collect();
        Self {
            mean: self.mean.clone(),
            components: self.components.select_rows(&idx),
            explained_variance_ratio: self.explained_variance_ratio.clone(),
            singular_values: self.singular_values.clone(),
        }
    }

    /// The `GetIndex(CEV, v) + 1` rule: number of leading components needed
    /// so the cumulative explained variance is `≥ v` (at least 1).
    pub fn components_for_variance(ratios: &[f64], v: f64) -> usize {
        let mut cum = 0.0;
        for (i, &r) in ratios.iter().enumerate() {
            cum += r;
            if cum >= v - 1e-12 {
                return i + 1;
            }
        }
        ratios.len().max(1)
    }

    /// Number of retained principal components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Signature dimensionality the model was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The training mean `μ`.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The retained principal components (rows), `n_components × dim`.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Per-component explained-variance ratios — the full spectrum for
    /// exact fits, the computed prefix for truncated fits.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_variance_ratio
    }

    /// Cumulative explained variance actually captured by the retained
    /// components.
    pub fn captured_variance(&self) -> f64 {
        self.explained_variance_ratio
            .iter()
            .take(self.n_components())
            .sum()
    }

    /// Singular values matching [`Self::explained_variance_ratio`].
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Encodes rows into the latent space: `Z = (X − μ) · PCᵀ`.
    pub fn encode(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.dim(), "dimension mismatch in encode");
        data.sub_row_vector(&self.mean)
            .matmul_transposed(&self.components)
    }

    /// Decodes latent rows back: `X̂ = Z · PC + μ`.
    pub fn decode(&self, latent: &Matrix) -> Matrix {
        assert_eq!(
            latent.cols(),
            self.n_components(),
            "latent dimension mismatch in decode"
        );
        latent.matmul(&self.components).add_row_vector(&self.mean)
    }

    /// Encode-then-decode (the full reconstruction of Definition 4).
    pub fn reconstruct(&self, data: &Matrix) -> Matrix {
        self.decode(&self.encode(data))
    }

    /// Per-row reconstruction MSE — the outlier scores `s_{k_i}`.
    pub fn reconstruction_errors(&self, data: &Matrix) -> Vec<f64> {
        let recon = self.reconstruct(data);
        data.rows_iter()
            .zip(recon.rows_iter())
            .map(|(orig, rec)| mse(orig, rec))
            .collect()
    }

    /// Reconstruction MSE of a single signature vector.
    pub fn reconstruction_error_one(&self, signature: &[f64]) -> f64 {
        let row = Matrix::from_rows(&[signature.to_vec()]);
        self.reconstruction_errors(&row)[0]
    }
}

/// Iteration ceiling for the truncated solver across all block growths;
/// exhausting it falls back to the exact Gram path.
const MAX_SUBSPACE_ITERS: usize = 200;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_data(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    /// Short-and-wide data with a decaying spectrum — the shape the
    /// truncated solver is built for.
    fn decaying_data(rows: usize, cols: usize, rank: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        let basis = Matrix::from_fn(rank, cols, |_, _| rng.next_gaussian());
        let coeff = Matrix::from_fn(rows, rank, |_, j| {
            rng.next_gaussian() / (1.0 + j as f64).sqrt()
        });
        let mut out = coeff.matmul(&basis);
        for x in out.as_mut_slice() {
            *x += rng.next_gaussian() * 1e-3;
        }
        out
    }

    #[test]
    fn explained_variance_validation() {
        assert!(ExplainedVariance::new(0.5).is_some());
        assert!(ExplainedVariance::new(1.0).is_some());
        assert!(ExplainedVariance::new(0.0).is_none());
        assert!(ExplainedVariance::new(-0.1).is_none());
        assert!(ExplainedVariance::new(1.1).is_none());
        assert!(ExplainedVariance::new(f64::NAN).is_none());
    }

    #[test]
    fn full_pca_reconstructs_exactly() {
        let data = random_data(10, 6, 1);
        let pca = Pca::fit(&data, ExplainedVariance::new(1.0).unwrap()).unwrap();
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-16), "errors {err:?}");
    }

    #[test]
    fn truncation_orders_error_by_variance() {
        let data = random_data(30, 8, 2);
        let full = Pca::fit_full(&data).unwrap();
        let hi = full.truncated(ExplainedVariance::new(0.9).unwrap());
        let lo = full.truncated(ExplainedVariance::new(0.3).unwrap());
        assert!(hi.n_components() >= lo.n_components());
        let err_hi: f64 = hi.reconstruction_errors(&data).iter().sum();
        let err_lo: f64 = lo.reconstruction_errors(&data).iter().sum();
        assert!(err_hi <= err_lo + 1e-12);
    }

    #[test]
    fn components_for_variance_rule() {
        let ratios = [0.5, 0.3, 0.15, 0.05];
        assert_eq!(Pca::components_for_variance(&ratios, 0.4), 1);
        assert_eq!(Pca::components_for_variance(&ratios, 0.5), 1);
        assert_eq!(Pca::components_for_variance(&ratios, 0.6), 2);
        assert_eq!(Pca::components_for_variance(&ratios, 0.95), 3);
        assert_eq!(Pca::components_for_variance(&ratios, 1.0), 4);
        // Unreachable targets clamp to everything.
        assert_eq!(Pca::components_for_variance(&[0.6, 0.2], 0.99), 2);
        // Degenerate input keeps at least one component.
        assert_eq!(Pca::components_for_variance(&[], 0.5), 1);
    }

    #[test]
    fn captured_variance_matches_request() {
        let data = random_data(40, 10, 3);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.7).unwrap()).unwrap();
        assert!(pca.captured_variance() >= 0.7 - 1e-9);
    }

    #[test]
    fn encode_decode_shapes() {
        let data = random_data(12, 20, 4);
        let pca = Pca::fit_with_components(&data, 3).unwrap();
        let z = pca.encode(&data);
        assert_eq!(z.shape(), (12, 3));
        let back = pca.decode(&z);
        assert_eq!(back.shape(), (12, 20));
    }

    #[test]
    fn rank_one_data_needs_one_component() {
        // All rows along one direction plus the mean.
        let mut rng = Xoshiro256::seed_from(5);
        let dir: Vec<f64> = (0..7).map(|_| rng.next_gaussian()).collect();
        let data = Matrix::from_fn(9, 7, |i, j| (i as f64 + 1.0) * dir[j]);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.99).unwrap()).unwrap();
        assert_eq!(pca.n_components(), 1);
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-14));
    }

    #[test]
    fn zero_variance_data_reconstructs_via_mean() {
        let data = Matrix::from_fn(5, 4, |_, _| 3.5);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.5).unwrap()).unwrap();
        assert_eq!(pca.n_components(), 1);
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-18));
    }

    #[test]
    fn zero_variance_data_under_every_solver() {
        let data = Matrix::from_fn(5, 4, |_, _| 3.5);
        let v = ExplainedVariance::new(0.5).unwrap();
        for solver in [
            PcaSolver::Auto,
            PcaSolver::FullSvd,
            PcaSolver::Gram,
            PcaSolver::truncated(),
        ] {
            let config = PcaConfig::new().with_variance(v).with_solver(solver);
            let pca = Pca::fit_with(&data, config).unwrap();
            assert_eq!(pca.n_components(), 1, "{solver:?}");
            let err = pca.reconstruction_errors(&data);
            assert!(err.iter().all(|&e| e < 1e-18), "{solver:?}: {err:?}");
        }
    }

    #[test]
    fn outlier_has_larger_reconstruction_error() {
        // Fit on a plane-bound cloud, score an off-plane point higher than an
        // on-plane one.
        let mut rng = Xoshiro256::seed_from(6);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                let a = rng.next_gaussian();
                let b = rng.next_gaussian();
                vec![a, b, a + b, a - b, 0.0]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.95).unwrap()).unwrap();
        let on_plane = pca.reconstruction_error_one(&[1.0, 1.0, 2.0, 0.0, 0.0]);
        let off_plane = pca.reconstruction_error_one(&[1.0, 1.0, 2.0, 0.0, 8.0]);
        assert!(off_plane > on_plane * 10.0, "{off_plane} vs {on_plane}");
    }

    #[test]
    fn mean_is_training_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        let pca = Pca::fit_full(&data).unwrap();
        assert_eq!(pca.mean(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn encode_wrong_dim_panics() {
        let data = random_data(5, 4, 7);
        let pca = Pca::fit_full(&data).unwrap();
        pca.encode(&random_data(3, 5, 8));
    }

    #[test]
    fn non_finite_input_is_typed_error() {
        let mut data = random_data(6, 4, 9);
        data[(2, 1)] = f64::NAN;
        assert_eq!(Pca::fit_full(&data).unwrap_err(), SvdError::NonFiniteInput);
        data[(2, 1)] = f64::INFINITY;
        assert_eq!(
            Pca::fit(&data, ExplainedVariance::new(0.5).unwrap()).unwrap_err(),
            SvdError::NonFiniteInput
        );
    }

    #[test]
    fn every_solver_rejects_degenerate_input() {
        let v = ExplainedVariance::new(0.5).unwrap();
        for solver in [
            PcaSolver::Auto,
            PcaSolver::FullSvd,
            PcaSolver::Gram,
            PcaSolver::truncated(),
        ] {
            let config = PcaConfig::new().with_variance(v).with_solver(solver);
            assert_eq!(
                Pca::fit_with(&Matrix::zeros(3, 0), config).unwrap_err(),
                SvdError::EmptyMatrix,
                "{solver:?}"
            );
            let mut nan = Matrix::zeros(3, 3);
            nan[(1, 2)] = f64::NAN;
            assert_eq!(
                Pca::fit_with(&nan, config).unwrap_err(),
                SvdError::NonFiniteInput,
                "{solver:?}"
            );
        }
    }

    #[test]
    fn single_row_training_set() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.9).unwrap()).unwrap();
        // Centering a single row yields zero variance: reconstruction is the
        // row itself.
        let err = pca.reconstruction_errors(&data);
        assert!(err[0] < 1e-18);
    }

    #[test]
    fn shims_match_fit_with_bit_for_bit() {
        let data = random_data(25, 40, 11);
        let v = ExplainedVariance::new(0.6).unwrap();
        let shim = Pca::fit(&data, v).unwrap();
        let unified = Pca::fit_with(&data, PcaConfig::new().with_variance(v)).unwrap();
        assert_eq!(shim.n_components(), unified.n_components());
        for (a, b) in shim
            .components()
            .as_slice()
            .iter()
            .zip(unified.components().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let full_shim = Pca::fit_full(&data).unwrap();
        let full_unified = Pca::fit_with(&data, PcaConfig::new()).unwrap();
        for (a, b) in full_shim
            .singular_values()
            .iter()
            .zip(full_unified.singular_values())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_solver_matches_exact_reference() {
        // A spectrum-decaying matrix large enough that the subspace
        // iteration actually runs (Gram side ≥ 2 × initial block).
        let data = decaying_data(140, 200, 24, 21);
        let v = ExplainedVariance::new(0.7).unwrap();
        let exact = Pca::fit(&data, v).unwrap();
        let trunc = Pca::fit_with(
            &data,
            PcaConfig::new()
                .with_variance(v)
                .with_solver(PcaSolver::truncated()),
        )
        .unwrap();
        assert_eq!(trunc.n_components(), exact.n_components());
        let e_exact = exact.reconstruction_errors(&data);
        let e_trunc = trunc.reconstruction_errors(&data);
        for (a, b) in e_exact.iter().zip(&e_trunc) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn truncated_solver_is_seed_deterministic() {
        let data = decaying_data(120, 180, 16, 33);
        let v = ExplainedVariance::new(0.5).unwrap();
        let config = PcaConfig::new()
            .with_variance(v)
            .with_solver(PcaSolver::truncated());
        let a = Pca::fit_with(&data, config).unwrap();
        let b = Pca::fit_with(&data, config).unwrap();
        assert_eq!(a.n_components(), b.n_components());
        for (x, y) in a
            .components()
            .as_slice()
            .iter()
            .zip(b.components().as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn truncated_component_target() {
        let data = decaying_data(130, 190, 20, 55);
        let config = PcaConfig::new()
            .with_components(6)
            .with_solver(PcaSolver::truncated());
        let trunc = Pca::fit_with(&data, config).unwrap();
        assert_eq!(trunc.n_components(), 6);
        let exact = Pca::fit_with_components(&data, 6).unwrap();
        let e_exact = exact.reconstruction_errors(&data);
        let e_trunc = trunc.reconstruction_errors(&data);
        for (a, b) in e_exact.iter().zip(&e_trunc) {
            // Ritz *vectors* converge as the square root of the Ritz-value
            // tolerance, and a hard component cut exposes the boundary
            // vector directly (a variance cut hides it behind the
            // cumulative sum), so the pin is looser here.
            assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn truncated_full_rank_degrades_to_gram() {
        let data = random_data(12, 30, 77);
        let trunc =
            Pca::fit_with(&data, PcaConfig::new().with_solver(PcaSolver::truncated())).unwrap();
        let gram = Pca::fit_with(&data, PcaConfig::new().with_solver(PcaSolver::Gram)).unwrap();
        for (a, b) in trunc.singular_values().iter().zip(gram.singular_values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_stays_exact_below_threshold() {
        // Auto on a small matrix must match the historical exact pipeline
        // bit-for-bit (the goldens depend on it).
        let data = random_data(30, 80, 99);
        let v = ExplainedVariance::new(0.5).unwrap();
        let auto = Pca::fit(&data, v).unwrap();
        let exact = Pca::fit_exact(&data, ExactPath::Dispatch, PcaTarget::Variance(v)).unwrap();
        for (a, b) in auto
            .components()
            .as_slice()
            .iter()
            .zip(exact.components().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tall_matrix_truncated_uses_columns_side() {
        // n > d: the Gram side is d×d and eigenvectors are components
        // directly. d must exceed twice the initial block for the
        // iteration to run.
        let data = decaying_data(260, 130, 18, 44);
        let v = ExplainedVariance::new(0.6).unwrap();
        let exact = Pca::fit(&data, v).unwrap();
        let trunc = Pca::fit_with(
            &data,
            PcaConfig::new()
                .with_variance(v)
                .with_solver(PcaSolver::truncated()),
        )
        .unwrap();
        assert_eq!(trunc.n_components(), exact.n_components());
        let e_exact = exact.reconstruction_errors(&data);
        let e_trunc = trunc.reconstruction_errors(&data);
        for (a, b) in e_exact.iter().zip(&e_trunc) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "truncation tolerance must be positive")]
    fn bad_truncated_tol_panics() {
        let data = random_data(8, 8, 3);
        let _ = Pca::fit_with(
            &data,
            PcaConfig::new()
                .with_variance(ExplainedVariance::new(0.5).unwrap())
                .with_solver(PcaSolver::Truncated { tol: 0.0 }),
        );
    }

    #[test]
    fn prop_solvers_agree_on_reconstruction_mse() {
        // Stated tolerance: per-row reconstruction MSE of the Gram and
        // truncated solvers within 1e-7 relative of the full-SVD
        // reference on random n ≪ d matrices with decaying spectra.
        crate::check::run("pca_solver_mse_agreement", 10, |g| {
            let n = g.usize_in(70, 100);
            let d = n + g.usize_in(40, 90);
            let rank = g.usize_in(8, 20);
            let data = decaying_data(n, d, rank, g.seed() ^ 0xABCDE);
            let v = ExplainedVariance::new(g.f64_in(0.3, 0.9)).unwrap();
            let reference = Pca::fit_with(
                &data,
                PcaConfig::new()
                    .with_variance(v)
                    .with_solver(PcaSolver::FullSvd),
            )
            .unwrap();
            let e_ref = reference.reconstruction_errors(&data);
            for solver in [PcaSolver::Gram, PcaSolver::truncated()] {
                let fit =
                    Pca::fit_with(&data, PcaConfig::new().with_variance(v).with_solver(solver))
                        .unwrap();
                let e = fit.reconstruction_errors(&data);
                for (a, b) in e_ref.iter().zip(&e) {
                    assert!(
                        (a - b).abs() <= 1e-7 * (1.0 + a.abs()),
                        "{solver:?}: {a} vs {b}"
                    );
                }
            }
        });
    }

    #[test]
    fn prop_solvers_agree_on_component_count() {
        // The GetIndex(CEV, v) rule must pick the same component count
        // under every solver — the pipeline's scoping decisions hang off
        // this integer, not off the raw spectrum.
        crate::check::run("pca_solver_count_agreement", 10, |g| {
            let n = g.usize_in(70, 100);
            let d = n + g.usize_in(40, 90);
            let rank = g.usize_in(8, 20);
            let data = decaying_data(n, d, rank, g.seed() ^ 0xC0DE);
            let v = ExplainedVariance::new(g.f64_in(0.3, 0.9)).unwrap();
            let reference = Pca::fit(&data, v).unwrap();
            for solver in [PcaSolver::FullSvd, PcaSolver::Gram, PcaSolver::truncated()] {
                let fit =
                    Pca::fit_with(&data, PcaConfig::new().with_variance(v).with_solver(solver))
                        .unwrap();
                assert_eq!(
                    fit.n_components(),
                    reference.n_components(),
                    "{solver:?} at v = {}",
                    v.get()
                );
            }
        });
    }

    #[test]
    fn from_parts_typed_errors() {
        let err =
            Pca::from_parts(vec![0.0; 3], Matrix::zeros(1, 2), vec![1.0], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            PcaRehydrateError::ShapeMismatch {
                component_width: 2,
                mean_len: 3
            }
        );
        let err = Pca::from_parts(vec![0.0; 2], Matrix::zeros(0, 2), vec![], vec![]).unwrap_err();
        assert_eq!(err, PcaRehydrateError::EmptyComponents);
        let err = Pca::from_parts(vec![0.0; 2], Matrix::identity(2), vec![1.0], vec![1.0, 0.5])
            .unwrap_err();
        assert_eq!(
            err,
            PcaRehydrateError::ShortSpectrum {
                ratios: 1,
                singular_values: 2,
                components: 2
            }
        );
        // Round-trip of a healthy model.
        let pca = Pca::fit_full(&random_data(6, 4, 13)).unwrap();
        let rebuilt = Pca::from_parts(
            pca.mean().to_vec(),
            pca.components().clone(),
            pca.explained_variance_ratio().to_vec(),
            pca.singular_values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.n_components(), pca.n_components());
    }
}
