//! PCA encoder–decoder.
//!
//! This is the exact model of the paper's Algorithm 1 (lines 3–13): project
//! signatures onto their mean, take the full SVD, keep the smallest prefix
//! of principal components whose cumulative explained variance exceeds the
//! global parameter `v`, and encode/decode through those components. The
//! per-row reconstruction MSE is the outlier score used by both global
//! scoping and collaborative scoping.

use crate::stats::column_mean;
use crate::vecops::mse;
use crate::{Matrix, Svd, SvdError};

/// Validated explained-variance parameter `v ∈ (0, 1]`.
///
/// The paper treats `v` as the single *global* knob shared by all local
/// models; `v = 1` keeps every component (perfect reconstruction of the
/// training set), small `v` keeps almost none.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainedVariance(f64);

impl ExplainedVariance {
    /// Creates a validated explained-variance value.
    ///
    /// # Errors
    /// Returns `None` unless `0 < v ≤ 1` and `v` is finite.
    pub fn new(v: f64) -> Option<Self> {
        (v.is_finite() && v > 0.0 && v <= 1.0).then_some(Self(v))
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// A fitted PCA encoder–decoder: `(μ, PC)` plus the spectrum bookkeeping
/// needed to re-truncate at different explained-variance levels.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal components as rows: `n_components × dim`.
    components: Matrix,
    /// Per-component explained-variance ratios of the *full* decomposition.
    explained_variance_ratio: Vec<f64>,
    /// Singular values of the full decomposition.
    singular_values: Vec<f64>,
}

impl Pca {
    /// Rebuilds a PCA from its constituent parts — the rehydration path for
    /// models received over the wire (`cs-core::exchange`), where only
    /// `(μ, PC)` travel and the spectrum bookkeeping is synthesized.
    ///
    /// # Errors
    /// Returns a description of the inconsistency when shapes disagree.
    pub fn from_parts(
        mean: Vec<f64>,
        components: Matrix,
        explained_variance_ratio: Vec<f64>,
        singular_values: Vec<f64>,
    ) -> Result<Self, String> {
        if components.cols() != mean.len() {
            return Err(format!(
                "component width {} does not match mean length {}",
                components.cols(),
                mean.len()
            ));
        }
        if components.rows() == 0 {
            return Err("a PCA needs at least one component".into());
        }
        if explained_variance_ratio.len() < components.rows()
            || singular_values.len() < components.rows()
        {
            return Err(format!(
                "spectrum bookkeeping ({} ratios, {} singular values) shorter than {} components",
                explained_variance_ratio.len(),
                singular_values.len(),
                components.rows()
            ));
        }
        Ok(Self {
            mean,
            components,
            explained_variance_ratio,
            singular_values,
        })
    }

    /// Fits a full PCA (all `min(n, d)` components) on the rows of `data`.
    ///
    /// # Errors
    /// [`SvdError::NonFiniteInput`] when the input carries NaN/inf — caught
    /// up front, before a NaN mean could smear across every centered entry,
    /// so release builds fail as loudly as debug builds.
    pub fn fit_full(data: &Matrix) -> Result<Self, SvdError> {
        if data.has_non_finite() {
            return Err(SvdError::NonFiniteInput);
        }
        let mean = column_mean(data);
        let centered = data.sub_row_vector(&mean);
        let svd = Svd::compute(&centered)?;
        let total: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let ratio: Vec<f64> = if total > 0.0 {
            svd.singular_values.iter().map(|s| s * s / total).collect()
        } else {
            // Zero-variance data: every component explains "all" of nothing;
            // define the first component as carrying the full (empty) variance
            // so downstream truncation keeps exactly one component.
            let mut r = vec![0.0; svd.singular_values.len()];
            if let Some(first) = r.first_mut() {
                *first = 1.0;
            }
            r
        };
        Ok(Self {
            mean,
            components: svd.vt,
            explained_variance_ratio: ratio,
            singular_values: svd.singular_values,
        })
    }

    /// Fits and truncates so the kept components' cumulative explained
    /// variance is `≥ v` (Algorithm 1 lines 6–10: `GetIndex(CEV, v) + 1`).
    pub fn fit(data: &Matrix, v: ExplainedVariance) -> Result<Self, SvdError> {
        let full = Self::fit_full(data)?;
        Ok(full.truncated(v))
    }

    /// Fits with an explicit component count (clamped to the available rank).
    pub fn fit_with_components(data: &Matrix, n_components: usize) -> Result<Self, SvdError> {
        let full = Self::fit_full(data)?;
        Ok(full.with_components(n_components))
    }

    /// Returns a copy truncated to the smallest prefix of components whose
    /// cumulative explained variance reaches `v`.
    pub fn truncated(&self, v: ExplainedVariance) -> Self {
        let n = Self::components_for_variance(&self.explained_variance_ratio, v.get());
        self.with_components(n)
    }

    /// Returns a copy keeping exactly `n` components (clamped to `[1, rank]`
    /// when any components exist).
    pub fn with_components(&self, n: usize) -> Self {
        let avail = self.components.rows();
        let keep = n.clamp(1.min(avail), avail);
        let idx: Vec<usize> = (0..keep).collect();
        Self {
            mean: self.mean.clone(),
            components: self.components.select_rows(&idx),
            explained_variance_ratio: self.explained_variance_ratio.clone(),
            singular_values: self.singular_values.clone(),
        }
    }

    /// The `GetIndex(CEV, v) + 1` rule: number of leading components needed
    /// so the cumulative explained variance is `≥ v` (at least 1).
    pub fn components_for_variance(ratios: &[f64], v: f64) -> usize {
        let mut cum = 0.0;
        for (i, &r) in ratios.iter().enumerate() {
            cum += r;
            if cum >= v - 1e-12 {
                return i + 1;
            }
        }
        ratios.len().max(1)
    }

    /// Number of retained principal components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Signature dimensionality the model was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The training mean `μ`.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The retained principal components (rows), `n_components × dim`.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Per-component explained-variance ratios of the full decomposition.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_variance_ratio
    }

    /// Cumulative explained variance actually captured by the retained
    /// components.
    pub fn captured_variance(&self) -> f64 {
        self.explained_variance_ratio
            .iter()
            .take(self.n_components())
            .sum()
    }

    /// Singular values of the full decomposition.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Encodes rows into the latent space: `Z = (X − μ) · PCᵀ`.
    pub fn encode(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.dim(), "dimension mismatch in encode");
        data.sub_row_vector(&self.mean)
            .matmul_transposed(&self.components)
    }

    /// Decodes latent rows back: `X̂ = Z · PC + μ`.
    pub fn decode(&self, latent: &Matrix) -> Matrix {
        assert_eq!(
            latent.cols(),
            self.n_components(),
            "latent dimension mismatch in decode"
        );
        latent.matmul(&self.components).add_row_vector(&self.mean)
    }

    /// Encode-then-decode (the full reconstruction of Definition 4).
    pub fn reconstruct(&self, data: &Matrix) -> Matrix {
        self.decode(&self.encode(data))
    }

    /// Per-row reconstruction MSE — the outlier scores `s_{k_i}`.
    pub fn reconstruction_errors(&self, data: &Matrix) -> Vec<f64> {
        let recon = self.reconstruct(data);
        data.rows_iter()
            .zip(recon.rows_iter())
            .map(|(orig, rec)| mse(orig, rec))
            .collect()
    }

    /// Reconstruction MSE of a single signature vector.
    pub fn reconstruction_error_one(&self, signature: &[f64]) -> f64 {
        let row = Matrix::from_rows(&[signature.to_vec()]);
        self.reconstruction_errors(&row)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_data(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    #[test]
    fn explained_variance_validation() {
        assert!(ExplainedVariance::new(0.5).is_some());
        assert!(ExplainedVariance::new(1.0).is_some());
        assert!(ExplainedVariance::new(0.0).is_none());
        assert!(ExplainedVariance::new(-0.1).is_none());
        assert!(ExplainedVariance::new(1.1).is_none());
        assert!(ExplainedVariance::new(f64::NAN).is_none());
    }

    #[test]
    fn full_pca_reconstructs_exactly() {
        let data = random_data(10, 6, 1);
        let pca = Pca::fit(&data, ExplainedVariance::new(1.0).unwrap()).unwrap();
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-16), "errors {err:?}");
    }

    #[test]
    fn truncation_orders_error_by_variance() {
        let data = random_data(30, 8, 2);
        let full = Pca::fit_full(&data).unwrap();
        let hi = full.truncated(ExplainedVariance::new(0.9).unwrap());
        let lo = full.truncated(ExplainedVariance::new(0.3).unwrap());
        assert!(hi.n_components() >= lo.n_components());
        let err_hi: f64 = hi.reconstruction_errors(&data).iter().sum();
        let err_lo: f64 = lo.reconstruction_errors(&data).iter().sum();
        assert!(err_hi <= err_lo + 1e-12);
    }

    #[test]
    fn components_for_variance_rule() {
        let ratios = [0.5, 0.3, 0.15, 0.05];
        assert_eq!(Pca::components_for_variance(&ratios, 0.4), 1);
        assert_eq!(Pca::components_for_variance(&ratios, 0.5), 1);
        assert_eq!(Pca::components_for_variance(&ratios, 0.6), 2);
        assert_eq!(Pca::components_for_variance(&ratios, 0.95), 3);
        assert_eq!(Pca::components_for_variance(&ratios, 1.0), 4);
        // Unreachable targets clamp to everything.
        assert_eq!(Pca::components_for_variance(&[0.6, 0.2], 0.99), 2);
        // Degenerate input keeps at least one component.
        assert_eq!(Pca::components_for_variance(&[], 0.5), 1);
    }

    #[test]
    fn captured_variance_matches_request() {
        let data = random_data(40, 10, 3);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.7).unwrap()).unwrap();
        assert!(pca.captured_variance() >= 0.7 - 1e-9);
    }

    #[test]
    fn encode_decode_shapes() {
        let data = random_data(12, 20, 4);
        let pca = Pca::fit_with_components(&data, 3).unwrap();
        let z = pca.encode(&data);
        assert_eq!(z.shape(), (12, 3));
        let back = pca.decode(&z);
        assert_eq!(back.shape(), (12, 20));
    }

    #[test]
    fn rank_one_data_needs_one_component() {
        // All rows along one direction plus the mean.
        let mut rng = Xoshiro256::seed_from(5);
        let dir: Vec<f64> = (0..7).map(|_| rng.next_gaussian()).collect();
        let data = Matrix::from_fn(9, 7, |i, j| (i as f64 + 1.0) * dir[j]);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.99).unwrap()).unwrap();
        assert_eq!(pca.n_components(), 1);
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-14));
    }

    #[test]
    fn zero_variance_data_reconstructs_via_mean() {
        let data = Matrix::from_fn(5, 4, |_, _| 3.5);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.5).unwrap()).unwrap();
        assert_eq!(pca.n_components(), 1);
        let err = pca.reconstruction_errors(&data);
        assert!(err.iter().all(|&e| e < 1e-18));
    }

    #[test]
    fn outlier_has_larger_reconstruction_error() {
        // Fit on a plane-bound cloud, score an off-plane point higher than an
        // on-plane one.
        let mut rng = Xoshiro256::seed_from(6);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                let a = rng.next_gaussian();
                let b = rng.next_gaussian();
                vec![a, b, a + b, a - b, 0.0]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.95).unwrap()).unwrap();
        let on_plane = pca.reconstruction_error_one(&[1.0, 1.0, 2.0, 0.0, 0.0]);
        let off_plane = pca.reconstruction_error_one(&[1.0, 1.0, 2.0, 0.0, 8.0]);
        assert!(off_plane > on_plane * 10.0, "{off_plane} vs {on_plane}");
    }

    #[test]
    fn mean_is_training_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        let pca = Pca::fit_full(&data).unwrap();
        assert_eq!(pca.mean(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn encode_wrong_dim_panics() {
        let data = random_data(5, 4, 7);
        let pca = Pca::fit_full(&data).unwrap();
        pca.encode(&random_data(3, 5, 8));
    }

    #[test]
    fn non_finite_input_is_typed_error() {
        let mut data = random_data(6, 4, 9);
        data[(2, 1)] = f64::NAN;
        assert_eq!(Pca::fit_full(&data).unwrap_err(), SvdError::NonFiniteInput);
        data[(2, 1)] = f64::INFINITY;
        assert_eq!(
            Pca::fit(&data, ExplainedVariance::new(0.5).unwrap()).unwrap_err(),
            SvdError::NonFiniteInput
        );
    }

    #[test]
    fn single_row_training_set() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let pca = Pca::fit(&data, ExplainedVariance::new(0.9).unwrap()).unwrap();
        // Centering a single row yields zero variance: reconstruction is the
        // row itself.
        let err = pca.reconstruction_errors(&data);
        assert!(err[0] < 1e-18);
    }
}
