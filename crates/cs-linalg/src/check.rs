//! A std-only property-check harness — the hermetic replacement for the
//! workspace's former external `proptest` dependency.
//!
//! The workspace's hermetic dependency policy (DESIGN.md §6) forbids
//! registry crates in the default feature set, so property tests run on
//! this harness instead: a seeded-RNG loop over the same generators the
//! proptest strategies used, with per-case failure reporting (the failing
//! case index and seed are printed so a shrunk repro is one constant away).
//!
//! ```
//! use cs_linalg::check::{run, Gen};
//!
//! run("addition_commutes", 64, |g| {
//!     let (a, b) = (g.f64_in(-10.0, 10.0), g.f64_in(-10.0, 10.0));
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Case counts scale in two ways:
//! - the `proptest-tests` cargo feature multiplies every suite's count by
//!   [`DEEP_MULTIPLIER`] (opt-in deep fuzzing, still dependency-free),
//! - the `CS_PROP_CASES` environment variable overrides the count exactly.

use crate::{Matrix, SplitMix64, Xoshiro256};

/// Case-count multiplier applied when the `proptest-tests` feature is on.
pub const DEEP_MULTIPLIER: usize = 16;

/// Resolves the number of cases a suite should run: the explicit
/// `CS_PROP_CASES` environment override wins, otherwise `default`
/// (multiplied by [`DEEP_MULTIPLIER`] under the `proptest-tests` feature).
pub fn cases(default: usize) -> usize {
    let over = crate::config::env_knob(crate::config::PROP_CASES);
    cases_with_override(default, over.as_deref())
}

fn cases_with_override(default: usize, override_var: Option<&str>) -> usize {
    if let Some(n) = override_var.and_then(|s| s.trim().parse::<usize>().ok()) {
        return n.max(1);
    }
    if cfg!(feature = "proptest-tests") {
        default * DEEP_MULTIPLIER
    } else {
        default
    }
}

/// A seeded generator handed to every property case — the "strategy"
/// vocabulary the old proptest suites used, as plain methods.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256,
    /// The case's root seed, echoed in failure reports.
    seed: u64,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from(seed),
            seed,
        }
    }

    /// The case's root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive on both ends).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.rng.next_below(hi - lo + 1)
    }

    /// A `u64` in `[0, n)`.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        self.rng.next_below(n as usize) as u64
    }

    /// A vector of uniform `f64` in `[lo, hi)`.
    pub fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// A matrix with `1..=max_rows × 1..=max_cols` uniform entries in
    /// `[lo, hi)` — the old `matrix_strategy`.
    pub fn matrix(&mut self, max_rows: usize, max_cols: usize, lo: f64, hi: f64) -> Matrix {
        let r = self.usize_in(1, max_rows);
        let c = self.usize_in(1, max_cols);
        let data = self.vec_f64(r * c, lo, hi);
        Matrix::from_vec(r, c, data)
    }

    /// A square matrix with `1..=max_n` rows — the old
    /// `square_matrix_strategy`.
    pub fn square_matrix(&mut self, max_n: usize, lo: f64, hi: f64) -> Matrix {
        let n = self.usize_in(1, max_n);
        let data = self.vec_f64(n * n, lo, hi);
        Matrix::from_vec(n, n, data)
    }
}

/// Runs `property` for `cases(default_cases)` seeded cases. Each case gets
/// an independent [`Gen`]; a panicking case is re-raised after printing the
/// case index and seed, so failures reproduce with
/// `Gen::from_seed(<printed seed>)`.
pub fn run<F>(name: &str, default_cases: usize, mut property: F)
where
    F: FnMut(&mut Gen),
{
    let n = cases(default_cases);
    // Derive per-case seeds from the property name so suites are decorrelated
    // yet stable across runs and platforms.
    let mut root = SplitMix64::new(name.bytes().fold(0xC5_1A_B0_57u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01B3)
    }));
    for case in 0..n {
        let seed = root.next_u64();
        let mut gen = Gen::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{n} (seed {seed}); \
                 reproduce with Gen::from_seed({seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_respect_bounds() {
        run("generators_respect_bounds", 32, |g| {
            let x = g.f64_in(-2.5, 7.0);
            assert!((-2.5..7.0).contains(&x));
            let k = g.usize_in(3, 9);
            assert!((3..=9).contains(&k));
            let v = g.vec_f64(5, 0.0, 1.0);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        });
    }

    #[test]
    fn matrix_generator_shapes() {
        run("matrix_generator_shapes", 32, |g| {
            let m = g.matrix(6, 9, -1.0, 1.0);
            assert!(m.rows() >= 1 && m.rows() <= 6);
            assert!(m.cols() >= 1 && m.cols() <= 9);
            let s = g.square_matrix(5, -1.0, 1.0);
            assert_eq!(s.rows(), s.cols());
        });
    }

    #[test]
    fn cases_env_override_wins() {
        assert_eq!(cases_with_override(100, Some("3")), 3);
        assert_eq!(cases_with_override(100, Some("0")), 1);
        let base = cases_with_override(100, Some("not a number"));
        assert!(base == 100 || base == 100 * DEEP_MULTIPLIER);
        let base = cases_with_override(100, None);
        assert!(base == 100 || base == 100 * DEEP_MULTIPLIER);
    }

    #[test]
    fn seeds_are_stable_per_name() {
        let mut a = Vec::new();
        run("stable_name", 4, |g| a.push(g.seed()));
        let mut b = Vec::new();
        run("stable_name", 4, |g| b.push(g.seed()));
        assert_eq!(a, b);
        let mut c = Vec::new();
        run("different_name", 4, |g| c.push(g.seed()));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run("failures_propagate", 8, |_| panic!("deliberate"));
    }
}
