//! # cs-linalg
//!
//! Dense linear-algebra substrate for the collaborative-scoping workspace.
//!
//! Everything the paper's pipeline needs numerically lives here, implemented
//! from scratch (no external linear-algebra crates):
//!
//! - [`Matrix`] — a row-major dense `f64` matrix with the usual operations,
//! - [`svd`] — singular value decomposition (one-sided Jacobi, plus a
//!   Gram-matrix economy path for the common `rows ≪ cols` signature case),
//! - [`Pca`] — the PCA encoder–decoder used by both global scoping and the
//!   paper's local self-supervised models (Algorithm 1),
//! - [`stats`] — column means/variances, z-scores, distance helpers,
//! - [`SplitMix64`] / [`Xoshiro256`] — small seeded PRNGs so every
//!   experiment in the workspace is exactly reproducible.
//!
//! The signature matrices this workspace manipulates are short and wide
//! (hundreds of rows, 768 columns). The reference loops in [`matrix`] are
//! written for clarity and numerical robustness; large products dispatch
//! to the cache-tiled kernels of [`kernels`], which are pinned by
//! property tests to be **bit-identical** to the reference loops
//! (DESIGN.md §8) — blocking only reorders memory traffic, never
//! floating-point accumulation.

pub mod check;
pub mod config;
pub mod kernels;
pub mod matrix;
pub mod pca;
pub mod projection;
pub mod qr;
pub mod rng;
pub mod sanitize;
pub mod stats;
pub mod svd;
pub mod vecops;

pub use matrix::Matrix;
pub use pca::{ExplainedVariance, Pca, PcaConfig, PcaRehydrateError, PcaSolver, PcaTarget};
pub use projection::TruncatedProjection;
pub use qr::{qr, randomized_svd};
pub use rng::{SplitMix64, Xoshiro256};
pub use svd::{Svd, SvdError};
pub use vecops::total_cmp_f64;

/// Numerical tolerance used by iterative algorithms in this crate.
pub const EPS: f64 = 1e-12;
