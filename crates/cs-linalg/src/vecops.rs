//! Vector-level helpers shared by the embedder, ODAs, and matchers.

use crate::matrix::dot;

/// Euclidean (L2) norm.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Normalizes `v` in place to unit L2 norm; leaves zero vectors untouched.
pub fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// Cosine similarity in `[-1, 1]`; zero if either vector is all-zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Mean squared error between two equal-length vectors — the reconstruction
/// score the paper uses (Algorithm 1 line 14, Definition 4).
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    sq_euclidean(a, b) / a.len() as f64
}

/// Total-order comparator for `f64` suitable for `sort_by`/`max_by`/
/// `min_by`/`binary_search_by` closures where `partial_cmp(..).unwrap()`
/// would panic on NaN (the `no-float-sort-unwrap` lint rule).
///
/// The order is ascending with **every NaN after every real number** and
/// all NaNs equal to each other, so an ascending sort pushes NaN scores to
/// the back of a ranking (and `min_by` never selects one) instead of
/// aborting the process. Real numbers compare via [`f64::total_cmp`], which
/// also gives deterministic ties (`-0.0 < +0.0`), so rankings are
/// bit-reproducible run to run.
#[inline]
pub fn total_cmp_f64(a: &f64, b: &f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(b),
    }
}

/// `a + s·b` in place.
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += s * y;
    }
}

/// Index and value of the maximum element; `None` on empty input or if all
/// elements are NaN.
pub fn argmax(v: &[f64]) -> Option<(usize, f64)> {
    v.iter()
        .enumerate()
        .filter(|(_, x)| !x.is_nan())
        .fold(None, |best, (i, &x)| match best {
            Some((_, bx)) if bx >= x => best,
            _ => Some((i, x)),
        })
}

/// Index and value of the minimum element; `None` on empty input or if all
/// elements are NaN.
pub fn argmin(v: &[f64]) -> Option<(usize, f64)> {
    argmax(&v.iter().map(|x| -x).collect::<Vec<_>>()).map(|(i, x)| (i, -x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_normalize() {
        let mut v = vec![3.0, 4.0];
        assert!((norm(&v) - 5.0).abs() < 1e-12);
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_basic_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 0.2];
        let b = [1.1, 0.4, -0.9];
        let scaled: Vec<f64> = a.iter().map(|x| x * 42.0).collect();
        assert!((cosine(&a, &b) - cosine(&scaled, &b)).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&[1.0], &[4.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn mse_known_value() {
        assert!((mse(&[1.0, 2.0], &[3.0, 4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[3.0, -1.0]);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn argmax_argmin() {
        let v = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(argmax(&v), Some((2, 7.0)));
        assert_eq!(argmin(&v), Some((1, -1.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        let v = [1.0, f64::NAN, 0.5];
        assert_eq!(argmax(&v), Some((0, 1.0)));
    }

    #[test]
    fn total_cmp_orders_nan_last() {
        let mut v = vec![2.0, f64::NAN, -1.0, f64::NAN, 0.5];
        v.sort_by(total_cmp_f64);
        assert_eq!(&v[..3], &[-1.0, 0.5, 2.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn total_cmp_deterministic_ties() {
        use std::cmp::Ordering;
        assert_eq!(total_cmp_f64(&-0.0, &0.0), Ordering::Less);
        assert_eq!(total_cmp_f64(&f64::NAN, &f64::NAN), Ordering::Equal);
        assert_eq!(total_cmp_f64(&f64::INFINITY, &f64::NAN), Ordering::Less);
        assert_eq!(
            total_cmp_f64(&f64::NAN, &f64::NEG_INFINITY),
            Ordering::Greater
        );
        assert_eq!(total_cmp_f64(&1.0, &2.0), Ordering::Less);
    }

    #[test]
    fn min_by_never_selects_nan() {
        let v = [f64::NAN, 3.0, 1.0];
        let m = v.iter().copied().min_by(|a, b| total_cmp_f64(a, b));
        assert_eq!(m, Some(1.0));
    }
}
