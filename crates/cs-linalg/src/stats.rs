//! Column statistics and z-score helpers.

use crate::Matrix;

/// Column-wise mean of a matrix (the signature mean `μ_k` of Algorithm 1
/// line 3). Returns an all-zero vector for an empty matrix.
pub fn column_mean(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut mean = vec![0.0; cols];
    if rows == 0 {
        return mean;
    }
    for row in m.rows_iter() {
        for (acc, &v) in mean.iter_mut().zip(row.iter()) {
            *acc += v;
        }
    }
    let inv = 1.0 / rows as f64;
    for v in &mut mean {
        *v *= inv;
    }
    mean
}

/// Column-wise population variance.
pub fn column_variance(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mean = column_mean(m);
    let mut var = vec![0.0; cols];
    if rows == 0 {
        return var;
    }
    for row in m.rows_iter() {
        for ((acc, &v), &mu) in var.iter_mut().zip(row.iter()).zip(mean.iter()) {
            let d = v - mu;
            *acc += d * d;
        }
    }
    let inv = 1.0 / rows as f64;
    for v in &mut var {
        *v *= inv;
    }
    var
}

/// Column-wise population standard deviation.
pub fn column_std(m: &Matrix) -> Vec<f64> {
    column_variance(m).into_iter().map(f64::sqrt).collect()
}

/// Mean of a slice; 0 for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance of a slice; 0 for empty input.
pub fn variance(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mu = mean(v);
    v.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / v.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Per-row z-score magnitude of a signature matrix: the mean absolute
/// standardized deviation of each row from the column means. This is the
/// Z-score outlier score used by the scoping baseline (SciPy `zscore`
/// aggregated per element).
pub fn row_zscore_magnitude(m: &Matrix) -> Vec<f64> {
    let mean = column_mean(m);
    let std = column_std(m);
    m.rows_iter()
        .map(|row| {
            let mut acc = 0.0;
            let mut counted = 0usize;
            for ((&v, &mu), &sd) in row.iter().zip(mean.iter()).zip(std.iter()) {
                if sd > 0.0 {
                    acc += ((v - mu) / sd).abs();
                    counted += 1;
                }
            }
            if counted == 0 {
                0.0
            } else {
                acc / counted as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_mean_known() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(column_mean(&m), vec![2.0, 4.0]);
    }

    #[test]
    fn column_mean_empty() {
        assert_eq!(column_mean(&Matrix::zeros(0, 3)), vec![0.0; 3]);
    }

    #[test]
    fn column_variance_known() {
        let m = Matrix::from_rows(&[vec![1.0], vec![3.0]]);
        assert_eq!(column_variance(&m), vec![1.0]);
        assert_eq!(column_std(&m), vec![1.0]);
    }

    #[test]
    fn scalar_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn zscore_flags_outlier_row() {
        // Three tight rows plus one far-away row: the far row must get the
        // largest magnitude.
        let m = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![5.0, 5.0],
        ]);
        let scores = row_zscore_magnitude(&m);
        let (max_idx, _) = crate::vecops::argmax(&scores).unwrap();
        assert_eq!(max_idx, 3);
    }

    #[test]
    fn zscore_constant_columns_are_ignored() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 4.0]]);
        let scores = row_zscore_magnitude(&m);
        // First column constant: only the second contributes; both rows are
        // symmetric around the mean so their magnitudes are equal.
        assert!((scores[0] - scores[1]).abs() < 1e-12);
    }

    #[test]
    fn zscore_all_constant_gives_zero() {
        let m = Matrix::from_rows(&[vec![2.0, 2.0], vec![2.0, 2.0]]);
        assert_eq!(row_zscore_magnitude(&m), vec![0.0, 0.0]);
    }
}
