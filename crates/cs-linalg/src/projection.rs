//! Truncated-dimension projections for approximate-search prefilters.
//!
//! The ANN path in cs-match hashes and prefilters candidates in a cheap
//! low-dimensional space before the exact full-dimension rerank
//! (DESIGN.md §14). [`TruncatedProjection`] is that space: the leading
//! PCA components of the indexed data when a fit is possible, and a
//! plain coordinate truncation otherwise. The fallback matters — the
//! fault matrix pushes NaN-poisoned, empty, and zero-variance catalogs
//! through the index, and a prefilter that *fails to build* would turn a
//! data-quality fault into a pipeline abort. `fit` therefore never
//! errors: it degrades.
//!
//! Determinism contract: the PCA fit is performed in a canonical row
//! order (rows sorted lexicographically by `total_cmp`), so the fitted
//! basis — and every distance computed in the projected space — is
//! invariant to the order the caller assembled the rows in. This is what
//! makes the fused ranking's schema-permutation metamorphic property
//! hold even with the PCA prefilter enabled.

use crate::pca::{Pca, PcaConfig, PcaSolver};
use crate::vecops::total_cmp_f64;
use crate::Matrix;

/// A seeded projection onto a leading low-dimensional basis: PCA
/// components when the data supports a fit, coordinate truncation when
/// it does not (non-finite entries, too few rows, or a degenerate
/// spectrum).
#[derive(Debug, Clone)]
pub struct TruncatedProjection {
    /// `(mean, basis)` of the PCA fit (`out_dim × in_dim` basis rows);
    /// `None` means coordinate truncation.
    basis: Option<(Vec<f64>, Matrix)>,
    in_dim: usize,
    out_dim: usize,
}

impl TruncatedProjection {
    /// Fits a projection of at most `dims ≥ 1` output dimensions onto
    /// the rows of `data`.
    ///
    /// The PCA fit is attempted with the seeded truncated solver over a
    /// canonical (sorted) row order; any reason the fit cannot produce at
    /// least one component — non-finite input, fewer than two rows, rank
    /// collapse — selects the coordinate-truncation fallback instead of
    /// erroring.
    pub fn fit(data: &Matrix, dims: usize, seed: u64) -> Self {
        assert!(dims >= 1, "projection needs at least one output dim");
        let in_dim = data.cols();
        let fallback = Self {
            basis: None,
            in_dim,
            out_dim: dims.min(in_dim.max(1)),
        };
        if in_dim == 0 || data.rows() < 2 || dims >= in_dim || data.has_non_finite() {
            return fallback;
        }
        let target = dims.min(data.rows().saturating_sub(1));
        if target == 0 {
            return fallback;
        }
        // Canonical row order: the basis must not depend on how the
        // caller concatenated its schemas.
        let mut order: Vec<usize> = (0..data.rows()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (data.row(a), data.row(b));
            ra.iter()
                .zip(rb.iter())
                .map(|(x, y)| total_cmp_f64(x, y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let canonical = data.select_rows(&order);
        let config = PcaConfig::new()
            .with_components(target)
            .with_solver(PcaSolver::truncated())
            .with_seed(seed);
        match Pca::fit_with(&canonical, config) {
            Ok(pca) if pca.n_components() >= 1 => Self {
                basis: Some((pca.mean().to_vec(), pca.components().clone())),
                in_dim,
                out_dim: pca.n_components(),
            },
            _ => fallback,
        }
    }

    /// Input dimensionality the projection accepts.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality the projection produces.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// True when the fit degraded to plain coordinate truncation.
    pub fn is_coordinate(&self) -> bool {
        self.basis.is_none()
    }

    /// Projects one row vector.
    ///
    /// # Panics
    /// If `v.len()` differs from [`Self::in_dim`].
    pub fn project(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.in_dim, "projection input dim mismatch");
        match &self.basis {
            Some((mean, basis)) => basis
                .rows_iter()
                .map(|comp| {
                    comp.iter()
                        .zip(v.iter())
                        .zip(mean.iter())
                        .map(|((c, x), m)| c * (x - m))
                        .sum()
                })
                .collect(),
            None => v.iter().copied().take(self.out_dim).collect(),
        }
    }

    /// Projects every row of `m`, preserving row order.
    pub fn project_rows(&self, m: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..m.rows()).map(|i| self.project(m.row(i))).collect();
        if rows.is_empty() {
            Matrix::zeros(0, self.out_dim)
        } else {
            Matrix::from_rows(&rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    #[test]
    fn pca_fit_projects_to_requested_dims() {
        let data = random(40, 16, 3);
        let p = TruncatedProjection::fit(&data, 4, 7);
        assert!(!p.is_coordinate());
        assert_eq!(p.in_dim(), 16);
        assert_eq!(p.out_dim(), 4);
        assert_eq!(p.project(data.row(0)).len(), 4);
        let projected = p.project_rows(&data);
        assert_eq!((projected.rows(), projected.cols()), (40, 4));
    }

    #[test]
    fn fit_is_row_order_invariant() {
        let data = random(30, 8, 11);
        let reversed: Vec<Vec<f64>> = (0..data.rows())
            .rev()
            .map(|i| data.row(i).to_vec())
            .collect();
        let a = TruncatedProjection::fit(&data, 3, 5);
        let b = TruncatedProjection::fit(&Matrix::from_rows(&reversed), 3, 5);
        assert_eq!(a.project(data.row(0)), b.project(data.row(0)));
    }

    #[test]
    fn non_finite_data_falls_back_to_coordinates() {
        let mut data = random(10, 6, 2);
        data.row_mut(3)[1] = f64::NAN;
        let p = TruncatedProjection::fit(&data, 2, 1);
        assert!(p.is_coordinate());
        assert_eq!(p.project(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn degenerate_inputs_fall_back() {
        // Too few rows.
        let one = random(1, 5, 4);
        assert!(TruncatedProjection::fit(&one, 2, 1).is_coordinate());
        // Zero variance: every row identical.
        let flat = Matrix::from_fn(8, 5, |_, c| c as f64);
        let p = TruncatedProjection::fit(&flat, 2, 1);
        assert_eq!(p.project(flat.row(0)).len(), p.out_dim());
        // Requested dims at/above input dim.
        assert!(TruncatedProjection::fit(&random(10, 4, 6), 4, 1).is_coordinate());
        // Empty matrix.
        let p = TruncatedProjection::fit(&Matrix::zeros(0, 4), 2, 1);
        assert!(p.is_coordinate());
        assert_eq!(p.project_rows(&Matrix::zeros(0, 4)).rows(), 0);
    }

    #[test]
    fn projection_preserves_neighborhoods_roughly() {
        // A strongly planar cloud: PCA onto 2 dims keeps near pairs near.
        let mut rng = Xoshiro256::seed_from(9);
        let data = Matrix::from_fn(50, 12, |_, c| {
            let base = rng.next_gaussian();
            if c < 2 {
                base * 10.0
            } else {
                base * 0.01
            }
        });
        let p = TruncatedProjection::fit(&data, 2, 3);
        assert!(!p.is_coordinate());
        let a = p.project(data.row(0));
        let b = p.project(data.row(0));
        assert_eq!(a, b, "projection must be deterministic");
    }

    #[test]
    #[should_panic(expected = "at least one output dim")]
    fn zero_dims_panics() {
        TruncatedProjection::fit(&Matrix::zeros(2, 2), 0, 1);
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn wrong_input_dim_panics() {
        let p = TruncatedProjection::fit(&random(10, 4, 1), 2, 1);
        p.project(&[0.0; 3]);
    }
}
