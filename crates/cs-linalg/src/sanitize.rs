//! Runtime determinism sanitizer: lock-order recording and a
//! float-environment probe (DESIGN.md §12).
//!
//! The static rules of cs-lint (DESIGN.md §7) prove properties of the
//! *source*; this module observes the *run*. When enabled it records two
//! kinds of evidence, both deterministic and digestible:
//!
//! 1. **Lock-order graph.** Every instrumented lock site calls [`trace`]
//!    just before acquiring and holds the returned [`LockTrace`] for the
//!    guard's lifetime. While a thread holds lock `a` and acquires lock
//!    `b`, the edge `a → b` is recorded into a process-global graph. A
//!    cycle in that graph is a *deadlock potential*: two threads can
//!    interleave the cyclic acquisitions and block forever. The graph is
//!    a set (not a trace log), so its contents depend only on which
//!    nestings occurred, never on thread timing — identical across
//!    `CS_THREADS` settings by construction.
//! 2. **Float-environment probe.** Each participating thread evaluates a
//!    fixed battery of IEEE-754 edge cases ([`float_env_probe`]:
//!    subnormal survival, round-to-nearest-even, NaN propagation,
//!    overflow to infinity) and records the 64-bit digest of the
//!    results. If any two threads disagree — e.g. a worker runs with
//!    flush-to-zero or a different rounding mode — the probe *set* holds
//!    more than one value and the run is flagged: bit-identical results
//!    across workers (DESIGN.md §8) are impossible on drifting float
//!    environments.
//!
//! Everything is compiled unconditionally and gated at runtime: one
//! relaxed atomic load per instrumented site when off. The `sanitize`
//! cargo feature forces it on at build time; the `CS_SANITIZE` env knob
//! (read once, through [`crate::config`]) enables it per run —
//! `scripts/verify.sh` uses the knob to re-run the fault matrix
//! sanitized.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::config;

/// Enablement cache: 0 = undecided, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when the sanitizer records this run: the `sanitize` cargo feature
/// is active, the `CS_SANITIZE` environment knob is set, or a harness
/// called [`force`]. Decided once per process, then a single atomic load.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = cfg!(feature = "sanitize") || config::env_flag(config::SANITIZE);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides enablement for the rest of the process — for test harnesses
/// that cannot set environment variables (ambient-authority policy) but
/// need the instrumented paths live.
pub fn force(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The recorded evidence: nesting edges and per-thread float probes.
#[derive(Debug, Default)]
struct Evidence {
    /// `held → acquired` lock nestings observed anywhere in the process.
    edges: BTreeSet<(String, String)>,
    /// Distinct [`float_env_probe`] values across participating threads.
    probes: BTreeSet<u64>,
}

fn evidence() -> &'static Mutex<Evidence> {
    static EVIDENCE: OnceLock<Mutex<Evidence>> = OnceLock::new();
    EVIDENCE.get_or_init(|| Mutex::new(Evidence::default()))
}

thread_local! {
    /// Names of instrumented locks this thread currently holds, in
    /// acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII record of one instrumented lock acquisition; pops the thread's
/// held stack on drop. Hold it exactly as long as the real guard.
#[must_use = "drop order defines the recorded lock lifetime"]
#[derive(Debug)]
pub struct LockTrace {
    name: &'static str,
}

impl Drop for LockTrace {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|n| *n == self.name) {
                held.remove(pos);
            }
        });
    }
}

/// Records the acquisition of the named lock: one `held → name` edge for
/// every lock this thread already holds, then pushes `name` onto the
/// thread's held stack. Returns `None` (and records nothing) when the
/// sanitizer is off. Call immediately *before* the real acquisition so a
/// blocked acquire is still visible in the graph.
pub fn trace(name: &'static str) -> Option<LockTrace> {
    if !enabled() {
        return None;
    }
    HELD.with(|held| {
        let held_now: Vec<&'static str> = held.borrow().clone();
        if !held_now.is_empty() {
            // Poison recovery: the evidence is a monotone set, valid even
            // if another thread panicked mid-insert.
            let mut ev = evidence().lock().unwrap_or_else(|p| p.into_inner());
            for h in held_now {
                ev.edges.insert((h.to_string(), name.to_string()));
            }
        }
        held.borrow_mut().push(name);
    });
    Some(LockTrace { name })
}

/// Evaluates the fixed IEEE-754 battery on the calling thread and folds
/// the result bits into one FNV-1a digest. Two threads on the same
/// conforming float environment produce the same value; flush-to-zero,
/// directed rounding, or fast-math-style contraction each perturb it.
pub fn float_env_probe() -> u64 {
    // `black_box` keeps the battery an actual runtime computation on the
    // calling thread instead of a compile-time constant.
    use std::hint::black_box;
    let tiny = black_box(f64::MIN_POSITIVE) / black_box(2.0); // subnormal unless FTZ
    let rne = black_box(1.0_f64) + black_box(f64::EPSILON) / black_box(2.0);
    let repr = black_box(0.1_f64) + black_box(0.2_f64); // classic 0.30000000000000004
    let over = black_box(f64::MAX) * black_box(2.0); // +inf
    let nan = black_box(f64::NAN) + black_box(1.0);
    let fused = black_box(0.1_f64).mul_add(black_box(10.0), black_box(-1.0));
    let unfused = black_box(0.1_f64) * black_box(10.0) - black_box(1.0);
    let words = [
        tiny.to_bits(),
        rne.to_bits(),
        repr.to_bits(),
        over.to_bits(),
        u64::from(nan.is_nan()),
        fused.to_bits(),
        unfused.to_bits(),
        u64::from(tiny != 0.0), // subnormals survive
    ];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Records the calling thread's [`float_env_probe`] into the process-wide
/// probe set. No-op when the sanitizer is off. Instrumented executors call
/// this once per worker thread.
pub fn record_probe() {
    if !enabled() {
        return;
    }
    let probe = float_env_probe();
    evidence()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .probes
        .insert(probe);
}

/// Snapshot of the evidence gathered so far, with cycles elaborated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Sorted `held → acquired` nesting edges.
    pub edges: Vec<(String, String)>,
    /// Elementary cycles in the edge graph (each a deadlock potential),
    /// deterministically ordered; empty for a well-ordered run.
    pub cycles: Vec<Vec<String>>,
    /// Distinct per-thread float-environment probe values; more than one
    /// entry means the workers' float environments drifted.
    pub probes: Vec<u64>,
}

impl SanitizeReport {
    /// True when no deadlock potential and no float drift was observed.
    pub fn healthy(&self) -> bool {
        self.cycles.is_empty() && self.probes.len() <= 1
    }

    /// FNV-1a digest over the whole report — the "deadlock-potential
    /// digest" verify.sh compares across `CS_THREADS` settings. The
    /// inputs are sorted sets, so the digest is independent of thread
    /// timing and worker count.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (a, b) in &self.edges {
            eat(a.as_bytes());
            eat(b"->");
            eat(b.as_bytes());
            eat(b";");
        }
        eat(b"|cycles:");
        eat(&(self.cycles.len() as u64).to_le_bytes());
        eat(b"|probes:");
        for p in &self.probes {
            eat(&p.to_le_bytes());
        }
        h
    }

    /// The report restricted to edges whose lock names start with
    /// `prefix` — lets a test reason about its own locks while unrelated
    /// suites record into the same process-global graph.
    pub fn filtered(&self, prefix: &str) -> SanitizeReport {
        let edges: Vec<(String, String)> = self
            .edges
            .iter()
            .filter(|(a, b)| a.starts_with(prefix) && b.starts_with(prefix))
            .cloned()
            .collect();
        SanitizeReport {
            cycles: cycles_in(&edges),
            edges,
            probes: self.probes.clone(),
        }
    }
}

/// Builds the current [`SanitizeReport`] from the process-global evidence.
pub fn report() -> SanitizeReport {
    let ev = evidence().lock().unwrap_or_else(|p| p.into_inner());
    let edges: Vec<(String, String)> = ev.edges.iter().cloned().collect();
    let probes: Vec<u64> = ev.probes.iter().copied().collect();
    drop(ev);
    SanitizeReport {
        cycles: cycles_in(&edges),
        edges,
        probes,
    }
}

/// Clears all recorded evidence. The graph is process-global, so tests
/// sharing a process should prefer [`SanitizeReport::filtered`] over
/// resetting underneath each other.
pub fn reset() {
    let mut ev = evidence().lock().unwrap_or_else(|p| p.into_inner());
    ev.edges.clear();
    ev.probes.clear();
}

/// Elementary cycles of a lock-order graph, found by depth-first search
/// from every node in sorted order. Each cycle is reported once, rotated
/// so its lexicographically smallest node leads, as the node sequence
/// `[a, b, .., a]`-without-the-final-repeat. Deterministic: input edges
/// are sorted first and neighbors visited in sorted order.
pub fn cycles_in(edges: &[(String, String)]) -> Vec<Vec<String>> {
    let mut sorted: Vec<&(String, String)> = edges.iter().collect();
    sorted.sort();
    let mut adj: std::collections::BTreeMap<&str, Vec<&str>> = std::collections::BTreeMap::new();
    for (a, b) in sorted {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        dfs_cycles(start, &adj, &mut path, &mut cycles);
    }
    cycles.into_iter().collect()
}

fn dfs_cycles<'a>(
    node: &'a str,
    adj: &std::collections::BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(pos) = path.iter().position(|n| *n == next) {
            // Found a cycle: path[pos..] ++ next. Normalize rotation.
            let cyc: Vec<&str> = path[pos..].to_vec();
            let min_at = cyc
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let normalized: Vec<String> = (0..cyc.len())
                .map(|i| cyc[(min_at + i) % cyc.len()].to_string())
                .collect();
            cycles.insert(normalized);
            continue;
        }
        if path.len() > 64 {
            continue; // lock graphs are tiny; bound pathological inputs
        }
        path.push(next);
        dfs_cycles(next, adj, path, cycles);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let edges = vec![e("a", "b"), e("b", "c"), e("a", "c")];
        assert!(cycles_in(&edges).is_empty());
    }

    #[test]
    fn two_node_cycle_is_found_once() {
        let edges = vec![e("a", "b"), e("b", "a")];
        let cycles = cycles_in(&edges);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let edges = vec![e("a", "a")];
        assert_eq!(cycles_in(&edges), vec![vec!["a".to_string()]]);
    }

    #[test]
    fn three_node_cycle_normalized_rotation() {
        // Same cycle entered from every node: reported once, min-first.
        let edges = vec![e("c", "a"), e("a", "b"), e("b", "c")];
        let cycles = cycles_in(&edges);
        assert_eq!(
            cycles,
            vec![vec!["a".to_string(), "b".to_string(), "c".to_string()]]
        );
    }

    #[test]
    fn cycle_detection_is_deterministic() {
        let edges = vec![e("b", "a"), e("a", "b"), e("c", "d"), e("d", "c")];
        let first = cycles_in(&edges);
        let mut reversed: Vec<(String, String)> = edges.clone();
        reversed.reverse();
        assert_eq!(first, cycles_in(&reversed));
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn float_probe_is_stable_on_one_thread() {
        assert_eq!(float_env_probe(), float_env_probe());
    }

    #[test]
    fn float_probe_agrees_across_threads() {
        let here = float_env_probe();
        let there = std::thread::spawn(float_env_probe)
            .join()
            .expect("probe thread");
        assert_eq!(here, there, "float environment drifted between threads");
    }

    #[test]
    fn digest_depends_on_edges_and_probes() {
        let base = SanitizeReport {
            edges: vec![e("a", "b")],
            cycles: Vec::new(),
            probes: vec![1],
        };
        let mut other = base.clone();
        other.edges.push(e("b", "c"));
        assert_ne!(base.digest(), other.digest());
        let mut drifted = base.clone();
        drifted.probes.push(2);
        assert_ne!(base.digest(), drifted.digest());
        assert_eq!(base.digest(), base.clone().digest());
    }

    #[test]
    fn healthy_flags_cycles_and_drift() {
        let ok = SanitizeReport {
            edges: vec![e("a", "b")],
            cycles: Vec::new(),
            probes: vec![1],
        };
        assert!(ok.healthy());
        let cyc = SanitizeReport {
            cycles: vec![vec!["a".to_string()]],
            ..ok.clone()
        };
        assert!(!cyc.healthy());
        let drift = SanitizeReport {
            probes: vec![1, 2],
            ..ok
        };
        assert!(!drift.healthy());
    }

    #[test]
    fn filtered_restricts_edges_and_recomputes_cycles() {
        let rep = SanitizeReport {
            edges: vec![e("fx.a", "fx.b"), e("fx.b", "fx.a"), e("pool.x", "fx.a")],
            cycles: Vec::new(),
            probes: vec![7],
        };
        let fx = rep.filtered("fx.");
        assert_eq!(fx.edges.len(), 2);
        assert_eq!(fx.cycles.len(), 1);
        let pool = rep.filtered("pool.");
        assert!(pool.edges.is_empty() && pool.cycles.is_empty());
    }

    #[test]
    fn trace_records_nesting_edges_when_forced() {
        // Process-global state: use unique names and filter on them.
        force(true);
        {
            let _a = trace("sanitest.outer");
            let _b = trace("sanitest.inner");
        }
        record_probe();
        let rep = report().filtered("sanitest.");
        assert_eq!(
            rep.edges,
            vec![e("sanitest.outer", "sanitest.inner")],
            "nesting edge recorded"
        );
        assert!(rep.cycles.is_empty());
        // Stack popped: a fresh acquisition records no new edge pair.
        {
            let _c = trace("sanitest.solo");
        }
        let rep = report().filtered("sanitest.solo");
        assert!(rep.edges.is_empty());
    }
}
