//! The workspace's single entry point for environment knobs.
//!
//! `no-ambient-authority` (DESIGN.md §7) bans `std::env::var` and clock
//! reads in library code: ambient process state reaching a numeric path is
//! exactly how two "identical" runs diverge. Every environment override
//! the workspace honors is therefore declared and read *here* — this
//! module (and the bench crate) are the designated exemptions — and
//! callers receive plain values they can thread through their APIs.
//!
//! Knobs are read at call time, not cached: tests that set and unset
//! variables see their changes, and the cost is one syscall on paths that
//! are never hot.

/// Property-test case-count override honored by [`crate::check::cases`].
pub const PROP_CASES: &str = "CS_PROP_CASES";

/// Worker-count override honored by `cs_core::pool::ThreadPool::from_env`.
pub const THREADS: &str = "CS_THREADS";

/// Opt-in flag for the full golden corpus under debug profiles
/// (`crates/cs-repro/tests/golden.rs`).
pub const GOLDEN_FULL: &str = "CS_GOLDEN_FULL";

/// Opt-in flag for the runtime determinism sanitizer
/// ([`crate::sanitize`]): lock-order recording plus the per-worker
/// float-environment probe. The `sanitize` cargo feature forces the same
/// switch at build time.
pub const SANITIZE: &str = "CS_SANITIZE";

/// Raw value of an environment knob, if set and valid UTF-8.
pub fn env_knob(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// An environment knob parsed as `usize`; `None` when unset or
/// unparseable.
pub fn env_usize(name: &str) -> Option<usize> {
    env_knob(name).and_then(|s| s.trim().parse().ok())
}

/// True when an environment flag is set at all (any value, even empty).
pub fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process environment is shared across test threads; these tests only
    // touch names no other suite reads.

    #[test]
    fn unset_knobs_are_none() {
        assert_eq!(env_knob("CS_LINT_TEST_UNSET_KNOB"), None);
        assert_eq!(env_usize("CS_LINT_TEST_UNSET_KNOB"), None);
        assert!(!env_flag("CS_LINT_TEST_UNSET_KNOB"));
    }

    #[test]
    fn set_knobs_round_trip() {
        std::env::set_var("CS_LINT_TEST_SET_KNOB", " 42 ");
        assert_eq!(env_knob("CS_LINT_TEST_SET_KNOB").as_deref(), Some(" 42 "));
        assert_eq!(env_usize("CS_LINT_TEST_SET_KNOB"), Some(42));
        assert!(env_flag("CS_LINT_TEST_SET_KNOB"));
        std::env::remove_var("CS_LINT_TEST_SET_KNOB");
    }

    #[test]
    fn garbage_usize_is_none() {
        std::env::set_var("CS_LINT_TEST_BAD_KNOB", "not a number");
        assert_eq!(env_usize("CS_LINT_TEST_BAD_KNOB"), None);
        std::env::remove_var("CS_LINT_TEST_BAD_KNOB");
    }
}
