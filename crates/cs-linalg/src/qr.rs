//! Thin QR factorization (modified Gram–Schmidt) and randomized SVD.
//!
//! Signature sets in this workspace are small, but downstream users may
//! scope catalogs with thousands of elements; [`randomized_svd`] provides
//! the standard Halko–Martinsson–Tropp sketching path: sample the range
//! with a Gaussian test matrix, orthonormalize, and decompose the small
//! projected problem. Accuracy against the exact decomposition is pinned
//! by tests and benchmarked in `cs-bench`.

use crate::rng::Xoshiro256;
use crate::svd::{Svd, SvdError};
use crate::Matrix;

/// Thin QR of `a` (`m × n`, `m ≥ n` not required): returns `(Q, R)` with
/// `Q: m × r`, `R: r × n`, `r = min(m, n)`, `Q` having orthonormal columns
/// (zero columns where `a` is rank-deficient) and `a ≈ Q·R`.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let r = m.min(n);
    // Column-major working copy of the first r columns processed over all n.
    let mut q = Matrix::zeros(m, r);
    let mut rmat = Matrix::zeros(r, n);
    // Modified Gram–Schmidt over columns of `a`.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(r);
    for j in 0..n {
        let mut v = a.col(j);
        for (i, qcol) in basis.iter().enumerate() {
            let proj = crate::matrix::dot(qcol, &v);
            rmat[(i, j)] = proj;
            crate::vecops::axpy(&mut v, -proj, qcol);
            // Second orthogonalization pass for stability.
            let proj2 = crate::matrix::dot(qcol, &v);
            rmat[(i, j)] += proj2;
            crate::vecops::axpy(&mut v, -proj2, qcol);
        }
        if basis.len() < r {
            let norm = crate::vecops::norm(&v);
            if norm > 1e-12 {
                for x in &mut v {
                    *x /= norm;
                }
                rmat[(basis.len(), j)] = norm;
                basis.push(v);
            } else {
                // Rank-deficient column: record a zero basis vector slot
                // only if we still owe columns to Q (keeps shapes fixed).
                basis.push(vec![0.0; m]);
            }
        }
    }
    while basis.len() < r {
        basis.push(vec![0.0; m]);
    }
    for (j, col) in basis.iter().enumerate() {
        for i in 0..m {
            q[(i, j)] = col[i];
        }
    }
    (q, rmat)
}

/// Randomized truncated SVD: the best rank-`rank` approximation of `a`,
/// sketched with `oversample` extra Gaussian probes and `power_iters`
/// subspace iterations (0–2 is typical; more sharpens decaying spectra).
pub fn randomized_svd(
    a: &Matrix,
    rank: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Result<Svd, SvdError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SvdError::EmptyMatrix);
    }
    if a.has_non_finite() {
        return Err(SvdError::NonFiniteInput);
    }
    assert!(rank >= 1, "rank must be at least 1");
    let (m, n) = a.shape();
    let sketch = (rank + oversample).min(m.min(n));

    // Range sampling: Y = A·Ω with Gaussian Ω (n × sketch).
    let mut rng = Xoshiro256::seed_from(seed);
    let omega = Matrix::from_fn(n, sketch, |_, _| rng.next_gaussian());
    let mut y = a.matmul(&omega);
    // Power iterations with re-orthonormalization: Y ← A·(Aᵀ·Y).
    for _ in 0..power_iters {
        let (qy, _) = qr(&y);
        let at_q = a.transpose().matmul(&qy);
        let (qz, _) = qr(&at_q);
        y = a.matmul(&qz);
    }
    let (q, _) = qr(&y); // m × sketch

    // Project: B = Qᵀ·A (sketch × n) — small; decompose exactly.
    let b = q.transpose().matmul(a);
    let svd_b = Svd::compute(&b)?;

    // Lift: U = Q·U_B, truncate to `rank`.
    let u_full = q.matmul(&svd_b.u);
    let keep = rank.min(svd_b.singular_values.len());
    let mut u = Matrix::zeros(m, keep);
    for i in 0..m {
        for j in 0..keep {
            u[(i, j)] = u_full[(i, j)];
        }
    }
    let idx: Vec<usize> = (0..keep).collect();
    Ok(Svd {
        u,
        singular_values: svd_b.singular_values[..keep].to_vec(),
        vt: svd_b.vt.select_rows(&idx),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
    }

    /// Low-rank matrix plus small noise.
    fn low_rank_plus_noise(m: usize, n: usize, rank: usize, noise: f64, seed: u64) -> Matrix {
        let a = random_matrix(m, rank, seed);
        let b = random_matrix(rank, n, seed + 1);
        let mut out = a.matmul(&b);
        let mut rng = Xoshiro256::seed_from(seed + 2);
        for x in out.as_mut_slice() {
            *x += rng.next_gaussian() * noise;
        }
        out
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal() {
        let a = random_matrix(10, 6, 1);
        let (q, r) = qr(&a);
        assert_eq!(q.shape(), (10, 6));
        assert_eq!(r.shape(), (6, 6));
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
        let gram = q.transpose().matmul(&q);
        assert!(gram.max_abs_diff(&Matrix::identity(6)) < 1e-10);
    }

    #[test]
    fn qr_wide_matrix() {
        let a = random_matrix(4, 9, 2);
        let (q, r) = qr(&a);
        assert_eq!(q.shape(), (4, 4));
        assert_eq!(r.shape(), (4, 9));
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 2.0],
            vec![0.0, 0.0, 1.0],
            vec![2.0, 2.0, 0.0],
        ]);
        let (q, r) = qr(&a);
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
        // R's diagonal shows the rank deficiency.
        assert!(r[(1, 1)].abs() < 1e-10);
    }

    #[test]
    fn randomized_svd_recovers_low_rank_spectrum() {
        let a = low_rank_plus_noise(40, 30, 5, 1e-6, 3);
        let exact = Svd::compute(&a).unwrap();
        let approx = randomized_svd(&a, 5, 5, 1, 42).unwrap();
        for i in 0..5 {
            let rel = (approx.singular_values[i] - exact.singular_values[i]).abs()
                / exact.singular_values[i];
            assert!(rel < 1e-6, "σ_{i}: {rel}");
        }
        // Rank-5 reconstruction matches the matrix up to noise.
        assert!(approx.reconstruct().max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn randomized_svd_with_noise_approximates_top_values() {
        let a = low_rank_plus_noise(60, 50, 8, 0.05, 5);
        let exact = Svd::compute(&a).unwrap();
        let approx = randomized_svd(&a, 8, 8, 2, 7).unwrap();
        for i in 0..8 {
            let rel = (approx.singular_values[i] - exact.singular_values[i]).abs()
                / exact.singular_values[i];
            assert!(rel < 0.05, "σ_{i} off by {rel}");
        }
    }

    #[test]
    fn randomized_svd_rejects_bad_input() {
        assert!(matches!(
            randomized_svd(&Matrix::zeros(0, 4), 2, 2, 0, 1),
            Err(SvdError::EmptyMatrix)
        ));
        let mut nan = Matrix::zeros(2, 2);
        nan[(0, 0)] = f64::NAN;
        assert!(matches!(
            randomized_svd(&nan, 1, 1, 0, 1),
            Err(SvdError::NonFiniteInput)
        ));
    }

    #[test]
    fn randomized_svd_rank_clamps() {
        let a = random_matrix(5, 4, 9);
        let svd = randomized_svd(&a, 10, 4, 0, 1).unwrap();
        assert!(svd.singular_values.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "rank must be at least 1")]
    fn zero_rank_panics() {
        let a = random_matrix(3, 3, 10);
        let _ = randomized_svd(&a, 0, 1, 0, 1);
    }
}
