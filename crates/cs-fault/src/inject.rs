//! Seeded signature-level fault injectors.
//!
//! These corruptors operate on an encoded [`SchemaSignatures`] catalog —
//! the representation where numeric faults (NaN/Inf entries, collapsed
//! variance) actually live. They are pure functions of their inputs: the
//! same seed always poisons the same entry, so every harness run is
//! reproducible bit-for-bit.

use cs_core::SchemaSignatures;
use cs_linalg::{Matrix, Xoshiro256};

/// Returns a copy of `sigs` where one seeded entry of schema `schema` is
/// replaced by `value` (typically `f64::NAN` or `f64::INFINITY`).
///
/// The poisoned position is drawn from [`Xoshiro256`] seeded with `seed`,
/// so a fault case names a seed, not a coordinate — and still corrupts
/// the identical entry on every run.
///
/// # Panics
/// If `schema` is out of range or has no elements (nothing to poison).
pub fn poison_non_finite(
    sigs: &SchemaSignatures,
    schema: usize,
    value: f64,
    seed: u64,
) -> SchemaSignatures {
    let target = sigs.schema(schema);
    assert!(
        target.rows() > 0 && target.cols() > 0,
        "cannot poison an empty schema"
    );
    let mut rng = Xoshiro256::seed_from(seed);
    let row = rng.next_below(target.rows());
    let col = rng.next_below(target.cols());
    let mut poisoned = target.clone();
    poisoned[(row, col)] = value;
    rebuild(sigs, schema, poisoned)
}

/// Returns a copy of `sigs` where every signature of schema `schema` is
/// overwritten with that schema's first row — a zero-variance
/// (rank-deficient) matrix, the numeric analog of a catalog whose
/// serialized metadata is all identical.
///
/// # Panics
/// If `schema` is out of range or has no elements.
pub fn flatten_schema(sigs: &SchemaSignatures, schema: usize) -> SchemaSignatures {
    let target = sigs.schema(schema);
    assert!(target.rows() > 0, "cannot flatten an empty schema");
    let first = target.row(0).to_vec();
    let flat = Matrix::from_rows(&vec![first; target.rows()]);
    rebuild(sigs, schema, flat)
}

/// Re-assembles a signature catalog with schema `schema` replaced.
fn rebuild(sigs: &SchemaSignatures, schema: usize, replacement: Matrix) -> SchemaSignatures {
    let mats: Vec<Matrix> = (0..sigs.schema_count())
        .map(|m| {
            if m == schema {
                replacement.clone()
            } else {
                sigs.schema(m).clone()
            }
        })
        .collect();
    SchemaSignatures::from_matrices(mats, sigs.schema_names().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> SchemaSignatures {
        let mut rng = Xoshiro256::seed_from(7);
        let mats: Vec<Matrix> = [4usize, 6]
            .iter()
            .map(|&n| Matrix::from_fn(n, 5, |_, _| rng.next_gaussian()))
            .collect();
        SchemaSignatures::from_matrices(mats, vec!["A".into(), "B".into()])
    }

    #[test]
    fn poison_is_seed_deterministic_and_single_entry() {
        let base = sigs();
        let a = poison_non_finite(&base, 1, f64::NAN, 42);
        let b = poison_non_finite(&base, 1, f64::NAN, 42);
        // Same seed → same poisoned entry.
        assert_eq!(
            a.schema(1).first_non_finite(),
            b.schema(1).first_non_finite()
        );
        // Exactly one entry differs; the untouched schema is identical.
        let diffs = a
            .schema(1)
            .rows_iter()
            .flatten()
            .zip(base.schema(1).rows_iter().flatten())
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(a.schema(0), base.schema(0));
    }

    #[test]
    fn different_seeds_can_hit_different_entries() {
        let base = sigs();
        let spots: std::collections::BTreeSet<(usize, usize)> = (0u64..20)
            .map(|seed| {
                poison_non_finite(&base, 1, f64::NAN, seed)
                    .schema(1)
                    .first_non_finite()
                    .expect("poisoned")
            })
            .collect();
        assert!(spots.len() > 1, "seeds all collided: {spots:?}");
    }

    #[test]
    fn flatten_collapses_variance() {
        let base = sigs();
        let flat = flatten_schema(&base, 0);
        let m = flat.schema(0);
        let first: Vec<f64> = m.row(0).to_vec();
        for r in m.rows_iter() {
            assert_eq!(r, &first[..]);
        }
        // Other schema untouched; names survive.
        assert_eq!(flat.schema(1), base.schema(1));
        assert_eq!(flat.schema_names(), base.schema_names());
    }

    #[test]
    #[should_panic(expected = "empty schema")]
    fn poisoning_empty_schema_panics() {
        let empty = SchemaSignatures::from_matrices(
            vec![Matrix::zeros(0, 5), Matrix::zeros(2, 5)],
            vec!["E".into(), "F".into()],
        );
        poison_non_finite(&empty, 0, f64::NAN, 1);
    }
}
