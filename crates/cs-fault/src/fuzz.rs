//! Generator-driven fuzzing: the fault matrix replayed over a knob
//! lattice.
//!
//! The 15-case matrix in [`crate::harness`] pins the failure model on
//! *one* small catalog. This module widens that to a seeded family: a
//! deterministic lattice over the generator knobs (linkable ratio,
//! lexicon overlap, naming noise, subtype depth, size distribution)
//! produces ≥ 20 distinct catalogs, and [`run_fuzz`] replays the full
//! matrix on each under every supplied execution policy. Two digests
//! guard each catalog: the matrix digest (stage lines must be
//! byte-identical across policies — harness invariant) and the dataset
//! codec digest (the generator itself must be byte-deterministic). Both
//! fold into one overall FNV-1a digest that `verify.sh` compares across
//! `CS_THREADS ∈ {1, 2, 8}`; any thread-count-dependent behaviour in the
//! generator, the encoder, or any fault path moves the digest.
//!
//! Everything is index-arithmetic deterministic — no wall clock, no
//! ambient randomness — so a digest mismatch is a real defect, never
//! flake.

use cs_core::pool::ExecPolicy;
use cs_datasets::codec::dataset_digest;
use cs_datasets::synthetic::{try_generate, SizeDistribution, SyntheticConfig};

use crate::harness::run_matrix_on;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The linkable-ratio axis: legacy counts, empty positive class, and two
/// derived fractions.
const RATIOS: [Option<f64>; 4] = [None, Some(0.0), Some(0.45), Some(0.9)];
/// The lexicon-overlap axis. The 40-concept pool keeps even the 0.25
/// point's accessible region (10 common + 10 private) above the largest
/// derived pick count, so every lattice point is valid by construction.
const OVERLAPS: [f64; 3] = [1.0, 0.5, 0.25];

/// The deterministic knob lattice: 24 labeled configs (4 ratios ×
/// 3 overlaps × 2 noise/structure variants), each with its own seed.
/// All points keep `schemas = 3` — the poison recipes target schema
/// indices 1 and 2 — and stay small enough that the full replay fits the
/// verify smoke budget.
pub fn knob_lattice() -> Vec<(String, SyntheticConfig)> {
    let mut lattice = Vec::new();
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        for (oi, &overlap) in OVERLAPS.iter().enumerate() {
            for vi in 0..2 {
                let idx = lattice.len();
                let noise = if vi == 1 { 0.6 } else { 0.0 };
                let subtype_depth = if (ri + oi + vi) % 2 == 1 { 2 } else { 0 };
                let sizes = match (ri + oi) % 3 {
                    0 => SizeDistribution::Fixed,
                    1 => SizeDistribution::Uniform { min: 6, max: 11 },
                    _ => SizeDistribution::Ramp { min: 5, max: 12 },
                };
                let config = SyntheticConfig {
                    schemas: 3,
                    shared_concepts: 40,
                    concepts_per_schema: 6,
                    private_per_schema: 5,
                    table_width: 5,
                    alien_elements: 0,
                    linkable_ratio: ratio,
                    lexicon_overlap: overlap,
                    naming_noise: noise,
                    subtype_depth,
                    sizes,
                    seed: 0xF0_0D + idx as u64,
                };
                let ratio_tag = match ratio {
                    None => "legacy".to_string(),
                    Some(r) => format!("r{:02}", (r * 100.0) as u32),
                };
                let dist_tag = match sizes {
                    SizeDistribution::Fixed => "fix",
                    SizeDistribution::Uniform { .. } => "uni",
                    SizeDistribution::Ramp { .. } => "ramp",
                };
                let label = format!(
                    "lat{idx:02}-{ratio_tag}-o{:02}-n{:02}-d{subtype_depth}-{dist_tag}",
                    (overlap * 100.0) as u32,
                    (noise * 100.0) as u32,
                );
                lattice.push((label, config));
            }
        }
    }
    lattice
}

/// One fuzzed catalog's verdict.
#[derive(Debug, Clone)]
pub struct FuzzCatalog {
    /// Lattice label encoding the knob point.
    pub label: String,
    /// Fault-matrix digest (policy-invariant by harness construction).
    pub matrix_digest: u64,
    /// Codec digest of the generated baseline dataset.
    pub dataset_digest: u64,
}

/// The verified result of a full fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Per-catalog verdicts in lattice order.
    pub catalogs: Vec<FuzzCatalog>,
    /// FNV-1a fold of every label and digest — the single value the
    /// verify loop compares across thread counts.
    pub digest: u64,
}

/// Replays the fault matrix over every lattice catalog under every named
/// policy.
///
/// # Errors
/// The first invalid lattice config (a lattice bug), generator
/// nondeterminism, or matrix divergence, with the offending label.
pub fn run_fuzz(execs: &[(&str, ExecPolicy)]) -> Result<FuzzReport, String> {
    run_fuzz_on(&knob_lattice(), execs)
}

fn run_fuzz_on(
    lattice: &[(String, SyntheticConfig)],
    execs: &[(&str, ExecPolicy)],
) -> Result<FuzzReport, String> {
    let mut catalogs = Vec::new();
    let mut digest = FNV_BASIS;
    let fold = |d: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *d ^= u64::from(b);
            *d = d.wrapping_mul(FNV_PRIME);
        }
    };
    for (label, config) in lattice {
        let dataset = try_generate(config)
            .map_err(|e| format!("{label}: lattice produced an invalid config: {e}"))?;
        let ds_digest = dataset_digest(&dataset);
        let replay =
            dataset_digest(&try_generate(config).expect("validated config must regenerate"));
        if replay != ds_digest {
            return Err(format!(
                "{label}: generator is nondeterministic: {ds_digest:016x} vs {replay:016x}"
            ));
        }
        let matrix = run_matrix_on(config, execs).map_err(|e| format!("{label}: {e}"))?;
        fold(&mut digest, label.as_bytes());
        fold(&mut digest, &matrix.digest.to_le_bytes());
        fold(&mut digest, &ds_digest.to_le_bytes());
        catalogs.push(FuzzCatalog {
            label: label.clone(),
            matrix_digest: matrix.digest,
            dataset_digest: ds_digest,
        });
    }
    Ok(FuzzReport { catalogs, digest })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_at_least_twenty_distinct_valid_points() {
        let lattice = knob_lattice();
        assert!(lattice.len() >= 20, "lattice shrank: {}", lattice.len());
        let mut digests = std::collections::BTreeSet::new();
        for (label, config) in &lattice {
            let ds = try_generate(config).unwrap_or_else(|e| panic!("{label}: {e}"));
            digests.insert(dataset_digest(&ds));
        }
        assert_eq!(
            digests.len(),
            lattice.len(),
            "lattice points must generate distinct catalogs"
        );
    }

    #[test]
    fn lattice_varies_every_knob() {
        let lattice = knob_lattice();
        let distinct = |f: &dyn Fn(&SyntheticConfig) -> String| {
            lattice
                .iter()
                .map(|(_, c)| f(c))
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        assert!(distinct(&|c| format!("{:?}", c.linkable_ratio)) >= 4);
        assert!(distinct(&|c| format!("{}", c.lexicon_overlap)) >= 3);
        assert!(distinct(&|c| format!("{}", c.naming_noise)) >= 2);
        assert!(distinct(&|c| format!("{}", c.subtype_depth)) >= 2);
        assert!(distinct(&|c| format!("{:?}", c.sizes)) >= 3);
    }

    #[test]
    fn fuzz_digest_is_reproducible_across_runs() {
        // A lattice prefix and one policy keep the debug-build runtime
        // sane; the bin and verify.sh cover the full lattice under
        // multiple policies in release.
        let lattice = &knob_lattice()[..3];
        let execs = [("seq", ExecPolicy::Sequential)];
        let a = run_fuzz_on(lattice, &execs).expect("fuzz run a");
        let b = run_fuzz_on(lattice, &execs).expect("fuzz run b");
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.catalogs.len(), lattice.len());
    }
}
