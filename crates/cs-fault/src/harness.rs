//! The fault-case matrix and the deterministic stage runner.
//!
//! A [`FaultCase`] names one degenerate scenario; [`run_case`] pushes it
//! through every pipeline stage under one [`ExecPolicy`] and reports each
//! stage's outcome as a plain text line. The lines mention **what**
//! happened (kept counts, typed error displays, degraded-schema records)
//! but never **how** it executed, so [`run_matrix`] can require the full
//! matrix to be byte-identical across execution policies — the fault
//! paths obey the same determinism contract (DESIGN.md §8) as the happy
//! paths.
//!
//! A stage that *panics* (instead of returning a typed error) produces a
//! `PANIC-ESCAPED:` line. No case may ever emit one; the in-crate tests
//! and the `fault_smoke` binary both fail hard on it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cs_core::pool::{fault, global, ExecPolicy};
use cs_core::{
    CollaborativeScoper, CollaborativeSweep, CombinationRule, GlobalScoper, SchemaSignatures,
    ScopingError,
};
use cs_datasets::synthetic::{
    all_unlinkable, with_duplicate_schema, with_empty_schema, with_singleton_schema,
    SyntheticConfig,
};
use cs_embed::SignatureEncoder;
use cs_linalg::PcaSolver;
use cs_match::{AnnConfig, AnnMatcher, ElementSet, Matcher, SimMatcher};
use cs_oda::ZScoreDetector;

use crate::inject::{flatten_schema, poison_non_finite};

/// The explained variance the strict scoper stage runs at.
const STRICT_V: f64 = 0.85;
/// The grid the sweep stage evaluates.
const GRID: [f64; 3] = [0.9, 0.6, 0.3];
/// The keep fraction of the global-scoping stage.
const GLOBAL_P: f64 = 0.5;
/// The cosine threshold of the matcher stage.
const SIM_T: f64 = 0.6;
/// The neighbor count of the ANN matcher stage.
const ANN_K: usize = 2;

/// How a fault case manufactures its input.
#[derive(Debug, Clone, Copy)]
pub enum Scenario {
    /// Run the signature pipeline on a manufactured signature catalog.
    Signatures(SigRecipe),
    /// Healthy catalog, but the pool fault hook panics in chunk 0.
    WorkerPanic,
    /// Healthy catalog driven with out-of-range parameters everywhere.
    InvalidParams,
}

/// A named signature-catalog construction, parameterized by the base
/// [`SyntheticConfig`] so the same 15-case matrix can replay over any
/// generated catalog (the fuzz driver feeds it a knob lattice). Recipes
/// that poison a specific schema index require `config.schemas >= 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigRecipe {
    /// The healthy catalog as generated.
    Baseline,
    /// Healthy catalog plus an appended zero-element schema.
    EmptySchema,
    /// Healthy catalog plus an appended single-element schema.
    SingletonSchema,
    /// Healthy catalog plus a schema of identical serializations.
    DuplicateSignatures,
    /// The all-private (`linkable_ratio = 0`) variant.
    AllUnlinkable,
    /// Baseline with seeded NaNs planted in schema 1.
    PoisonNan,
    /// Baseline with seeded infinities planted in schema 2.
    PoisonInf,
    /// Baseline with schema 0 flattened to zero variance.
    Flattened,
    /// No schemas at all (config-independent).
    EmptyCatalog,
    /// The gaussian solver-probe catalog with a NaN in schema 1
    /// (config-independent; exercises every pinned eigensolver).
    SolverProbePoison,
}

impl SigRecipe {
    /// Materializes the signature catalog this recipe describes on top of
    /// `config`.
    pub fn build(self, config: &SyntheticConfig) -> SchemaSignatures {
        let baseline = || encode(&cs_datasets::synthetic::generate(config));
        match self {
            SigRecipe::Baseline => baseline(),
            SigRecipe::EmptySchema => encode(&with_empty_schema(config)),
            SigRecipe::SingletonSchema => encode(&with_singleton_schema(config)),
            SigRecipe::DuplicateSignatures => encode(&with_duplicate_schema(config, 4)),
            SigRecipe::AllUnlinkable => encode(&all_unlinkable(config)),
            SigRecipe::PoisonNan => poison_non_finite(&baseline(), 1, f64::NAN, 0xBAD),
            SigRecipe::PoisonInf => poison_non_finite(&baseline(), 2, f64::INFINITY, 0xBAD),
            SigRecipe::Flattened => flatten_schema(&baseline(), 0),
            SigRecipe::EmptyCatalog => SchemaSignatures::from_matrices(vec![], vec![]),
            SigRecipe::SolverProbePoison => poisoned_solver_probe(),
        }
    }
}

/// One named scenario plus the substring its report must contain.
#[derive(Debug, Clone, Copy)]
pub struct FaultCase {
    /// Stable case name (sorted output key).
    pub name: &'static str,
    /// Input recipe.
    pub scenario: Scenario,
    /// A substring the joined stage lines must contain ("" = no
    /// constraint beyond determinism and panic-freedom).
    pub expect: &'static str,
    /// The PCA eigensolver the signature stages pin — every solver must
    /// surface the same typed errors and obey the same determinism
    /// contract, so the matrix re-runs the poison scenarios under each.
    pub solver: PcaSolver,
}

/// The small synthetic catalog every scenario starts from. Kept tiny so
/// the whole matrix (cases × policies) stays inside the verify smoke
/// budget.
fn base_config() -> SyntheticConfig {
    SyntheticConfig {
        schemas: 3,
        shared_concepts: 12,
        concepts_per_schema: 8,
        private_per_schema: 4,
        table_width: 4,
        alien_elements: 0,
        seed: 0xFA_17,
        ..SyntheticConfig::default()
    }
}

fn encode(ds: &cs_datasets::Dataset) -> SchemaSignatures {
    cs_core::encode_catalog(&SignatureEncoder::default(), &ds.catalog)
}

/// A small gaussian catalog for the per-solver poison cases: enough
/// structure to train, small enough that even the FullSvd reference is
/// instant under every policy.
fn solver_probe_sigs() -> SchemaSignatures {
    use cs_linalg::{Matrix, Xoshiro256};
    let mut rng = Xoshiro256::seed_from(0x501_7E2);
    let mats = vec![
        Matrix::from_fn(8, 12, |_, _| rng.next_gaussian()),
        Matrix::from_fn(9, 12, |_, _| rng.next_gaussian()),
        Matrix::from_fn(7, 12, |_, _| rng.next_gaussian()),
    ];
    SchemaSignatures::from_matrices(mats, vec!["P".into(), "Q".into(), "R".into()])
}

/// The solver-probe catalog with one NaN planted in schema 1: the strict
/// scoper must reject it with the same typed error under every solver,
/// while the sweep degrades schema 1 and still fits the healthy schemas
/// with the pinned solver.
fn poisoned_solver_probe() -> SchemaSignatures {
    poison_non_finite(&solver_probe_sigs(), 1, f64::NAN, 0xBAD)
}

/// The full fault matrix: catalog-level, signature-level, parameter-level
/// and runtime-level faults, plus the poison scenario re-run under every
/// pinned [`PcaSolver`].
pub fn cases() -> Vec<FaultCase> {
    let auto = |name, scenario, expect| FaultCase {
        name,
        scenario,
        expect,
        solver: PcaSolver::Auto,
    };
    let mut cases = vec![
        auto(
            "baseline",
            Scenario::Signatures(SigRecipe::Baseline),
            "scoper: kept=",
        ),
        auto(
            "empty_schema",
            Scenario::Signatures(SigRecipe::EmptySchema),
            "has no elements",
        ),
        auto(
            "singleton_schema",
            Scenario::Signatures(SigRecipe::SingletonSchema),
            "too few to train",
        ),
        auto(
            "duplicate_signatures",
            Scenario::Signatures(SigRecipe::DuplicateSignatures),
            "rank-deficient",
        ),
        auto(
            "all_unlinkable",
            Scenario::Signatures(SigRecipe::AllUnlinkable),
            "scoper: kept=",
        ),
        auto(
            "nan_signature",
            Scenario::Signatures(SigRecipe::PoisonNan),
            "NaN/inf entry",
        ),
        auto(
            "inf_signature",
            Scenario::Signatures(SigRecipe::PoisonInf),
            "NaN/inf entry",
        ),
        auto(
            "flattened_schema",
            Scenario::Signatures(SigRecipe::Flattened),
            "rank-deficient",
        ),
        auto(
            "empty_catalog",
            Scenario::Signatures(SigRecipe::EmptyCatalog),
            "needs ≥ 2 schemas",
        ),
        auto(
            "worker_panic",
            Scenario::WorkerPanic,
            "injected fault: worker panic",
        ),
        auto("invalid_params", Scenario::InvalidParams, "out of range"),
    ];
    for (suffix, solver) in [
        ("auto", PcaSolver::Auto),
        ("fullsvd", PcaSolver::FullSvd),
        ("gram", PcaSolver::Gram),
        ("truncated", PcaSolver::truncated()),
    ] {
        cases.push(FaultCase {
            name: match suffix {
                "auto" => "poison_solver_auto",
                "fullsvd" => "poison_solver_fullsvd",
                "gram" => "poison_solver_gram",
                _ => "poison_solver_truncated",
            },
            scenario: Scenario::Signatures(SigRecipe::SolverProbePoison),
            expect: "NaN/inf entry",
            solver,
        });
    }
    cases
}

/// Formats a stage outcome; errors render through their pinned `Display`.
fn outcome_line<T: std::fmt::Display>(stage: &str, r: Result<T, ScopingError>) -> String {
    match r {
        Ok(v) => format!("{stage}: {v}"),
        Err(e) => format!("{stage}: error: {e}"),
    }
}

/// Runs `f`, converting an escaped panic into a loud marker line instead
/// of aborting the harness. No public API should ever trip this.
fn guarded(stage: &str, f: impl FnOnce() -> String) -> String {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "opaque panic payload".to_string());
        format!("PANIC-ESCAPED: {stage}: {msg}")
    })
}

/// Runs one case on the default [`base_config`] catalog. See
/// [`run_case_on`].
pub fn run_case(case: &FaultCase, exec: &ExecPolicy) -> Vec<String> {
    run_case_on(case, &base_config(), exec)
}

/// Runs one case on a caller-supplied generator config under one
/// execution policy and returns its stage lines. Lines are
/// execution-independent: the same (case, config) must produce the same
/// lines under every policy and worker count. Configs must describe at
/// least three related schemas — the poison recipes target schema
/// indices 1 and 2.
pub fn run_case_on(case: &FaultCase, config: &SyntheticConfig, exec: &ExecPolicy) -> Vec<String> {
    assert!(
        config.schemas >= 3,
        "fault recipes poison schemas #1/#2: need ≥ 3 schemas, got {}",
        config.schemas
    );
    match case.scenario {
        Scenario::Signatures(recipe) => run_signature_case(recipe, config, exec, case.solver),
        Scenario::WorkerPanic => run_worker_panic_case(config, exec),
        Scenario::InvalidParams => run_invalid_params_case(config, exec),
    }
}

fn run_signature_case(
    recipe: SigRecipe,
    config: &SyntheticConfig,
    exec: &ExecPolicy,
    solver: PcaSolver,
) -> Vec<String> {
    let sigs = recipe.build(config);
    let mut lines = vec![format!(
        "input: schemas={} elements={}",
        sigs.schema_count(),
        sigs.total_len()
    )];

    // Stage 1: strict collaborative scoper — degenerate schemas must be
    // typed errors, healthy catalogs a kept count.
    lines.push(guarded("scoper", || {
        let run = CollaborativeScoper::builder()
            .explained_variance(STRICT_V)
            .pca_solver(solver)
            .exec(exec.clone())
            .build()
            .and_then(|s| s.run(&sigs));
        outcome_line(
            "scoper",
            run.map(|r| format!("kept={}/{}", r.outcome.kept_count(), r.outcome.len())),
        )
    }));

    // Stage 2: the sweep — must degrade gracefully (skip broken schemas,
    // record them, keep assessing) and agree with its own pointwise path.
    lines.push(guarded("sweep", || {
        let sweep = match CollaborativeSweep::prepare_with_solver(&sigs, exec, solver) {
            Ok(s) => s,
            Err(e) => return format!("sweep: error: {e}"),
        };
        let degraded = sweep
            .degraded()
            .iter()
            .map(|d| format!("#{}({})", d.schema, d.error))
            .collect::<Vec<_>>()
            .join(", ");
        let grid = match sweep.assess_grid_with(&GRID, CombinationRule::Any, exec) {
            Ok(g) => g,
            Err(e) => return format!("sweep: grid error: {e}"),
        };
        let mut pointwise_ok = true;
        let kept: Vec<String> = GRID
            .iter()
            .zip(grid.iter())
            .map(|(&v, outcome)| {
                match sweep.assess_at(v) {
                    Ok(p) => pointwise_ok &= p == *outcome,
                    Err(_) => pointwise_ok = false,
                }
                format!("v={v}:{}", outcome.kept_count())
            })
            .collect();
        format!(
            "sweep: [{}] degraded=[{degraded}] grid==pointwise: {pointwise_ok}",
            kept.join(" ")
        )
    }));

    // Stage 3: the global-scoping baseline — rank/sort/filter must not
    // choke on non-finite scores or empty catalogs.
    lines.push(guarded("global", || {
        let scoper = GlobalScoper::new(ZScoreDetector);
        outcome_line(
            "global",
            scoper
                .scope_at(&sigs, GLOBAL_P)
                .map(|o| format!("kept={}/{}", o.kept_count(), o.len())),
        )
    }));

    // Stage 4: a downstream matcher consuming the raw signatures — NaN
    // rows must fail the threshold silently, never crash the matcher.
    lines.push(guarded("matcher", || {
        let sets: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        let pairs = SimMatcher::new(SIM_T).match_pairs(&sets);
        format!("matcher: pairs={}", pairs.len())
    }));

    // Stage 5: the sublinear ANN matcher over the same signatures — the
    // banded index must swallow NaN-poisoned queries, empty/singleton
    // schemas, and zero-variance prefilter fits (the projection degrades
    // to coordinate truncation) without a panic, and its pair count must
    // be execution-independent like every other stage line.
    lines.push(guarded("ann", || {
        let sets: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        let config = AnnConfig {
            k: ANN_K,
            tables: 2,
            band_bits: 4,
            candidate_budget: 8,
            prefilter_dims: 4,
            threads: 1,
            ..AnnConfig::default()
        };
        let pairs = AnnMatcher::with_config(config).match_pairs(&sets);
        format!("ann: pairs={}", pairs.len())
    }));
    lines
}

fn run_worker_panic_case(config: &SyntheticConfig, exec: &ExecPolicy) -> Vec<String> {
    let sigs = SigRecipe::Baseline.build(config);
    // Target exactly the pool this policy executes on (or, for the
    // sequential path, this caller thread) so concurrent batches on any
    // other pool in the process are untouched.
    let target = match exec {
        ExecPolicy::Sequential => None,
        ExecPolicy::Global => Some(global().tag()),
        ExecPolicy::Pool(pool) => Some(pool.tag()),
    };
    let me = std::thread::current().id();
    let mut lines = Vec::new();
    {
        let _guard = fault::armed(move |site| {
            let mine = match (site.pool, target) {
                (Some(t), Some(want)) => t == want,
                (None, None) => std::thread::current().id() == me,
                _ => false,
            };
            if mine && site.chunk == 0 {
                panic!("injected fault: worker panic");
            }
        });
        lines.push(guarded("scoper", || {
            let run = CollaborativeScoper::builder()
                .explained_variance(STRICT_V)
                .exec(exec.clone())
                .build()
                .and_then(|s| s.run(&sigs));
            outcome_line(
                "scoper",
                run.map(|r| format!("kept={}", r.outcome.kept_count())),
            )
        }));
        lines.push(guarded("sweep", || {
            outcome_line(
                "sweep",
                CollaborativeSweep::prepare_with(&sigs, exec).map(|_| "prepared".to_string()),
            )
        }));
    }
    // Hook disarmed: the same pool must serve the next batch normally.
    lines.push(guarded("recovery", || {
        let run = CollaborativeScoper::builder()
            .explained_variance(STRICT_V)
            .exec(exec.clone())
            .build()
            .and_then(|s| s.run(&sigs));
        outcome_line(
            "recovery",
            run.map(|r| format!("kept={}/{}", r.outcome.kept_count(), r.outcome.len())),
        )
    }));
    lines
}

fn run_invalid_params_case(config: &SyntheticConfig, exec: &ExecPolicy) -> Vec<String> {
    let sigs = SigRecipe::Baseline.build(config);
    let mut lines = Vec::new();
    lines.push(guarded("builder-v0", || {
        outcome_line(
            "builder-v0",
            CollaborativeScoper::builder()
                .explained_variance(0.0)
                .exec(exec.clone())
                .build()
                .map(|_| "built".to_string()),
        )
    }));
    lines.push(guarded("builder-v-nan", || {
        outcome_line(
            "builder-v-nan",
            CollaborativeScoper::builder()
                .explained_variance(f64::NAN)
                .build()
                .map(|_| "built".to_string()),
        )
    }));
    lines.push(guarded("global-p", || {
        outcome_line(
            "global-p",
            GlobalScoper::new(ZScoreDetector)
                .scope_at(&sigs, 1.5)
                .map(|o| format!("kept={}", o.kept_count())),
        )
    }));
    lines.push(guarded("sweep-v", || {
        let sweep = match CollaborativeSweep::prepare_with(&sigs, exec) {
            Ok(s) => s,
            Err(e) => return format!("sweep-v: error: {e}"),
        };
        outcome_line(
            "sweep-v",
            sweep
                .assess_at(0.0)
                .map(|o| format!("kept={}", o.kept_count())),
        )
    }));
    lines.push(guarded("sweep-grid", || {
        let sweep = match CollaborativeSweep::prepare_with(&sigs, exec) {
            Ok(s) => s,
            Err(e) => return format!("sweep-grid: error: {e}"),
        };
        outcome_line(
            "sweep-grid",
            sweep
                .assess_grid_with(&[0.5, f64::INFINITY], CombinationRule::Any, exec)
                .map(|g| format!("points={}", g.len())),
        )
    }));
    lines
}

/// The verified result of a full matrix run.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// `(case name, stage lines)` in case order — identical under every
    /// policy by construction (the run fails otherwise).
    pub cases: Vec<(String, Vec<String>)>,
    /// FNV-1a digest over every line, stable across runs, policies, and
    /// `CS_THREADS` settings.
    pub digest: u64,
}

/// Runs the full matrix on the default [`base_config`] catalog. See
/// [`run_matrix_on`].
///
/// # Errors
/// A human-readable description of the first divergence or escaped panic.
pub fn run_matrix(execs: &[(&str, ExecPolicy)]) -> Result<MatrixReport, String> {
    run_matrix_on(&base_config(), execs)
}

/// Runs every fault case on a caller-supplied generator config under
/// every named policy, requiring byte-identical stage lines across
/// policies and zero escaped panics. The `expect` substrings are
/// config-independent (they pin typed-error Displays and stage
/// prefixes), so any valid ≥ 3-schema config must satisfy them.
///
/// # Errors
/// A human-readable description of the first divergence or escaped panic.
pub fn run_matrix_on(
    config: &SyntheticConfig,
    execs: &[(&str, ExecPolicy)],
) -> Result<MatrixReport, String> {
    assert!(!execs.is_empty(), "need at least one execution policy");
    let mut report = Vec::new();
    for case in cases() {
        let (first_name, first_exec) = &execs[0];
        let reference = run_case_on(&case, config, first_exec);
        for line in &reference {
            if line.starts_with("PANIC-ESCAPED") {
                return Err(format!(
                    "case {} under {first_name}: a panic crossed a public API: {line}",
                    case.name
                ));
            }
        }
        let joined = reference.join("\n");
        if !case.expect.is_empty() && !joined.contains(case.expect) {
            return Err(format!(
                "case {}: expected report to contain {:?}, got:\n{joined}",
                case.name, case.expect
            ));
        }
        for (name, exec) in &execs[1..] {
            let got = run_case_on(&case, config, exec);
            if got != reference {
                return Err(format!(
                    "case {} diverges between {first_name} and {name}:\n--- {first_name}\n{}\n--- {name}\n{}",
                    case.name,
                    joined,
                    got.join("\n")
                ));
            }
        }
        report.push((case.name.to_string(), reference));
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for (name, lines) in &report {
        for chunk in std::iter::once(name.as_str()).chain(lines.iter().map(String::as_str)) {
            for b in chunk.bytes() {
                digest ^= u64::from(b);
                digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    Ok(MatrixReport {
        cases: report,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_core::ThreadPool;
    use std::sync::Arc;

    fn policies() -> Vec<(&'static str, ExecPolicy)> {
        vec![
            ("sequential", ExecPolicy::Sequential),
            (
                "pool1",
                ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(1))),
            ),
            (
                "pool2",
                ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(2))),
            ),
            (
                "pool8",
                ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(8))),
            ),
        ]
    }

    #[test]
    fn matrix_covers_at_least_eight_scenarios() {
        assert!(cases().len() >= 8, "fault matrix shrank: {}", cases().len());
    }

    #[test]
    fn full_matrix_is_policy_invariant_and_panic_free() {
        let report = run_matrix(&policies()).expect("matrix must not diverge");
        assert_eq!(report.cases.len(), cases().len());
        for (name, lines) in &report.cases {
            assert!(
                lines.iter().all(|l| !l.starts_with("PANIC-ESCAPED")),
                "{name}: {lines:?}"
            );
        }
    }

    #[test]
    fn matrix_digest_is_reproducible() {
        let a = run_matrix(&[("seq", ExecPolicy::Sequential)]).expect("run a");
        let b = run_matrix(&[("seq", ExecPolicy::Sequential)]).expect("run b");
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn worker_panic_case_recovers() {
        for (name, exec) in policies() {
            let case = cases()
                .into_iter()
                .find(|c| c.name == "worker_panic")
                .expect("case exists");
            let lines = run_case(&case, &exec);
            let joined = lines.join("\n");
            assert!(
                joined.contains("injected fault: worker panic"),
                "{name}: {joined}"
            );
            assert!(
                lines.iter().any(|l| l.starts_with("recovery: kept=")),
                "{name}: pool did not recover: {joined}"
            );
        }
    }

    #[test]
    fn degenerate_cases_report_typed_errors_not_panics() {
        let exec = ExecPolicy::Sequential;
        for case in cases() {
            let joined = run_case(&case, &exec).join("\n");
            if !case.expect.is_empty() {
                assert!(
                    joined.contains(case.expect),
                    "{}: expected {:?} in:\n{joined}",
                    case.name,
                    case.expect
                );
            }
            assert!(!joined.contains("PANIC-ESCAPED"), "{}: {joined}", case.name);
        }
    }

    #[test]
    fn ann_stage_reports_on_every_signature_case() {
        // The poisoned, empty, singleton, and flattened catalogs all pass
        // through the banded ANN index; each must end in a pair count,
        // never a panic marker.
        let exec = ExecPolicy::Sequential;
        for case in cases() {
            if !matches!(case.scenario, Scenario::Signatures(_)) {
                continue;
            }
            let lines = run_case(&case, &exec);
            let ann = lines
                .iter()
                .find(|l| l.starts_with("ann:"))
                .unwrap_or_else(|| panic!("{}: missing ann stage: {lines:?}", case.name));
            assert!(ann.starts_with("ann: pairs="), "{}: {ann}", case.name);
        }
    }

    #[test]
    fn ann_stage_finds_pairs_on_healthy_catalogs() {
        let case = cases()
            .into_iter()
            .find(|c| c.name == "baseline")
            .expect("case exists");
        let lines = run_case(&case, &ExecPolicy::Sequential);
        let ann = lines.iter().find(|l| l.starts_with("ann:")).unwrap();
        let pairs: usize = ann.trim_start_matches("ann: pairs=").parse().unwrap();
        assert!(pairs > 0, "healthy catalog must yield ANN pairs: {ann}");
    }

    #[test]
    fn graceful_sweep_still_assesses_healthy_schemas() {
        // The duplicate-signature catalog has 3 healthy + 1 degraded
        // schemas; the sweep must keep assessing the healthy ones.
        let case = cases()
            .into_iter()
            .find(|c| c.name == "duplicate_signatures")
            .expect("case exists");
        let joined = run_case(&case, &ExecPolicy::Sequential).join("\n");
        assert!(joined.contains("degraded=[#3"), "{joined}");
        assert!(joined.contains("grid==pointwise: true"), "{joined}");
    }
}
