//! # cs-fault
//!
//! Deterministic, std-only **fault-injection harness** for the whole
//! scoping pipeline (embed → signatures → local models → collaborative
//! assessment → sweep → matchers).
//!
//! The harness drives every public entry point with seeded, reproducible
//! degenerate inputs — NaN/Inf signature entries, zero-variance and
//! rank-deficient signature matrices, empty / singleton / duplicate
//! schemas, forced worker panics inside `cs_core::pool` — and records
//! each stage's outcome as plain text lines. Because every injected
//! fault is seeded and every pipeline stage is deterministic, the full
//! fault matrix produces **byte-identical** output under every execution
//! policy (`Sequential`, pinned pools of any size, the global pool) and
//! every `CS_THREADS` setting; [`harness::run_matrix`] checks exactly
//! that and digests the result.
//!
//! Three submodules:
//!
//! - [`inject`] — pure signature-level corruptors (poison an entry,
//!   flatten a schema to zero variance). Catalog-level degeneracies
//!   (empty / singleton / duplicate schemas) live in
//!   `cs_datasets::synthetic`, since those are expressible as real
//!   catalogs.
//! - [`harness`] — the fault-case matrix and the stage runner that
//!   pushes each case through the full pipeline, proving that typed
//!   errors (never panics) cross the public API boundary and that the
//!   sweep degrades gracefully. The matrix is parameterized over the
//!   generator config ([`harness::run_matrix_on`]), so any synthetic
//!   catalog can host the same 15 cases.
//! - [`fuzz`] — a deterministic knob lattice over
//!   `cs_datasets::synthetic::SyntheticConfig` feeding ≥ 20 generated
//!   catalogs through the full matrix, digest-compared across thread
//!   counts by the `fuzz_smoke` binary.
//!
//! Worker panics are forced through `cs_core::pool::fault`, a test-only
//! hook that keeps the no-ambient-authority policy intact: the hook is
//! armed explicitly per case, filters on the target pool's tag (or the
//! caller thread for the sequential path), and disarms on drop.

pub mod fuzz;
pub mod harness;
pub mod inject;

pub use fuzz::{knob_lattice, run_fuzz, FuzzCatalog, FuzzReport};
pub use harness::{
    cases, run_case, run_case_on, run_matrix, run_matrix_on, FaultCase, MatrixReport, Scenario,
    SigRecipe,
};
pub use inject::{flatten_schema, poison_non_finite};
