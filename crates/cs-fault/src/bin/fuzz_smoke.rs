//! Generator-fuzz smoke driver for `scripts/verify.sh`.
//!
//! Replays the full 15-case fault matrix over every catalog of the
//! deterministic knob lattice (`cs_fault::knob_lattice`, ≥ 20 points
//! varying linkable ratio, lexicon overlap, naming noise, subtype depth,
//! and size distribution) under the sequential path and the global
//! (`CS_THREADS`-sized) pool, then prints one line per catalog and a
//! final digest line:
//!
//! ```text
//! generator-fuzz digest: 0123456789abcdef
//! ```
//!
//! verify.sh runs this binary under several `CS_THREADS` values and
//! compares the digests — the generator, the encoder, and every fault
//! path must be byte-deterministic regardless of worker count. Exits
//! non-zero on any matrix divergence, generator nondeterminism, escaped
//! panic, or invalid lattice point.
//!
//! Two policies (not the five of `fault_smoke`) keep the whole lattice
//! replay inside the < 5 s verify budget; the pinned pool sizes are
//! covered by the `CS_THREADS` loop instead, since the global pool is
//! sized from it.

use cs_core::pool::ExecPolicy;
use cs_fault::run_fuzz;

fn main() {
    // Injected worker panics are expected; keep stderr clean (same hook
    // discipline as fault_smoke).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let execs: Vec<(&str, ExecPolicy)> = vec![
        ("sequential", ExecPolicy::Sequential),
        ("global", ExecPolicy::Global),
    ];
    match run_fuzz(&execs) {
        Ok(report) => {
            for cat in &report.catalogs {
                println!(
                    "catalog {} matrix={:016x} dataset={:016x}",
                    cat.label, cat.matrix_digest, cat.dataset_digest
                );
            }
            println!("generator-fuzz digest: {:016x}", report.digest);
        }
        Err(msg) => {
            eprintln!("generator fuzz FAILED: {msg}");
            std::process::exit(1);
        }
    }
}
