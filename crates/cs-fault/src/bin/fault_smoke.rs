//! Fault-matrix smoke driver for `scripts/verify.sh`.
//!
//! Runs the full fault matrix under the sequential path, pinned pools of
//! 1/2/8 workers, and the global (`CS_THREADS`-sized) pool, requiring
//! byte-identical stage lines everywhere, then prints the per-case report
//! and a digest line:
//!
//! ```text
//! fault-matrix digest: 0123456789abcdef
//! ```
//!
//! verify.sh runs this binary under several `CS_THREADS` values and
//! compares the digests — the fault paths must be as deterministic as the
//! happy paths. Exits non-zero on any divergence, escaped panic, or
//! missing expected error.
//!
//! With the runtime sanitizer on (`CS_SANITIZE=1` or the `sanitize`
//! feature, DESIGN.md §12) a second digest line follows:
//!
//! ```text
//! sanitizer digest: fedcba9876543210 (edges=1 cycles=0 probes=1)
//! ```
//!
//! covering the lock-order graph recorded across the whole matrix plus
//! the per-worker float-environment probes. A lock-order cycle (deadlock
//! potential) or probe drift (float environments differ between workers)
//! fails the run outright; verify.sh additionally compares the digest
//! across `CS_THREADS` values — the nesting *set* must not depend on
//! worker count.

use std::sync::Arc;

use cs_core::pool::{sanitize, ExecPolicy};
use cs_core::ThreadPool;
use cs_fault::run_matrix;

fn main() {
    // Injected worker panics are expected here; keep stderr clean so the
    // only output is the report. The hook still aborts loudly for panics
    // that are not ours.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let execs: Vec<(&str, ExecPolicy)> = vec![
        ("sequential", ExecPolicy::Sequential),
        (
            "pool-1",
            ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(1))),
        ),
        (
            "pool-2",
            ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(2))),
        ),
        (
            "pool-8",
            ExecPolicy::Pool(Arc::new(ThreadPool::with_threads(8))),
        ),
        ("global", ExecPolicy::Global),
    ];
    match run_matrix(&execs) {
        Ok(report) => {
            for (name, lines) in &report.cases {
                println!("case {name}");
                for line in lines {
                    println!("  {line}");
                }
            }
            println!("fault-matrix digest: {:016x}", report.digest);
        }
        Err(msg) => {
            eprintln!("fault matrix FAILED: {msg}");
            std::process::exit(1);
        }
    }

    if sanitize::enabled() {
        let san = sanitize::report();
        if !san.cycles.is_empty() {
            eprintln!("sanitizer FAILED: lock-order cycle(s) — deadlock potential:");
            for cycle in &san.cycles {
                eprintln!("  {}", cycle.join(" -> "));
            }
            std::process::exit(1);
        }
        if san.probes.len() > 1 {
            eprintln!(
                "sanitizer FAILED: float-environment drift — {} distinct probes: {:?}",
                san.probes.len(),
                san.probes
            );
            std::process::exit(1);
        }
        println!(
            "sanitizer digest: {:016x} (edges={} cycles={} probes={})",
            san.digest(),
            san.edges.len(),
            san.cycles.len(),
            san.probes.len()
        );
    }
}
