//! A small criterion-compatible benchmark harness.
//!
//! The workspace's hermetic dependency policy (DESIGN.md §6) forbids the
//! external `criterion` crate, so the bench targets run on this drop-in
//! subset instead: the same `Criterion` / `benchmark_group` /
//! `BenchmarkId` / `Throughput` / `Bencher::iter` vocabulary and the same
//! `criterion_group!` / `criterion_main!` macros, implemented on
//! `std::time::Instant`. Bench files only change their import lines.
//!
//! Measurement model: each benchmark is calibrated so one sample takes at
//! least [`TARGET_SAMPLE`], then `sample_size` samples are collected and
//! the median / min / max per-iteration times are reported. That is enough
//! for the relative comparisons the paper's tables make (cached sweep vs
//! re-run, gram vs jacobi, original vs streamlined); it does not attempt
//! criterion's outlier analysis.

use std::time::{Duration, Instant};

/// Minimum wall-clock time one measured sample should cover.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Entry point handed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id, mirroring criterion's formatting.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = measure(self.sample_size, &mut f);
        report(&self.name, &id.id, &stats, self.throughput);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (parity with criterion; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Runs the timed closure; handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each result alive until
    /// the clock stops so the work is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Stats {
    median: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

fn run_sample<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn measure<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Stats {
    // Calibrate: grow the per-sample iteration count until one sample
    // covers TARGET_SAMPLE (also serves as warm-up).
    let mut iters: u64 = 1;
    loop {
        let elapsed = run_sample(iters, f);
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        // At least double; overshoot toward the target based on the
        // observed rate to converge in few steps.
        let scaled = if elapsed.is_zero() {
            iters * 16
        } else {
            (TARGET_SAMPLE.as_nanos() as u64 / elapsed.as_nanos().max(1) as u64)
                .saturating_add(1)
                .saturating_mul(iters)
        };
        iters = scaled.max(iters * 2).min(1 << 20);
    }

    let mut samples: Vec<Duration> = (0..sample_size).map(|_| run_sample(iters, f)).collect();
    samples.sort();
    Stats {
        median: samples[samples.len() / 2] / iters as u32,
        min: samples[0] / iters as u32,
        max: samples[samples.len() - 1] / iters as u32,
        iters_per_sample: iters,
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn report(group: &str, id: &str, stats: &Stats, throughput: Option<Throughput>) {
    let rate = throughput
        .map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / stats.median.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("  thrpt: {per_sec:.0} {unit}/s")
        })
        .unwrap_or_default();
    println!(
        "{group}/{id:<40} time: [{} {} {}]  ({} iters/sample){rate}",
        format_duration(stats.min),
        format_duration(stats.median),
        format_duration(stats.max),
        stats.iters_per_sample,
    );
}

/// Declares a benchmark group function, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);` defines `fn benches()`
/// that runs each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("rule", "any").id, "rule/any");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn measure_produces_ordered_stats() {
        let mut work = |b: &mut Bencher| b.iter(|| (0..100).sum::<u64>());
        let stats = measure(5, &mut work);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert!(stats.iters_per_sample >= 1);
    }

    #[test]
    fn groups_run_functions_end_to_end() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("harness/self_test");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        group.bench_function("sum", |b| {
            calls += 1;
            b.iter(|| (0..100).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(calls >= 2, "calibration + samples should call the body");
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
