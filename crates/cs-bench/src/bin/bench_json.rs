//! `bench_json` — runs the scoping / matching / scaling / ann / solver
//! benchmark groups and writes the machine-readable `BENCH_6.json`
//! baseline.
//!
//! Usage:
//!
//! ```text
//! bench_json [--smoke] [--out PATH] [--budget PATH]
//! ```
//!
//! - `--smoke`: tiny datasets and sample budgets (< 5 s even in debug);
//!   this is what `scripts/verify.sh` runs as its `bench-smoke` gate.
//! - `--out PATH`: where to write the document (default `BENCH_6.json`
//!   in the current directory).
//! - `--budget PATH`: regression gate — reads the checked-in budget
//!   document (`BENCH_BUDGET.json`) and fails with exit code 1 if any
//!   gated benchmark's median exceeds `2 ×` its budgeted value. Gated:
//!   the `global_pca05` scoping benchmark (an accidental return to the
//!   dense-SVD hot path is ~10× slower), the `size/` + `unlinkable/`
//!   smoke entries of the `scaling` group (the sweep must stay inside
//!   the verify smoke budget) — the `size/` family includes the budgeted
//!   `match_ann` leg that re-enables the 100k matcher point in full
//!   mode — and the worst entry of the `ann` retrieval group. The 2×
//!   headroom absorbs machine noise.
//!
//! Without `--smoke` the emitter measures the real OC3 / OC3-FO datasets
//! with bench-grade calibration; run that from a release build.

use cs_bench::emitter::{self, Mode};
use cs_core::json::JsonValue;

fn usage() -> ! {
    eprintln!("usage: bench_json [--smoke] [--out PATH] [--budget PATH]");
    std::process::exit(2);
}

/// Multiple of the budgeted median this run may reach before the gate
/// fails.
const BUDGET_HEADROOM: f64 = 2.0;

/// Every gated benchmark family: budget key in `BENCH_BUDGET.json`, the
/// record group, and the id prefix selecting the gated records. Families
/// with several matching records (the scaling sweeps) gate on the worst
/// median.
const BUDGET_GATES: [(&str, &str, &str); 4] = [
    ("global_pca05_ns", "scoping", "global_pca05/"),
    ("scaling_size_ns", "scaling", "size/"),
    ("scaling_unlinkable_ns", "scaling", "unlinkable/"),
    ("ann_ns", "ann", ""),
];

/// Enforces the `--budget` gate against the measured report; returns the
/// human-readable verdict lines, or an error describing why the gate
/// could not run or did not pass.
fn check_budget(report: &emitter::BenchReport, path: &str) -> Result<Vec<String>, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read budget {path}: {e}"))?;
    let doc = cs_core::json::parse(&body).map_err(|e| format!("budget {path} is not JSON: {e}"))?;
    let mut verdicts = Vec::new();
    for (key, group, prefix) in BUDGET_GATES {
        let budget_ns = doc
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("budget {path} lacks a numeric {key}"))?;
        if !(budget_ns.is_finite() && budget_ns > 0.0) {
            return Err(format!("budget {path}: {key} = {budget_ns} is not usable"));
        }
        let worst = report
            .records
            .iter()
            .filter(|r| r.group == group && r.id.starts_with(prefix))
            .max_by_key(|r| r.stats.median_ns)
            .ok_or_else(|| format!("this run produced no {group}/{prefix} benchmark"))?;
        let median = worst.stats.median_ns as f64;
        let limit = budget_ns * BUDGET_HEADROOM;
        if median > limit {
            return Err(format!(
                "budget exceeded: {} median {median:.0} ns > {limit:.0} ns ({BUDGET_HEADROOM}x of budgeted {budget_ns:.0} ns)",
                worst.id
            ));
        }
        verdicts.push(format!(
            "budget ok: {} median {median:.0} ns <= {limit:.0} ns ({BUDGET_HEADROOM}x of budgeted {budget_ns:.0} ns)",
            worst.id
        ));
    }
    Ok(verdicts)
}

fn main() {
    let mut mode = Mode::Full;
    let mut out = String::from("BENCH_6.json");
    let mut budget: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => mode = Mode::Smoke,
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => usage(),
            },
            "--budget" => match argv.next() {
                Some(path) => budget = Some(path),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench_json: unknown argument `{other}`");
                usage();
            }
        }
    }

    let report = emitter::run(mode);
    let doc = emitter::to_json(&report);
    let mut body = doc.write_pretty();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("bench_json: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench_json: wrote {} ({} mode, {} benchmarks, {} threads)",
        out,
        report.mode.as_str(),
        report.records.len(),
        report.threads,
    );
    if let Some(path) = budget {
        match check_budget(&report, &path) {
            Ok(lines) => {
                for line in lines {
                    println!("bench_json: {line}");
                }
            }
            Err(e) => {
                eprintln!("bench_json: {e}");
                std::process::exit(1);
            }
        }
    }
}
