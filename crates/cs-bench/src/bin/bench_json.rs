//! `bench_json` — runs the scoping / matching / scaling benchmark groups
//! and writes the machine-readable `BENCH_3.json` baseline.
//!
//! Usage:
//!
//! ```text
//! bench_json [--smoke] [--out PATH]
//! ```
//!
//! - `--smoke`: tiny datasets and sample budgets (< 5 s even in debug);
//!   this is what `scripts/verify.sh` runs as its `bench-smoke` gate.
//! - `--out PATH`: where to write the document (default `BENCH_3.json`
//!   in the current directory).
//!
//! Without `--smoke` the emitter measures the real OC3 / OC3-FO datasets
//! with bench-grade calibration; run that from a release build.

use cs_bench::emitter::{self, Mode};

fn usage() -> ! {
    eprintln!("usage: bench_json [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut mode = Mode::Full;
    let mut out = String::from("BENCH_3.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => mode = Mode::Smoke,
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench_json: unknown argument `{other}`");
                usage();
            }
        }
    }

    let report = emitter::run(mode);
    let doc = emitter::to_json(&report);
    let mut body = doc.write_pretty();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("bench_json: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench_json: wrote {} ({} mode, {} benchmarks, {} threads)",
        out,
        report.mode.as_str(),
        report.records.len(),
        report.threads,
    );
}
